//! Recursive-descent parser for the XQuery subset.
//!
//! Direct element constructors are supported with computed content only:
//! children are `{ expr }` blocks or nested constructors (write literal
//! text as `{"text"}`). This keeps the token stream uniform; every query
//! shape in the paper is expressible.

use crate::ast::{ArithOp, Binding, Clause, Expr, PathSource, PathStart, Query, SortDir};
use crate::lexer::{tokenize, Spanned, Token};
use partix_path::{Axis, CmpOp, NodeTest, PathExpr, Step};
use std::fmt;

/// Parse error with byte offset into the query text.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parse a query.
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let tokens = tokenize(input)
        .map_err(|e| QueryParseError { offset: e.offset, message: e.message })?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.expr()?;
    p.expect(&Token::Eof)?;
    Ok(Query { expr })
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError { offset: self.offset(), message: message.into() }
    }

    fn expect(&mut self, token: &Token) -> Result<(), QueryParseError> {
        if self.peek() == token {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {token}, found {}", self.peek())))
        }
    }

    fn at_name(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Name(n) if n == kw)
    }

    fn eat_name(&mut self, kw: &str) -> bool {
        if self.at_name(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, QueryParseError> {
        if self.at_name("for") || self.at_name("let") {
            self.flwor()
        } else {
            self.or_expr()
        }
    }

    fn flwor(&mut self) -> Result<Expr, QueryParseError> {
        let mut clauses = Vec::new();
        loop {
            if self.eat_name("for") {
                loop {
                    let var = self.var_name()?;
                    if !self.eat_name("in") {
                        return Err(self.error("expected 'in'"));
                    }
                    let expr = self.or_expr()?;
                    clauses.push(Clause::For(Binding { var, expr }));
                    if self.peek() != &Token::Comma {
                        break;
                    }
                    self.bump();
                }
            } else if self.eat_name("let") {
                loop {
                    let var = self.var_name()?;
                    self.expect(&Token::Assign)?;
                    let expr = self.or_expr()?;
                    clauses.push(Clause::Let(Binding { var, expr }));
                    if self.peek() != &Token::Comma {
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
        let where_clause = if self.eat_name("where") {
            Some(Box::new(self.or_expr()?))
        } else {
            None
        };
        let order_by = if self.eat_name("order") {
            if !self.eat_name("by") {
                return Err(self.error("expected 'by' after 'order'"));
            }
            let key = self.or_expr()?;
            let dir = if self.eat_name("descending") {
                SortDir::Descending
            } else {
                self.eat_name("ascending");
                SortDir::Ascending
            };
            Some((Box::new(key), dir))
        } else {
            None
        };
        if !self.eat_name("return") {
            return Err(self.error("expected 'return'"));
        }
        let ret = Box::new(self.expr()?);
        Ok(Expr::Flwor { clauses, where_clause, order_by, ret })
    }

    fn var_name(&mut self) -> Result<String, QueryParseError> {
        match self.bump() {
            Token::Var(v) => Ok(v),
            other => Err(QueryParseError {
                offset: self.tokens[self.pos.saturating_sub(1)].offset,
                message: format!("expected a variable, found {other}"),
            }),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, QueryParseError> {
        let mut terms = vec![self.and_expr()?];
        while self.at_name("or") {
            self.bump();
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("one") } else { Expr::Or(terms) })
    }

    fn and_expr(&mut self) -> Result<Expr, QueryParseError> {
        let mut terms = vec![self.cmp_expr()?];
        while self.at_name("and") {
            self.bump();
            terms.push(self.cmp_expr()?);
        }
        Ok(if terms.len() == 1 { terms.pop().expect("one") } else { Expr::And(terms) })
    }

    fn cmp_expr(&mut self) -> Result<Expr, QueryParseError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Cmp { lhs: Box::new(lhs), op, rhs: Box::new(rhs) })
    }

    // additive ::= multiplicative (('+' | '-') multiplicative)*
    fn additive(&mut self) -> Result<Expr, QueryParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => ArithOp::Add,
                Token::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Arith { lhs: Box::new(lhs), op, rhs: Box::new(rhs) };
        }
    }

    // multiplicative ::= unary (('*' | 'div' | 'mod') unary)*
    fn multiplicative(&mut self) -> Result<Expr, QueryParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.peek() == &Token::Star {
                ArithOp::Mul
            } else if self.at_name("div") {
                ArithOp::Div
            } else if self.at_name("mod") {
                ArithOp::Mod
            } else {
                return Ok(lhs);
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Arith { lhs: Box::new(lhs), op, rhs: Box::new(rhs) };
        }
    }

    // unary ::= '-' unary | primary
    fn unary(&mut self) -> Result<Expr, QueryParseError> {
        if self.peek() == &Token::Minus {
            self.bump();
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, QueryParseError> {
        match self.peek().clone() {
            Token::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Token::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Token::Var(_) => self.path_from_var(),
            Token::LParen => {
                self.bump();
                if self.peek() == &Token::RParen {
                    self.bump();
                    return Ok(Expr::Seq(Vec::new()));
                }
                let mut items = vec![self.expr()?];
                while self.peek() == &Token::Comma {
                    self.bump();
                    items.push(self.expr()?);
                }
                self.expect(&Token::RParen)?;
                Ok(if items.len() == 1 {
                    items.pop().expect("one")
                } else {
                    Expr::Seq(items)
                })
            }
            Token::TagOpen(name) => {
                self.bump();
                self.element_ctor(name)
            }
            Token::Name(name) if name == "if" && self.peek2() == &Token::LParen => {
                self.bump();
                self.bump(); // (
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                if !self.eat_name("then") {
                    return Err(self.error("expected 'then'"));
                }
                let then = self.expr()?;
                if !self.eat_name("else") {
                    return Err(self.error("expected 'else'"));
                }
                let els = self.expr()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                })
            }
            Token::Name(name) => {
                if self.peek2() == &Token::LParen {
                    self.bump();
                    self.bump(); // (
                    if name == "collection" || name == "doc" {
                        let arg = match self.bump() {
                            Token::Str(s) => s,
                            other => {
                                return Err(self.error(format!(
                                    "{name}() takes a string literal, found {other}"
                                )))
                            }
                        };
                        self.expect(&Token::RParen)?;
                        let start = if name == "collection" {
                            PathStart::Collection(arg)
                        } else {
                            PathStart::Doc(arg)
                        };
                        let path = self.steps()?;
                        return Ok(Expr::Path(PathSource { start, path }));
                    }
                    // generic function call
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        args.push(self.expr()?);
                        while self.peek() == &Token::Comma {
                            self.bump();
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Err(self.error(format!(
                        "unexpected name '{name}' — paths must start at collection(), doc() or a variable"
                    )))
                }
            }
            other => Err(self.error(format!("unexpected {other}"))),
        }
    }

    fn path_from_var(&mut self) -> Result<Expr, QueryParseError> {
        let var = self.var_name()?;
        let path = self.steps()?;
        Ok(Expr::Path(PathSource { start: PathStart::Var(var), path }))
    }

    /// Parse `(/step | //step)*` into a relative [`PathExpr`].
    fn steps(&mut self) -> Result<PathExpr, QueryParseError> {
        let mut steps = Vec::new();
        loop {
            let axis = match self.peek() {
                Token::Slash => Axis::Child,
                Token::DoubleSlash => Axis::Descendant,
                _ => break,
            };
            self.bump();
            let test = match self.bump() {
                Token::Name(n) => NodeTest::Name(n),
                Token::Star => NodeTest::AnyElement,
                Token::At => match self.bump() {
                    Token::Name(n) => NodeTest::Attribute(n),
                    other => return Err(self.error(format!("expected attribute name, found {other}"))),
                },
                other => return Err(self.error(format!("expected a step, found {other}"))),
            };
            let mut position = None;
            if self.peek() == &Token::LBracket {
                self.bump();
                match self.bump() {
                    Token::Num(n) if n.fract() == 0.0 && n >= 1.0 => {
                        position = Some(n as u32);
                    }
                    other => {
                        return Err(self.error(format!(
                            "only positional predicates [i] are supported in paths, found {other}"
                        )))
                    }
                }
                self.expect(&Token::RBracket)?;
            }
            steps.push(Step { axis, test, position });
        }
        Ok(PathExpr { absolute: false, steps })
    }

    /// Parse the remainder of `<name …`.
    fn element_ctor(&mut self, name: String) -> Result<Expr, QueryParseError> {
        let mut attrs = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Name(attr_name) => {
                    self.bump();
                    self.expect(&Token::Eq)?;
                    match self.bump() {
                        Token::Str(v) => attrs.push((attr_name, v)),
                        other => {
                            return Err(self.error(format!(
                                "attribute values must be string literals, found {other}"
                            )))
                        }
                    }
                }
                Token::Slash => {
                    self.bump();
                    self.expect(&Token::Gt)?;
                    return Ok(Expr::Element { name, attrs, children: Vec::new() });
                }
                Token::Gt => {
                    self.bump();
                    break;
                }
                other => return Err(self.error(format!("unexpected {other} in start tag"))),
            }
        }
        let mut children = Vec::new();
        loop {
            match self.peek().clone() {
                Token::LBrace => {
                    self.bump();
                    children.push(self.expr()?);
                    self.expect(&Token::RBrace)?;
                }
                Token::TagOpen(child_name) => {
                    self.bump();
                    children.push(self.element_ctor(child_name)?);
                }
                Token::Lt => {
                    self.bump();
                    self.expect(&Token::Slash)?;
                    match self.bump() {
                        Token::Name(n) if n == name => {}
                        other => {
                            return Err(self.error(format!(
                                "mismatched closing tag: expected </{name}>, found {other}"
                            )))
                        }
                    }
                    self.expect(&Token::Gt)?;
                    return Ok(Expr::Element { name, attrs, children });
                }
                other => {
                    return Err(self.error(format!(
                        "unexpected {other} in element content (write literal text as {{\"text\"}})"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_flwor() {
        let q = parse_query(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD"
               return $i/Name"#,
        )
        .unwrap();
        let Expr::Flwor { clauses, where_clause, ret, .. } = q.expr else {
            panic!("expected FLWOR");
        };
        assert_eq!(clauses.len(), 1);
        assert!(where_clause.is_some());
        assert!(matches!(*ret, Expr::Path(_)));
    }

    #[test]
    fn let_and_multiple_fors() {
        let q = parse_query(
            r#"for $i in collection("a")/x, $j in collection("b")/y
               let $n := $i/name
               where $n = $j/name
               return ($n, $j)"#,
        )
        .unwrap();
        let Expr::Flwor { clauses, .. } = q.expr else { panic!() };
        assert_eq!(clauses.len(), 3);
        assert!(matches!(clauses[2], Clause::Let(_)));
    }

    #[test]
    fn aggregation_call() {
        let q = parse_query(
            r#"count(for $i in collection("items")/Item where contains($i//Description, "good") return $i)"#,
        )
        .unwrap();
        let Expr::Call { name, args } = q.expr else { panic!() };
        assert_eq!(name, "count");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn order_by_descending() {
        let q = parse_query(
            r#"for $i in collection("c")/a order by $i/k descending return $i"#,
        )
        .unwrap();
        let Expr::Flwor { order_by, .. } = q.expr else { panic!() };
        assert_eq!(order_by.unwrap().1, SortDir::Descending);
    }

    #[test]
    fn element_constructor() {
        let q = parse_query(
            r#"for $i in collection("c")/a return <hit id="1"><name>{$i/n}</name></hit>"#,
        )
        .unwrap();
        let Expr::Flwor { ret, .. } = q.expr else { panic!() };
        let Expr::Element { name, attrs, children } = *ret else { panic!() };
        assert_eq!(name, "hit");
        assert_eq!(attrs, [("id".to_owned(), "1".to_owned())]);
        assert_eq!(children.len(), 1);
    }

    #[test]
    fn self_closing_constructor() {
        let q = parse_query(r#"<empty/>"#).unwrap();
        assert!(matches!(q.expr, Expr::Element { ref children, .. } if children.is_empty()));
    }

    #[test]
    fn positional_path_step() {
        let q = parse_query(r#"for $i in collection("c")/a return $i/b[2]/c"#).unwrap();
        let Expr::Flwor { ret, .. } = q.expr else { panic!() };
        let Expr::Path(ps) = *ret else { panic!() };
        assert_eq!(ps.path.steps[0].position, Some(2));
    }

    #[test]
    fn attribute_step_and_wildcards() {
        parse_query(r#"for $i in collection("c")//x return $i/@id"#).unwrap();
        parse_query(r#"for $i in collection("c")/a/* return $i"#).unwrap();
    }

    #[test]
    fn errors_are_informative() {
        let err = parse_query("for $i in").unwrap_err();
        assert!(err.message.contains("unexpected"));
        let err = parse_query(r#"bare/path"#).unwrap_err();
        assert!(err.message.contains("collection"));
        let err = parse_query(r#"for $i in collection("c")/a return <a><b>{$i}</c></a>"#)
            .unwrap_err();
        assert!(err.message.contains("mismatched"), "{}", err.message);
    }

    #[test]
    fn comparison_chain_is_single() {
        let q = parse_query(r#"count(collection("c")/a) > 3"#).unwrap();
        assert!(matches!(q.expr, Expr::Cmp { op: CmpOp::Gt, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query(r#"1 + 2 * 3"#).unwrap();
        let Expr::Arith { op: ArithOp::Add, rhs, .. } = q.expr else { panic!() };
        assert!(matches!(*rhs, Expr::Arith { op: ArithOp::Mul, .. }));
        // div/mod as keywords
        parse_query(r#"10 div 2"#).unwrap();
        parse_query(r#"10 mod 3"#).unwrap();
        // unary minus
        let q = parse_query(r#"-5 + 1"#).unwrap();
        assert!(matches!(q.expr, Expr::Arith { op: ArithOp::Add, .. }));
    }

    #[test]
    fn arithmetic_with_paths_and_comparisons() {
        let q = parse_query(
            r#"for $i in collection("c")/a where $i/p * 2 > 10 return $i"#,
        )
        .unwrap();
        let Expr::Flwor { where_clause, .. } = q.expr else { panic!() };
        let Expr::Cmp { lhs, .. } = *where_clause.unwrap() else { panic!() };
        assert!(matches!(*lhs, Expr::Arith { op: ArithOp::Mul, .. }));
    }

    #[test]
    fn if_then_else() {
        let q = parse_query(
            r#"for $i in collection("c")/a
               return if ($i/p > 10) then "big" else "small""#,
        )
        .unwrap();
        let Expr::Flwor { ret, .. } = q.expr else { panic!() };
        assert!(matches!(*ret, Expr::If { .. }));
        // an element genuinely named "if" in a path still works
        parse_query(r#"for $i in collection("c")/if return $i"#).unwrap();
    }

    #[test]
    fn empty_sequence() {
        let q = parse_query("()").unwrap();
        assert_eq!(q.expr, Expr::Seq(vec![]));
    }
}
