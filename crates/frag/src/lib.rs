//! # partix-frag
//!
//! The XML fragmentation model of Sections 3.2–3.3 of the PartiX paper.
//!
//! A fragment is `F := ⟨C, γ⟩` over a homogeneous collection `C`:
//!
//! * **horizontal** — `γ = σ_µ`, a selection by a conjunction of simple
//!   predicates. Whole documents are grouped; only MD collections can be
//!   horizontally fragmented (SD repositories have one document).
//! * **vertical** — `γ = π_{P,Γ}`, a projection of the subtrees rooted at
//!   the nodes selected by `P`, pruning the subtrees selected by the
//!   expressions of `Γ`.
//! * **hybrid** — `γ = π_{P,Γ} • σ_µ`, selection over the units exposed
//!   by a projection; the technique that lets SD repositories be
//!   fragmented "horizontally".
//!
//! [`FragmentationSchema`] bundles a collection's fragment definitions and
//! validates the design rules (prune containment, single-valuedness of
//! vertical paths, horizontal-only-on-MD). [`Fragmenter`] executes a
//! schema over documents. [`correctness`] verifies the three correctness
//! rules — completeness, disjointness, reconstruction — on actual data,
//! and [`reconstruct_any`](correctness::reconstruct_any) reassembles the
//! source collection from fragment contents.
//!
//! Hybrid fragments support the paper's two storage layouts:
//! [`FragMode::ManySmallDocs`] (FragMode1 — each selected unit becomes an
//! independent document, precise Dewey provenance, but per-document
//! processing cost) and [`FragMode::SingleDoc`] (FragMode2 — one spine
//! document per source document holding all selected units; the layout
//! the paper found beats the centralized approach).

pub mod apply;
pub mod correctness;
pub mod def;
pub mod design;

pub use apply::Fragmenter;
pub use correctness::{check_correctness, CorrectnessReport, Violation};
pub use design::{allocate_balanced, horizontal_by_values, AutoDesignError};
pub use def::{DesignError, FragMode, FragOp, FragmentDef, FragmentationSchema};
