//! The correctness rules of Section 3.3: completeness, disjointness,
//! reconstruction — verified on actual fragment contents.
//!
//! * **Completeness** — each data item of `C` appears in at least one
//!   fragment: a whole document for horizontal fragmentation, a node for
//!   vertical/hybrid.
//! * **Disjointness** — no data item appears in two fragments.
//! * **Reconstruction** — an operator `∇` rebuilds `C` from the
//!   fragments: `∪` for horizontal, the Dewey join `⋈` for vertical.
//!   For hybrid designs, reconstruction restores all content; the order
//!   of *sibling units* selected by different fragments is not tracked
//!   (like tuple order in relational fragmentation), so verification
//!   compares canonicalized documents.

use crate::def::{FragOp, FragmentationSchema};
use partix_algebra::join::reconstruct;
use partix_path::{eval_path, PathExpr};
use partix_xml::{to_string, Document, NodeId};
use std::collections::HashMap;
use std::fmt;

/// One detected violation of a correctness rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A document/node of the source is in no fragment.
    Incomplete { item: String },
    /// A document/node is in more than one fragment.
    Overlapping { item: String, fragments: Vec<String> },
    /// Reconstruction does not yield the source collection.
    NotReconstructible { detail: String },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Incomplete { item } => {
                write!(f, "completeness violated: {item} is in no fragment")
            }
            Violation::Overlapping { item, fragments } => write!(
                f,
                "disjointness violated: {item} is in fragments {}",
                fragments.join(", ")
            ),
            Violation::NotReconstructible { detail } => {
                write!(f, "reconstruction violated: {detail}")
            }
        }
    }
}

/// Outcome of a correctness check.
#[derive(Debug, Clone, Default)]
pub struct CorrectnessReport {
    pub violations: Vec<Violation>,
}

impl CorrectnessReport {
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verify the three rules for `design` given the source documents and the
/// produced fragment contents (as returned by
/// [`Fragmenter::fragment_all`](crate::apply::Fragmenter::fragment_all)).
pub fn check_correctness(
    design: &FragmentationSchema,
    sources: &[Document],
    fragments: &[(String, Vec<Document>)],
) -> CorrectnessReport {
    match design.frag_type() {
        crate::def::FragType::Horizontal => check_horizontal(sources, fragments),
        crate::def::FragType::Vertical => check_vertical(sources, fragments),
        crate::def::FragType::Hybrid => check_hybrid(design, sources, fragments),
    }
}

fn check_horizontal(
    sources: &[Document],
    fragments: &[(String, Vec<Document>)],
) -> CorrectnessReport {
    let mut report = CorrectnessReport::default();
    // map: document name → owning fragments
    let mut owners: HashMap<String, Vec<String>> = HashMap::new();
    for (frag_name, docs) in fragments {
        for doc in docs {
            owners
                .entry(doc.name.clone().unwrap_or_else(|| to_string(doc)))
                .or_default()
                .push(frag_name.clone());
        }
    }
    for src in sources {
        let key = src.name.clone().unwrap_or_else(|| to_string(src));
        match owners.get(&key) {
            None => report.violations.push(Violation::Incomplete { item: key }),
            Some(fs) if fs.len() > 1 => report.violations.push(Violation::Overlapping {
                item: key,
                fragments: fs.clone(),
            }),
            Some(_) => {}
        }
    }
    // reconstruction: ∪ Fi == C
    let merged = partix_algebra::union(fragments.iter().map(|(_, d)| d.clone()));
    if !same_documents(sources, &merged) {
        report.violations.push(Violation::NotReconstructible {
            detail: format!(
                "union of fragments has {} documents, source has {}",
                merged.len(),
                sources.len()
            ),
        });
    }
    report
}

fn check_vertical(
    sources: &[Document],
    fragments: &[(String, Vec<Document>)],
) -> CorrectnessReport {
    let mut report = CorrectnessReport::default();
    let all: Vec<Document> = fragments.iter().flat_map(|(_, d)| d.iter().cloned()).collect();
    // disjointness at the node level: the fragment node counts of each
    // source document must sum to the source's node count
    let mut frag_nodes: HashMap<String, usize> = HashMap::new();
    for doc in &all {
        if let Some(origin) = &doc.origin {
            *frag_nodes.entry(origin.source_doc.clone()).or_default() += doc.len();
        }
    }
    for src in sources {
        let key = src.name.clone().unwrap_or_default();
        let got = frag_nodes.get(&key).copied().unwrap_or(0);
        match got.cmp(&src.len()) {
            std::cmp::Ordering::Less => {
                report.violations.push(Violation::Incomplete {
                    item: format!("{} nodes of document {key:?}", src.len() - got),
                });
            }
            std::cmp::Ordering::Greater => {
                report.violations.push(Violation::Overlapping {
                    item: format!("{} extra nodes of document {key:?}", got - src.len()),
                    fragments: fragments.iter().map(|(n, _)| n.clone()).collect(),
                });
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    // reconstruction: ⋈ Fi == C
    match reconstruct(&all) {
        Ok(rebuilt) => {
            if !same_documents(sources, &rebuilt) {
                report.violations.push(Violation::NotReconstructible {
                    detail: "reconstructed documents differ from the source".into(),
                });
            }
        }
        Err(e) => report
            .violations
            .push(Violation::NotReconstructible { detail: e.to_string() }),
    }
    report
}

fn check_hybrid(
    design: &FragmentationSchema,
    sources: &[Document],
    fragments: &[(String, Vec<Document>)],
) -> CorrectnessReport {
    let mut report = CorrectnessReport::default();
    // unit-level accounting: canonical serialization of each selected unit
    let mut source_units: HashMap<String, isize> = HashMap::new();
    let mut unit_paths: Vec<&PathExpr> = Vec::new();
    for frag in &design.fragments {
        if let FragOp::Hybrid { unit_path, .. } = &frag.op {
            if !unit_paths.contains(&unit_path) {
                unit_paths.push(unit_path);
            }
        }
    }
    for src in sources {
        for unit_path in &unit_paths {
            for id in eval_path(src, unit_path) {
                let unit = src.subtree(id).expect("units are elements");
                *source_units.entry(to_string(&unit)).or_default() += 1;
            }
        }
    }
    let mut seen_units = source_units.clone();
    for ((frag_name, docs), def) in fragments.iter().zip(&design.fragments) {
        match &def.op {
            FragOp::Hybrid { unit_path, mode, .. } => {
                for doc in docs {
                    match mode {
                        crate::def::FragMode::ManySmallDocs => {
                            *seen_units.entry(to_string(doc)).or_default() -= 1;
                        }
                        crate::def::FragMode::SingleDoc => {
                            for id in eval_path(doc, unit_path) {
                                let unit = doc.subtree(id).expect("unit");
                                *seen_units.entry(to_string(&unit)).or_default() -= 1;
                            }
                        }
                    }
                }
            }
            FragOp::Vertical { .. } | FragOp::Horizontal { .. } => {
                let _ = frag_name;
            }
        }
    }
    for (unit, balance) in &seen_units {
        let short: String = unit.chars().take(60).collect();
        if *balance > 0 {
            report.violations.push(Violation::Incomplete {
                item: format!("unit {short}… ({balance} occurrence(s) missing)"),
            });
        } else if *balance < 0 {
            report.violations.push(Violation::Overlapping {
                item: format!("unit {short}… ({} extra occurrence(s))", -balance),
                fragments: design.fragments.iter().map(|f| f.name.clone()).collect(),
            });
        }
    }
    // reconstruction up to unit order: canonicalized comparison
    let rebuilt = reconstruct_any(design, fragments);
    match rebuilt {
        Ok(rebuilt) => {
            let mut src_canon: Vec<String> = sources.iter().map(canonical).collect();
            let mut got_canon: Vec<String> = rebuilt.iter().map(canonical).collect();
            src_canon.sort();
            got_canon.sort();
            if src_canon != got_canon {
                report.violations.push(Violation::NotReconstructible {
                    detail: "canonicalized reconstruction differs from the source".into(),
                });
            }
        }
        Err(detail) => report.violations.push(Violation::NotReconstructible { detail }),
    }
    report
}

/// Reassemble the source collection from fragment contents, for any
/// fragment family. Hybrid reconstruction restores all content; sibling
/// units selected by different fragments keep fragment order (compare
/// canonically when order matters).
pub fn reconstruct_any(
    design: &FragmentationSchema,
    fragments: &[(String, Vec<Document>)],
) -> Result<Vec<Document>, String> {
    match design.frag_type() {
        crate::def::FragType::Horizontal => Ok(partix_algebra::union(
            fragments.iter().map(|(_, d)| d.clone()),
        )),
        crate::def::FragType::Vertical => {
            let all: Vec<Document> =
                fragments.iter().flat_map(|(_, d)| d.iter().cloned()).collect();
            reconstruct(&all).map_err(|e| e.to_string())
        }
        crate::def::FragType::Hybrid => reconstruct_hybrid(design, fragments),
    }
}

/// [`reconstruct_any`] over shared documents. Horizontal designs never
/// deep-copy: the source collection is the union of the fragments, so
/// the `Arc`s are re-sorted by document name and returned as-is (the
/// same ordering [`partix_algebra::union`] produces). Vertical/hybrid
/// designs must materialize once — the Dewey join builds new documents —
/// but the fetched inputs are only cloned at that single point.
pub fn reconstruct_any_shared(
    design: &FragmentationSchema,
    fragments: &[(String, Vec<std::sync::Arc<Document>>)],
) -> Result<Vec<std::sync::Arc<Document>>, String> {
    match design.frag_type() {
        crate::def::FragType::Horizontal => {
            let mut all: Vec<std::sync::Arc<Document>> = fragments
                .iter()
                .flat_map(|(_, docs)| docs.iter().cloned())
                .collect();
            all.sort_by(|a, b| a.name.cmp(&b.name));
            Ok(all)
        }
        _ => {
            let materialized: Vec<(String, Vec<Document>)> = fragments
                .iter()
                .map(|(name, docs)| {
                    (name.clone(), docs.iter().map(|d| (**d).clone()).collect())
                })
                .collect();
            Ok(reconstruct_any(design, &materialized)?
                .into_iter()
                .map(std::sync::Arc::new)
                .collect())
        }
    }
}

fn reconstruct_hybrid(
    design: &FragmentationSchema,
    fragments: &[(String, Vec<Document>)],
) -> Result<Vec<Document>, String> {
    // 1. vertical fragments rebuild the spine (with the unit container
    //    pruned); 2. units from hybrid fragments are reinserted under a
    //    recreated container.
    let vertical: Vec<Document> = fragments
        .iter()
        .zip(&design.fragments)
        .filter(|(_, def)| matches!(def.op, FragOp::Vertical { .. }))
        .flat_map(|((_, docs), _)| docs.iter().cloned())
        .collect();
    // collect units per (source doc, container path)
    let mut units: HashMap<String, Vec<Document>> = HashMap::new();
    let mut container_path: Option<PathExpr> = None;
    for ((_, docs), def) in fragments.iter().zip(&design.fragments) {
        if let FragOp::Hybrid { unit_path, mode, .. } = &def.op {
            let parent = unit_path
                .parent_path()
                .ok_or_else(|| "hybrid unit path must have a parent".to_owned())?;
            if let Some(existing) = &container_path {
                if *existing != parent {
                    return Err("hybrid fragments use different unit containers".into());
                }
            } else {
                container_path = Some(parent);
            }
            for doc in docs {
                match mode {
                    crate::def::FragMode::ManySmallDocs => {
                        let source = doc
                            .origin
                            .as_ref()
                            .map(|o| o.source_doc.clone())
                            .unwrap_or_default();
                        units.entry(source).or_default().push(doc.clone());
                    }
                    crate::def::FragMode::SingleDoc => {
                        let source = doc.name.clone().unwrap_or_default();
                        for id in eval_path(doc, &unit_path.clone()) {
                            units
                                .entry(source.clone())
                                .or_default()
                                .push(doc.subtree(id).map_err(|e| e.to_string())?);
                        }
                    }
                }
            }
        }
    }
    let container_path =
        container_path.ok_or_else(|| "no hybrid fragments in design".to_owned())?;
    // rebuild: reconstruct spine from vertical pieces, then insert the
    // container with the units
    let spines = reconstruct(&vertical).map_err(|e| e.to_string())?;
    let container_label = match &container_path.last_step().map(|s| &s.test) {
        Some(partix_path::NodeTest::Name(n)) => n.clone(),
        _ => return Err("unit container must be a named element".into()),
    };
    let mut out = Vec::new();
    for spine in spines {
        let source = spine.name.clone().unwrap_or_default();
        let mut doc = spine.clone();
        // find the container's parent in the spine
        let parent_of_container = container_path
            .parent_path()
            .map(|p| eval_path(&doc, &p))
            .unwrap_or_else(|| vec![NodeId::ROOT]);
        let Some(&attach) = parent_of_container.first() else {
            return Err(format!(
                "cannot locate container parent in spine of {source:?}"
            ));
        };
        let container = doc.add_element(attach, &container_label);
        if let Some(unit_docs) = units.remove(&source) {
            for unit in &unit_docs {
                doc.graft(container, unit, NodeId::ROOT);
            }
        }
        doc.name = Some(source);
        doc.origin = None;
        out.push(doc.normalized());
    }
    Ok(out)
}

/// Structural multiset equality of two document lists (by name when
/// available, else serialization).
fn same_documents(a: &[Document], b: &[Document]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut sa: Vec<String> = a.iter().map(to_string).collect();
    let mut sb: Vec<String> = b.iter().map(to_string).collect();
    sa.sort();
    sb.sort();
    sa == sb
}

/// Canonical serialization: children sorted recursively, so documents that
/// differ only in sibling order compare equal.
fn canonical(doc: &Document) -> String {
    fn canon(node: partix_xml::NodeRef<'_>) -> String {
        use partix_xml::NodeKind;
        match node.kind() {
            NodeKind::Text => format!("T:{}", node.value().unwrap_or("")),
            NodeKind::Attribute => {
                format!("A:{}={}", node.label(), node.value().unwrap_or(""))
            }
            NodeKind::Element => {
                let mut children: Vec<String> = node.children().map(canon).collect();
                children.sort();
                format!("E:{}[{}]", node.label(), children.join(","))
            }
        }
    }
    canon(doc.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::Fragmenter;
    use crate::def::{FragMode, FragmentDef, FragmentationSchema};
    use partix_path::Predicate;
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;
    use std::sync::Arc;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn pr(s: &str) -> Predicate {
        Predicate::parse(s).unwrap()
    }

    fn citems() -> CollectionDef {
        CollectionDef::new(
            "Citems",
            Arc::new(virtual_store()),
            p("/Store/Items/Item"),
            RepoKind::MultipleDocuments,
        )
    }

    fn cstore() -> CollectionDef {
        CollectionDef::new(
            "Cstore",
            Arc::new(virtual_store()),
            p("/Store"),
            RepoKind::SingleDocument,
        )
    }

    fn items() -> Vec<Document> {
        ["CD", "DVD", "CD", "BOOK"]
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>{s}</Section></Item>"
                ))
                .unwrap();
                d.name = Some(format!("i{i}"));
                d
            })
            .collect()
    }

    #[test]
    fn correct_horizontal_design_passes() {
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("F2", pr(r#"not(/Item/Section = "CD")"#)),
            ],
        )
        .unwrap();
        let docs = items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report.is_correct(), "{:?}", report.violations);
    }

    #[test]
    fn incomplete_horizontal_detected() {
        // predicates CD / DVD only: BOOK item falls through
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("F2", pr(r#"/Item/Section = "DVD""#)),
            ],
        )
        .unwrap();
        let docs = items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Incomplete { .. })));
    }

    #[test]
    fn overlapping_horizontal_detected() {
        // CD and "not DVD" overlap on CD items
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("F2", pr(r#"not(/Item/Section = "DVD")"#)),
            ],
        )
        .unwrap();
        let docs = items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Overlapping { .. })));
    }

    fn rich_items() -> Vec<Document> {
        (0..3)
            .map(|i| {
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>CD</Section>\
                     <PictureList><Picture><Name>p{i}</Name><Description>d</Description>\
                     <ModificationDate>t</ModificationDate><OriginalPath>o</OriginalPath>\
                     <ThumbPath>t</ThumbPath></Picture></PictureList></Item>"
                ))
                .unwrap();
                d.name = Some(format!("i{i}"));
                d
            })
            .collect()
    }

    #[test]
    fn correct_vertical_design_passes() {
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical("F1", p("/Item"), vec![p("/Item/PictureList")]),
                FragmentDef::vertical("F2", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap();
        let docs = rich_items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report.is_correct(), "{:?}", report.violations);
    }

    #[test]
    fn incomplete_vertical_detected() {
        // PictureList pruned from F1 but no fragment holds it
        let design = FragmentationSchema::new(
            citems(),
            vec![FragmentDef::vertical(
                "F1",
                p("/Item"),
                vec![p("/Item/PictureList")],
            )],
        )
        .unwrap();
        let docs = rich_items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Incomplete { .. })));
    }

    #[test]
    fn overlapping_vertical_detected() {
        // F1 keeps everything AND F2 duplicates PictureList
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical("F1", p("/Item"), vec![]),
                FragmentDef::vertical("F2", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap();
        let docs = rich_items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(!report.is_correct());
    }

    fn store_doc() -> Document {
        let mut d = parse(
            "<Store><Sections><Section><Code>1</Code><Name>CD</Name></Section></Sections>\
             <Items>\
               <Item><Code>1</Code><Name>a</Name><Description>x</Description><Section>CD</Section></Item>\
               <Item><Code>2</Code><Name>b</Name><Description>y</Description><Section>DVD</Section></Item>\
               <Item><Code>3</Code><Name>c</Name><Description>z</Description><Section>VHS</Section></Item>\
             </Items>\
             <Employees><Employee><Code>9</Code><Name>Ana</Name></Employee></Employees></Store>",
        )
        .unwrap();
        d.name = Some("store".to_owned());
        d
    }

    fn storehyb_design(mode: FragMode) -> FragmentationSchema {
        FragmentationSchema::new(
            cstore(),
            vec![
                FragmentDef::hybrid(
                    "F1",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    mode,
                ),
                FragmentDef::hybrid(
                    "F2",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "DVD""#),
                    mode,
                ),
                FragmentDef::hybrid(
                    "F3",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                    mode,
                ),
                FragmentDef::vertical("F4", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn correct_hybrid_design_passes_both_modes() {
        for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
            let design = storehyb_design(mode);
            let docs = vec![store_doc()];
            let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
            let report = check_correctness(&design, &docs, &frags);
            assert!(report.is_correct(), "{mode:?}: {:?}", report.violations);
        }
    }

    #[test]
    fn incomplete_hybrid_detected() {
        let design = FragmentationSchema::new(
            cstore(),
            vec![
                FragmentDef::hybrid(
                    "F1",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::vertical("F4", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        let docs = vec![store_doc()];
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Incomplete { .. })));
    }

    #[test]
    fn hybrid_reconstruction_restores_content() {
        let design = storehyb_design(FragMode::SingleDoc);
        let docs = vec![store_doc()];
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let rebuilt = reconstruct_any(&design, &frags).unwrap();
        assert_eq!(rebuilt.len(), 1);
        assert_eq!(canonical(&rebuilt[0]), canonical(&docs[0]));
    }

    #[test]
    fn vertical_reconstruction_exact() {
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical("F1", p("/Item"), vec![p("/Item/PictureList")]),
                FragmentDef::vertical("F2", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap();
        let docs = rich_items();
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let rebuilt = reconstruct_any(&design, &frags).unwrap();
        assert_eq!(rebuilt.len(), docs.len());
        for (a, b) in docs.iter().zip(&rebuilt) {
            assert_eq!(a, b);
        }
    }
}
