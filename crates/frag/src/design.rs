//! Automatic fragmentation design — the paper's future work
//! (*"we intend to use the proposed fragmentation model to define a
//! methodology for fragmenting XML databases … and to implement tools to
//! automate this fragmentation process"*), in a basic, data-driven form.
//!
//! [`horizontal_by_values`] derives a horizontal design from the observed
//! values of a single-valued path: values are greedily packed into `n`
//! groups balanced by document count (LPT scheduling), each group
//! becoming one fragment with an equality-disjunction predicate plus one
//! residual fragment for unseen values — so the design stays *complete*
//! for future documents.
//!
//! [`allocate_balanced`] assigns fragments to nodes balancing total
//! bytes (again LPT), producing the `Placement`-style pairs the
//! distribution catalog needs.

use crate::def::{FragmentDef, FragmentationSchema};
use partix_path::{PathExpr, Predicate, Value};
use partix_schema::CollectionDef;
use partix_xml::Document;
use std::collections::BTreeMap;

/// Error deriving a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutoDesignError {
    /// The partitioning path must be single-valued per document.
    NotSingleValued { path: String },
    /// No documents / no values observed.
    NoData,
    /// Fewer distinct values than requested fragments.
    TooFewValues { distinct: usize, requested: usize },
}

impl std::fmt::Display for AutoDesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoDesignError::NotSingleValued { path } => {
                write!(f, "path {path} may select several nodes per document")
            }
            AutoDesignError::NoData => write!(f, "no documents to derive a design from"),
            AutoDesignError::TooFewValues { distinct, requested } => write!(
                f,
                "only {distinct} distinct values observed, cannot build {requested} fragments"
            ),
        }
    }
}

impl std::error::Error for AutoDesignError {}

/// Derive a horizontal design partitioning `collection` by the values of
/// `path`, balanced over `n` fragments by document count.
///
/// The resulting schema has `n` value-group fragments named `f0..f{n-1}`
/// plus a residual fragment `f_other` carrying every document whose value
/// was not observed in `sample` (completeness for future data).
pub fn horizontal_by_values(
    collection: CollectionDef,
    path: &PathExpr,
    sample: &[Document],
    n: usize,
) -> Result<FragmentationSchema, AutoDesignError> {
    let doc_schema = collection.document_schema();
    if let Some(ds) = &doc_schema {
        if !ds.is_single_valued(path) {
            return Err(AutoDesignError::NotSingleValued { path: path.to_string() });
        }
    }
    if sample.is_empty() || n == 0 {
        return Err(AutoDesignError::NoData);
    }
    // histogram of observed values
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    for doc in sample {
        for id in partix_path::eval_path(doc, path) {
            let value = partix_path::eval::string_value(doc, id);
            *histogram.entry(value).or_insert(0) += 1;
        }
    }
    if histogram.is_empty() {
        return Err(AutoDesignError::NoData);
    }
    if histogram.len() < n {
        return Err(AutoDesignError::TooFewValues {
            distinct: histogram.len(),
            requested: n,
        });
    }
    // longest-processing-time packing: biggest value-groups first, each
    // into the currently lightest fragment
    let mut by_weight: Vec<(String, usize)> = histogram.into_iter().collect();
    by_weight.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut groups: Vec<(Vec<String>, usize)> = vec![(Vec::new(), 0); n];
    for (value, weight) in by_weight {
        let lightest = groups
            .iter_mut()
            .min_by_key(|(_, w)| *w)
            .expect("n >= 1 groups");
        lightest.0.push(value);
        lightest.1 += weight;
    }
    let mut fragments: Vec<FragmentDef> = groups
        .iter()
        .enumerate()
        .map(|(i, (values, _))| {
            FragmentDef::horizontal(&format!("f{i}"), values_predicate(path, values))
        })
        .collect();
    // residual fragment: none of the observed values
    let all_values: Vec<String> = groups.iter().flat_map(|(vs, _)| vs.clone()).collect();
    let not_any = Predicate::And(
        all_values
            .iter()
            .map(|v| {
                Predicate::Not(Box::new(Predicate::Cmp {
                    path: path.clone(),
                    op: partix_path::CmpOp::Eq,
                    value: Value::Str(v.clone()),
                }))
            })
            .collect(),
    );
    fragments.push(FragmentDef::horizontal("f_other", not_any));
    FragmentationSchema::new(collection, fragments)
        .map_err(|_| AutoDesignError::NoData)
}

fn values_predicate(path: &PathExpr, values: &[String]) -> Predicate {
    let atoms: Vec<Predicate> = values
        .iter()
        .map(|v| Predicate::Cmp {
            path: path.clone(),
            op: partix_path::CmpOp::Eq,
            value: Value::Str(v.clone()),
        })
        .collect();
    if atoms.len() == 1 {
        atoms.into_iter().next().expect("one atom")
    } else {
        Predicate::Or(atoms)
    }
}

/// Assign fragments to `nodes` nodes, balancing total fragment bytes
/// (LPT). Returns `(fragment name, node)` pairs covering every fragment.
pub fn allocate_balanced(
    fragment_sizes: &[(String, usize)],
    nodes: usize,
) -> Vec<(String, usize)> {
    assert!(nodes > 0, "need at least one node");
    let mut by_size: Vec<&(String, usize)> = fragment_sizes.iter().collect();
    by_size.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut loads = vec![0usize; nodes];
    let mut out = Vec::with_capacity(fragment_sizes.len());
    for (name, size) in by_size {
        let node = (0..nodes).min_by_key(|&i| loads[i]).expect("nodes > 0");
        loads[node] += size;
        out.push((name.clone(), node));
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::Fragmenter;
    use crate::correctness::check_correctness;
    use partix_schema::builtin::virtual_store;
    use partix_schema::RepoKind;
    use partix_xml::parse;
    use std::sync::Arc;

    fn citems() -> CollectionDef {
        CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        )
    }

    fn items(sections: &[&str]) -> Vec<Document> {
        sections
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>{s}</Section></Item>"
                ))
                .unwrap();
                d.name = Some(format!("i{i}"));
                d
            })
            .collect()
    }

    #[test]
    fn derived_design_is_correct_and_balanced() {
        // skewed: 6×CD, 3×DVD, 2×BOOK, 1×TOY over 2 fragments
        let docs = items(&[
            "CD", "CD", "CD", "CD", "CD", "CD", "DVD", "DVD", "DVD", "BOOK", "BOOK", "TOY",
        ]);
        let design = horizontal_by_values(
            citems(),
            &PathExpr::parse("/Item/Section").unwrap(),
            &docs,
            2,
        )
        .unwrap();
        assert_eq!(design.fragments.len(), 3); // 2 groups + residual
        let frags = Fragmenter::new(design.clone()).fragment_all(&docs);
        let report = check_correctness(&design, &docs, &frags);
        assert!(report.is_correct(), "{:?}", report.violations);
        // balance: CD alone (6) vs DVD+BOOK+TOY (6)
        let sizes: Vec<usize> = frags.iter().map(|(_, d)| d.len()).collect();
        assert_eq!(sizes[0], 6);
        assert_eq!(sizes[1], 6);
        assert_eq!(sizes[2], 0); // residual empty on the sample
    }

    #[test]
    fn residual_catches_unseen_values() {
        let docs = items(&["CD", "CD", "DVD", "DVD"]);
        let design = horizontal_by_values(
            citems(),
            &PathExpr::parse("/Item/Section").unwrap(),
            &docs,
            2,
        )
        .unwrap();
        // a future document with a brand-new section lands in f_other
        let fragmenter = Fragmenter::new(design);
        let newcomer = items(&["VINYL"]);
        let frags = fragmenter.fragment_all(&newcomer);
        let other = frags.iter().find(|(n, _)| n == "f_other").unwrap();
        assert_eq!(other.1.len(), 1);
        assert!(frags
            .iter()
            .filter(|(n, _)| n != "f_other")
            .all(|(_, d)| d.is_empty()));
    }

    #[test]
    fn multivalued_path_rejected() {
        let docs = items(&["CD"]);
        let err = horizontal_by_values(
            citems(),
            &PathExpr::parse("/Item/PictureList/Picture").unwrap(),
            &docs,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, AutoDesignError::NotSingleValued { .. }));
    }

    #[test]
    fn too_few_values_rejected() {
        let docs = items(&["CD", "CD"]);
        let err = horizontal_by_values(
            citems(),
            &PathExpr::parse("/Item/Section").unwrap(),
            &docs,
            3,
        )
        .unwrap_err();
        assert_eq!(err, AutoDesignError::TooFewValues { distinct: 1, requested: 3 });
    }

    #[test]
    fn empty_sample_rejected() {
        let err = horizontal_by_values(
            citems(),
            &PathExpr::parse("/Item/Section").unwrap(),
            &[],
            2,
        )
        .unwrap_err();
        assert_eq!(err, AutoDesignError::NoData);
    }

    #[test]
    fn allocation_balances_bytes() {
        let sizes = vec![
            ("f0".to_owned(), 100),
            ("f1".to_owned(), 60),
            ("f2".to_owned(), 50),
            ("f3".to_owned(), 10),
        ];
        let placement = allocate_balanced(&sizes, 2);
        // LPT: 100 | 60+50+10 → loads 100 vs 120
        let load = |node: usize| -> usize {
            placement
                .iter()
                .filter(|(_, n)| *n == node)
                .map(|(f, _)| sizes.iter().find(|(name, _)| name == f).unwrap().1)
                .sum()
        };
        assert_eq!(load(0) + load(1), 220);
        assert!(load(0).abs_diff(load(1)) <= 20, "{} vs {}", load(0), load(1));
        assert_eq!(placement.len(), 4);
    }

    #[test]
    fn allocation_single_node() {
        let sizes = vec![("f0".to_owned(), 5), ("f1".to_owned(), 7)];
        let placement = allocate_balanced(&sizes, 1);
        assert!(placement.iter().all(|(_, n)| *n == 0));
    }
}
