//! Fragment definitions and design-time validation.

use partix_algebra::Projection;
use partix_path::{PathExpr, Predicate};
use partix_schema::{CollectionDef, RepoKind};
use std::fmt;

/// Storage layout of a hybrid fragment (paper Sec. 5, hybrid experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragMode {
    /// FragMode1: each selected unit subtree becomes an independent
    /// document. Precise provenance, but the query processor pays a
    /// per-document cost — the paper found this "very inefficient".
    ManySmallDocs,
    /// FragMode2: one document per source document, shaped like the
    /// original but containing only the selected units under the unit
    /// path's parent spine.
    #[default]
    SingleDoc,
}

/// The operator `γ` of a fragment `F := ⟨C, γ⟩`.
#[derive(Debug, Clone)]
pub enum FragOp {
    /// `σ_µ` — horizontal.
    Horizontal { predicate: Predicate },
    /// `π_{P,Γ}` — vertical.
    Vertical { projection: Projection },
    /// `π_{P,Γ} • σ_µ` — hybrid. `unit_path` selects the unit subtrees
    /// (e.g. `/Store/Items/Item`); `predicate` filters units (its paths
    /// are written against the unit root, e.g. `/Item/Section`);
    /// `prune` removes subtrees inside kept units.
    Hybrid {
        unit_path: PathExpr,
        prune: Vec<PathExpr>,
        predicate: Predicate,
        mode: FragMode,
    },
}

impl FragOp {
    /// Short operator description, e.g. `σ(/Item/Section = "CD")`.
    pub fn describe(&self) -> String {
        match self {
            FragOp::Horizontal { predicate } => format!("σ({predicate})"),
            FragOp::Vertical { projection } => {
                let prune: Vec<String> =
                    projection.prune.iter().map(|p| p.to_string()).collect();
                format!("π({}, {{{}}})", projection.path, prune.join(", "))
            }
            FragOp::Hybrid { unit_path, predicate, mode, .. } => {
                format!(
                    "π({unit_path}) • σ({predicate}) [{}]",
                    match mode {
                        FragMode::ManySmallDocs => "FragMode1",
                        FragMode::SingleDoc => "FragMode2",
                    }
                )
            }
        }
    }
}

/// A named fragment definition.
#[derive(Debug, Clone)]
pub struct FragmentDef {
    /// Fragment name — also the storage collection name on its node.
    pub name: String,
    pub op: FragOp,
}

impl FragmentDef {
    pub fn horizontal(name: &str, predicate: Predicate) -> FragmentDef {
        FragmentDef { name: name.to_owned(), op: FragOp::Horizontal { predicate } }
    }

    pub fn vertical(name: &str, path: PathExpr, prune: Vec<PathExpr>) -> FragmentDef {
        FragmentDef {
            name: name.to_owned(),
            op: FragOp::Vertical { projection: Projection::new(path, prune) },
        }
    }

    pub fn hybrid(
        name: &str,
        unit_path: PathExpr,
        predicate: Predicate,
        mode: FragMode,
    ) -> FragmentDef {
        FragmentDef {
            name: name.to_owned(),
            op: FragOp::Hybrid { unit_path, prune: Vec::new(), predicate, mode },
        }
    }
}

impl fmt::Display for FragmentDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := ⟨C, {}⟩", self.name, self.op.describe())
    }
}

/// A fragmentation design error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// Horizontal fragmentation of an SD repository (paper: *"SD
    /// repositories may not be horizontally fragmented"*).
    HorizontalOnSingleDocument { fragment: String },
    /// A vertical path may select multiple sibling nodes without a
    /// positional pin (paper Def. 3's well-formedness restriction).
    MultiValuedProjection { fragment: String, path: String },
    /// A prune expression does not extend the projection path.
    PruneOutsideProjection { fragment: String, prune: String },
    /// A fragment path does not resolve against the collection schema.
    UnresolvablePath { fragment: String, path: String },
    /// Duplicate fragment names.
    DuplicateName { name: String },
    /// Horizontal fragments mixed with node-level (vertical/hybrid)
    /// fragments in one schema. Vertical and hybrid may mix — the paper's
    /// StoreHyb design combines a vertical prune fragment (`F4items`)
    /// with hybrid item fragments — but document-level and node-level
    /// fragmentation of the same collection cannot.
    MixedTypes,
    /// No fragments given.
    Empty,
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::HorizontalOnSingleDocument { fragment } => write!(
                f,
                "fragment {fragment}: SD repositories cannot be horizontally fragmented"
            ),
            DesignError::MultiValuedProjection { fragment, path } => write!(
                f,
                "fragment {fragment}: projection path {path} may select multiple nodes; \
                 pin an occurrence with [i] or choose a 0..1/1..1 path"
            ),
            DesignError::PruneOutsideProjection { fragment, prune } => write!(
                f,
                "fragment {fragment}: prune expression {prune} is not contained in the projection path"
            ),
            DesignError::UnresolvablePath { fragment, path } => {
                write!(f, "fragment {fragment}: path {path} does not resolve against the schema")
            }
            DesignError::DuplicateName { name } => {
                write!(f, "two fragments are both named {name}")
            }
            DesignError::MixedTypes => {
                write!(f, "a fragmentation schema must use a single fragment type")
            }
            DesignError::Empty => write!(f, "a fragmentation schema needs at least one fragment"),
        }
    }
}

impl std::error::Error for DesignError {}

/// A complete fragmentation design for one collection.
#[derive(Debug, Clone)]
pub struct FragmentationSchema {
    pub collection: CollectionDef,
    pub fragments: Vec<FragmentDef>,
}

impl FragmentationSchema {
    /// Build and validate a design.
    pub fn new(
        collection: CollectionDef,
        fragments: Vec<FragmentDef>,
    ) -> Result<FragmentationSchema, DesignError> {
        let schema = FragmentationSchema { collection, fragments };
        schema.validate()?;
        Ok(schema)
    }

    /// Check every design rule.
    pub fn validate(&self) -> Result<(), DesignError> {
        if self.fragments.is_empty() {
            return Err(DesignError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for frag in &self.fragments {
            if !names.insert(frag.name.as_str()) {
                return Err(DesignError::DuplicateName { name: frag.name.clone() });
            }
        }
        let has_horizontal = self
            .fragments
            .iter()
            .any(|f| matches!(f.op, FragOp::Horizontal { .. }));
        let has_node_level = self
            .fragments
            .iter()
            .any(|f| !matches!(f.op, FragOp::Horizontal { .. }));
        if has_horizontal && has_node_level {
            return Err(DesignError::MixedTypes);
        }
        // the schema the documents of this collection satisfy
        let doc_schema = self.collection.document_schema();
        for frag in &self.fragments {
            match &frag.op {
                FragOp::Horizontal { .. } => {
                    if self.collection.kind == RepoKind::SingleDocument {
                        return Err(DesignError::HorizontalOnSingleDocument {
                            fragment: frag.name.clone(),
                        });
                    }
                }
                FragOp::Vertical { projection } => {
                    if projection.check().is_err() {
                        return Err(DesignError::PruneOutsideProjection {
                            fragment: frag.name.clone(),
                            prune: projection
                                .prune
                                .iter()
                                .find(|g| g.strip_prefix(&projection.path).is_none())
                                .map(|g| g.to_string())
                                .unwrap_or_default(),
                        });
                    }
                    if let Some(ds) = &doc_schema {
                        if ds.resolve(&projection.path).is_none() {
                            return Err(DesignError::UnresolvablePath {
                                fragment: frag.name.clone(),
                                path: projection.path.to_string(),
                            });
                        }
                        if !ds.is_single_valued(&projection.path) {
                            return Err(DesignError::MultiValuedProjection {
                                fragment: frag.name.clone(),
                                path: projection.path.to_string(),
                            });
                        }
                    }
                }
                FragOp::Hybrid { unit_path, prune, .. } => {
                    for g in prune {
                        if g.strip_prefix(unit_path).is_none() {
                            return Err(DesignError::PruneOutsideProjection {
                                fragment: frag.name.clone(),
                                prune: g.to_string(),
                            });
                        }
                    }
                    if let Some(ds) = &doc_schema {
                        if ds.resolve(unit_path).is_none() {
                            return Err(DesignError::UnresolvablePath {
                                fragment: frag.name.clone(),
                                path: unit_path.to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Fragment family of this design: horizontal, vertical, or hybrid
    /// (a design with any hybrid fragment counts as hybrid — the paper's
    /// StoreHyb combines hybrid item fragments with a vertical prune
    /// fragment).
    pub fn frag_type(&self) -> FragType {
        if self.fragments.iter().any(|f| matches!(f.op, FragOp::Hybrid { .. })) {
            FragType::Hybrid
        } else if self.fragments.iter().any(|f| matches!(f.op, FragOp::Vertical { .. })) {
            FragType::Vertical
        } else {
            FragType::Horizontal
        }
    }
}

/// The three fragmentation families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragType {
    Horizontal,
    Vertical,
    Hybrid,
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_schema::builtin::virtual_store;
    use std::sync::Arc;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn pr(s: &str) -> Predicate {
        Predicate::parse(s).unwrap()
    }

    fn citems() -> CollectionDef {
        CollectionDef::new(
            "Citems",
            Arc::new(virtual_store()),
            p("/Store/Items/Item"),
            RepoKind::MultipleDocuments,
        )
    }

    fn cstore() -> CollectionDef {
        CollectionDef::new(
            "Cstore",
            Arc::new(virtual_store()),
            p("/Store"),
            RepoKind::SingleDocument,
        )
    }

    #[test]
    fn paper_figure_2_horizontal_design() {
        // F1CD / F2CD of Figure 2(a)
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1CD", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("F2CD", pr(r#"not(/Item/Section = "CD")"#)),
            ],
        )
        .unwrap();
        assert_eq!(design.frag_type(), FragType::Horizontal);
        assert!(design.fragments[0].to_string().contains("σ"));
    }

    #[test]
    fn horizontal_on_sd_rejected() {
        let err = FragmentationSchema::new(
            cstore(),
            vec![FragmentDef::horizontal("F1", pr(r#"/Store/Sections/Section/Name = "CD""#))],
        )
        .unwrap_err();
        assert!(matches!(err, DesignError::HorizontalOnSingleDocument { .. }));
    }

    #[test]
    fn paper_figure_3_vertical_design() {
        // F1items / F2items of Figure 3(a)
        let design = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical("F1items", p("/Item"), vec![p("/Item/PictureList")]),
                FragmentDef::vertical("F2items", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap();
        assert_eq!(design.frag_type(), FragType::Vertical);
    }

    #[test]
    fn multivalued_projection_rejected() {
        // Picture is 1..n → not single-valued without a position
        let err = FragmentationSchema::new(
            citems(),
            vec![FragmentDef::vertical(
                "bad",
                p("/Item/PictureList/Picture"),
                vec![],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, DesignError::MultiValuedProjection { .. }));
        // pinned position is fine
        FragmentationSchema::new(
            citems(),
            vec![FragmentDef::vertical(
                "ok",
                p("/Item/PictureList/Picture[1]"),
                vec![],
            )],
        )
        .unwrap();
    }

    #[test]
    fn prune_outside_projection_rejected() {
        let err = FragmentationSchema::new(
            citems(),
            vec![FragmentDef::vertical(
                "bad",
                p("/Item/PictureList"),
                vec![p("/Item/Code")],
            )],
        )
        .unwrap_err();
        assert!(matches!(err, DesignError::PruneOutsideProjection { .. }));
    }

    #[test]
    fn unresolvable_path_rejected() {
        let err = FragmentationSchema::new(
            citems(),
            vec![FragmentDef::vertical("bad", p("/Item/Nonexistent"), vec![])],
        )
        .unwrap_err();
        assert!(matches!(err, DesignError::UnresolvablePath { .. }));
    }

    #[test]
    fn mixed_types_rejected() {
        let err = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::vertical("F2", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DesignError::MixedTypes);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("F1", pr(r#"/Item/Section = "DVD""#)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, DesignError::DuplicateName { .. }));
    }

    #[test]
    fn empty_design_rejected() {
        assert_eq!(
            FragmentationSchema::new(citems(), vec![]).unwrap_err(),
            DesignError::Empty
        );
    }

    #[test]
    fn paper_figure_4_hybrid_design() {
        let design = FragmentationSchema::new(
            cstore(),
            vec![
                FragmentDef::hybrid(
                    "F1items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::hybrid(
                    "F2items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "DVD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::hybrid(
                    "F3items",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                    FragMode::SingleDoc,
                ),
                // F4items := π /Store, {/Store/Items} — the vertical prune
                // fragment holding everything outside Items
                FragmentDef::vertical("F4items", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        assert_eq!(design.frag_type(), FragType::Hybrid);
        assert!(design.fragments[0].to_string().contains("FragMode2"));
    }
}
