//! Executing a fragmentation schema over documents.

use crate::def::{FragMode, FragOp, FragmentDef, FragmentationSchema};
use partix_algebra::Projection;
use partix_path::PathExpr;
use partix_xml::{Document, NodeId, Origin};

/// Applies fragment definitions to documents.
#[derive(Debug, Clone)]
pub struct Fragmenter {
    schema: FragmentationSchema,
}

impl Fragmenter {
    pub fn new(schema: FragmentationSchema) -> Fragmenter {
        Fragmenter { schema }
    }

    pub fn schema(&self) -> &FragmentationSchema {
        &self.schema
    }

    /// Apply the whole design: returns `(fragment name, documents)` in
    /// definition order.
    pub fn fragment_all(&self, docs: &[Document]) -> Vec<(String, Vec<Document>)> {
        self.schema
            .fragments
            .iter()
            .map(|frag| (frag.name.clone(), apply_fragment(frag, docs)))
            .collect()
    }
}

/// Apply one fragment definition to a collection's documents.
pub fn apply_fragment(frag: &FragmentDef, docs: &[Document]) -> Vec<Document> {
    match &frag.op {
        FragOp::Horizontal { predicate } => partix_algebra::select(docs, predicate),
        FragOp::Vertical { projection } => partix_algebra::project(docs, projection),
        FragOp::Hybrid { unit_path, prune, predicate, mode } => {
            docs.iter()
                .flat_map(|doc| apply_hybrid(doc, unit_path, prune, predicate, *mode))
                .collect()
        }
    }
}

/// Hybrid `π • σ`: select the unit subtrees under `unit_path` whose
/// content satisfies `predicate`, pruning `prune` inside kept units.
fn apply_hybrid(
    doc: &Document,
    unit_path: &PathExpr,
    prune: &[PathExpr],
    predicate: &partix_path::Predicate,
    mode: FragMode,
) -> Vec<Document> {
    let unit_projection = Projection::new(unit_path.clone(), prune.to_vec());
    // project every unit (keeps Dewey provenance), then select
    let mut selected: Vec<Document> = unit_projection
        .apply(doc)
        .into_iter()
        .filter(|u| predicate.eval(u))
        .collect();
    match mode {
        FragMode::ManySmallDocs => {
            // each unit is an independent document named after its source
            for (i, unit) in selected.iter_mut().enumerate() {
                let src = doc.name.clone().unwrap_or_default();
                unit.name = Some(format!("{src}#{i}"));
            }
            selected
        }
        FragMode::SingleDoc => {
            if selected.is_empty() {
                return Vec::new();
            }
            // one spine document per source document: ancestors of the
            // unit path, each with only the chain child, units grafted
            // under the unit path's parent
            let mut out = Document::new(doc.root_label());
            let mut cursor = NodeId::ROOT;
            // build the chain for the intermediate steps (skip the first
            // step = root, skip the last = unit itself)
            let steps = &unit_path.steps;
            for step in steps.iter().take(steps.len().saturating_sub(1)).skip(1) {
                if let partix_path::NodeTest::Name(name) = &step.test {
                    cursor = out.add_element(cursor, name);
                }
            }
            for unit in &selected {
                out.graft(cursor, unit, NodeId::ROOT);
            }
            out.name = doc.name.clone();
            out.origin = Some(Origin {
                source_doc: doc.name.clone().unwrap_or_default(),
                dewey: partix_xml::Dewey::root(),
            });
            vec![out]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::{FragMode, FragmentDef, FragmentationSchema};
    use partix_path::{eval_path, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::{parse, to_string};
    use std::sync::Arc;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn pr(s: &str) -> Predicate {
        Predicate::parse(s).unwrap()
    }

    fn items() -> Vec<Document> {
        [
            ("i1", "CD", "good jazz"),
            ("i2", "DVD", "a film"),
            ("i3", "CD", "rock"),
            ("i4", "BOOK", "a good read"),
        ]
        .iter()
        .map(|(name, section, desc)| {
            let mut d = parse(&format!(
                "<Item><Code>{name}</Code><Section>{section}</Section>\
                 <Characteristics><Description>{desc}</Description></Characteristics></Item>"
            ))
            .unwrap();
            d.name = Some((*name).to_owned());
            d
        })
        .collect()
    }

    fn store_doc() -> Document {
        let mut d = parse(
            "<Store><Sections><Section><Name>CD</Name></Section></Sections>\
             <Items>\
               <Item><Code>1</Code><Section>CD</Section></Item>\
               <Item><Code>2</Code><Section>DVD</Section></Item>\
               <Item><Code>3</Code><Section>CD</Section></Item>\
             </Items>\
             <Employees><Employee><Name>Ana</Name></Employee></Employees></Store>",
        )
        .unwrap();
        d.name = Some("store".to_owned());
        d
    }

    #[test]
    fn horizontal_partition_by_section() {
        let docs = items();
        let citems = CollectionDef::new(
            "Citems",
            Arc::new(virtual_store()),
            p("/Store/Items/Item"),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal("FCD", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("FDVD", pr(r#"/Item/Section = "DVD""#)),
                FragmentDef::horizontal(
                    "FOTHER",
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                ),
            ],
        )
        .unwrap();
        let frags = Fragmenter::new(design).fragment_all(&docs);
        let sizes: Vec<usize> = frags.iter().map(|(_, d)| d.len()).collect();
        assert_eq!(sizes, [2, 1, 1]);
    }

    #[test]
    fn hybrid_fragmode2_builds_spine() {
        let doc = store_doc();
        let frags = apply_hybrid(
            &doc,
            &p("/Store/Items/Item"),
            &[],
            &pr(r#"/Item/Section = "CD""#),
            FragMode::SingleDoc,
        );
        assert_eq!(frags.len(), 1);
        let xml = to_string(&frags[0]);
        assert_eq!(
            xml,
            "<Store><Items>\
             <Item><Code>1</Code><Section>CD</Section></Item>\
             <Item><Code>3</Code><Section>CD</Section></Item>\
             </Items></Store>"
        );
        assert_eq!(frags[0].name.as_deref(), Some("store"));
    }

    #[test]
    fn hybrid_fragmode1_many_docs() {
        let doc = store_doc();
        let frags = apply_hybrid(
            &doc,
            &p("/Store/Items/Item"),
            &[],
            &pr(r#"/Item/Section = "CD""#),
            FragMode::ManySmallDocs,
        );
        assert_eq!(frags.len(), 2);
        assert!(frags.iter().all(|f| f.root_label() == "Item"));
        // provenance: the two CD items sit at ordinals 1 and 3 under Items
        let deweys: Vec<String> = frags
            .iter()
            .map(|f| f.origin.as_ref().unwrap().dewey.to_string())
            .collect();
        assert_eq!(deweys, ["2.1", "2.3"]);
    }

    #[test]
    fn hybrid_empty_selection_produces_nothing() {
        let doc = store_doc();
        let frags = apply_hybrid(
            &doc,
            &p("/Store/Items/Item"),
            &[],
            &pr(r#"/Item/Section = "VINYL""#),
            FragMode::SingleDoc,
        );
        assert!(frags.is_empty());
    }

    #[test]
    fn hybrid_fragments_partition_units() {
        let doc = store_doc();
        let cd = apply_hybrid(
            &doc,
            &p("/Store/Items/Item"),
            &[],
            &pr(r#"/Item/Section = "CD""#),
            FragMode::SingleDoc,
        );
        let rest = apply_hybrid(
            &doc,
            &p("/Store/Items/Item"),
            &[],
            &pr(r#"not(/Item/Section = "CD")"#),
            FragMode::SingleDoc,
        );
        let count = |d: &[Document]| {
            d.iter()
                .map(|f| eval_path(f, &p("/Store/Items/Item")).len())
                .sum::<usize>()
        };
        assert_eq!(count(&cd) + count(&rest), 3);
    }

    #[test]
    fn full_storehyb_design_executes() {
        // the paper's StoreHyb: 4 hybrid item fragments + vertical prune
        let doc = store_doc();
        let cstore = CollectionDef::new(
            "Cstore",
            Arc::new(virtual_store()),
            p("/Store"),
            RepoKind::SingleDocument,
        );
        let design = FragmentationSchema::new(
            cstore,
            vec![
                FragmentDef::hybrid(
                    "F1",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::hybrid(
                    "F2",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "DVD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::hybrid(
                    "F3",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::vertical("F4", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        let frags = Fragmenter::new(design).fragment_all(&[doc]);
        assert_eq!(frags.len(), 4);
        assert_eq!(frags[0].1.len(), 1); // CD spine doc
        assert_eq!(frags[1].1.len(), 1); // DVD spine doc
        assert_eq!(frags[2].1.len(), 0); // no other sections
        let f4 = &frags[3].1[0];
        assert!(f4.root().child_element("Items").is_none());
        assert!(f4.root().child_element("Sections").is_some());
    }
}
