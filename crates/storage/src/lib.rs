//! # partix-storage
//!
//! A sequential, XQuery-enabled native XML database — the role eXist \[13]
//! plays in the paper's architecture. One instance of [`Database`] runs
//! inside every PartiX node; the middleware only talks to it through the
//! driver interface (execute an XQuery, store documents, list
//! collections).
//!
//! Features mirroring what the paper relies on:
//!
//! * **Named collections** of parsed XML documents, stored either hot
//!   (pre-parsed in memory) or cold (as compact binary pages decoded on
//!   access — used to study per-document parse cost, the effect behind
//!   the paper's FragMode1 vs FragMode2 discussion).
//! * **Automatic indexes** (the paper: *"Some indexes were automatically
//!   created by the eXist DBMS to speed up text search operations and
//!   path expressions evaluation"*): a leaf-value index and a full-text
//!   word index are maintained on insertion and consulted through
//!   [`partix_query::CollectionProvider::collection_filtered`].
//! * **Query execution** with per-query statistics (documents scanned,
//!   index hits, elapsed time) — the measurements every experiment plots.
//! * **Morsel-driven parallelism** ([`parallel`]): decomposable queries
//!   split the driving collection into document batches evaluated
//!   concurrently on a shared worker pool and merged back into the exact
//!   sequential answer — so one huge fragment no longer runs on a single
//!   core.
//! * **Persistence**: collections can be saved to / loaded from a
//!   directory of binary pages.
//! * **Write-ahead logging** ([`wal`]): online writes run through an
//!   append → fsync → apply pipeline ([`DurableDb`]), so a node killed
//!   mid-write replays its log on restart and comes back consistent.

pub mod db;
pub mod exec;
pub mod index;
pub mod parallel;
pub mod persist;
pub mod wal;

pub use db::{Collection, Database, StorageError, StorageMode};
pub use exec::{QueryOutput, QueryStats};
pub use parallel::{MorselConfig, MAX_MORSEL_WORKERS};
pub use wal::{DurableDb, Wal, WalError, WalStage, WriteOp};
