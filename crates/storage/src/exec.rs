//! Query execution with index-assisted pre-filtering and statistics.

use crate::db::{Collection, Database};
use partix_path::pred::BoolFn;
use partix_path::Predicate;
use partix_query::pushdown;
use partix_query::{parse_query, EvalError, Evaluator, Item, Sequence};
use std::time::Instant;

/// Statistics of one query execution on one database node.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Documents in the scanned collection.
    pub collection_size: usize,
    /// Documents actually fed to the evaluator after index filtering.
    pub docs_scanned: usize,
    /// Whether an index produced the candidate set.
    pub index_used: bool,
    /// Wall-clock execution time in seconds.
    pub elapsed: f64,
    /// Total wire size of the result items in bytes.
    pub result_bytes: usize,
    /// Number of parallel morsels the scan split into; 0 means the
    /// query ran on the sequential path (see [`crate::parallel`]).
    pub morsels: usize,
}

/// Result of [`Database::execute`].
#[derive(Debug, Clone)]
pub struct QueryOutput {
    pub items: Sequence,
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Render the result the way the PartiX driver ships it.
    pub fn serialize(&self) -> String {
        partix_query::func::serialize_sequence(&self.items)
    }
}

/// Derive index candidate slots for a per-document predicate.
///
/// Returns `None` when the predicate gives the indexes nothing to work
/// with (full scan). The returned set is always a superset of the
/// documents satisfying the predicate.
pub(crate) fn index_candidates(
    coll: &Collection,
    pred: &Predicate,
    value_index: bool,
) -> Option<Vec<u32>> {
    match pred {
        Predicate::Cmp { path, op, value } => {
            if !value_index || *op != partix_path::CmpOp::Eq {
                return None;
            }
            let partix_path::Value::Str(s) = value else { return None };
            // an index-exact path probes the value index by its full
            // label path — only documents structurally containing the
            // path with the right value (or an opaque occurrence) survive
            if let Some(key) = exact_path_key(path) {
                return Some(coll.probe_value_path(&key, s));
            }
            let label = last_label(path)?;
            Some(coll.probe_value_label(&label, s))
        }
        Predicate::Exists(path) => {
            // a document can only satisfy exists(P) if it contains P's
            // label path (exact probe) or at least P's final label
            // (fallback) — the structural path index answers both
            if let Some(key) = exact_path_key(path) {
                return Some(coll.probe_path(&key));
            }
            let label = last_label(path)?;
            Some(coll.probe_label(&label))
        }
        Predicate::Bool(BoolFn::Contains(_, needle)) => coll.probe_contains(needle),
        Predicate::Bool(BoolFn::StartsWith(_, needle)) => coll.probe_contains(needle),
        Predicate::And(ps) => {
            // intersect whatever probes succeed
            let mut acc: Option<Vec<u32>> = None;
            for p in ps {
                if let Some(c) = index_candidates(coll, p, value_index) {
                    acc = Some(match acc {
                        None => c,
                        Some(prev) => intersect_sorted(&prev, &c),
                    });
                }
            }
            acc
        }
        Predicate::Or(ps) => {
            // every branch must probe, else the union is unbounded
            let mut acc: Vec<u32> = Vec::new();
            for p in ps {
                let c = index_candidates(coll, p, value_index)?;
                acc = union_sorted(&acc, &c);
            }
            Some(acc)
        }
        _ => None,
    }
}

fn last_label(path: &partix_path::PathExpr) -> Option<String> {
    use partix_path::NodeTest;
    match &path.last_step()?.test {
        NodeTest::Name(n) | NodeTest::Attribute(n) => Some(n.clone()),
        NodeTest::AnyElement => None,
    }
}

/// The label-path index key of an index-exact path: absolute, child axes
/// only, name tests (a final attribute test keys as `@name`), e.g.
/// `/Item/Section` → `Item/Section`. Positional predicates are allowed —
/// the key then over-approximates, which probes tolerate. `None` means
/// the path has no exact key (descendant axis, wildcard, relative path)
/// and the caller must fall back to a final-label probe.
fn exact_path_key(path: &partix_path::PathExpr) -> Option<String> {
    use partix_path::{Axis, NodeTest};
    if !path.absolute || path.steps.is_empty() {
        return None;
    }
    let mut key = String::new();
    for (i, step) in path.steps.iter().enumerate() {
        if step.axis != Axis::Child {
            return None;
        }
        if !key.is_empty() {
            key.push('/');
        }
        match &step.test {
            NodeTest::Name(n) => key.push_str(n),
            NodeTest::Attribute(n) if i + 1 == path.steps.len() => {
                key.push('@');
                key.push_str(n);
            }
            _ => return None,
        }
    }
    Some(key)
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn union_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    // both inputs are sorted (index probes sort before returning), so a
    // linear merge beats the old concat-sort-dedup
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl Database {
    /// Parse and execute an XQuery, using indexes to pre-filter the
    /// driving collection when the query's pushed-down predicate allows.
    pub fn execute(&self, query_text: &str) -> Result<QueryOutput, ExecError> {
        let query = parse_query(query_text).map_err(ExecError::Parse)?;
        self.execute_parsed(&query)
    }

    /// Execute an already-parsed query.
    pub fn execute_parsed(
        &self,
        query: &partix_query::Query,
    ) -> Result<QueryOutput, ExecError> {
        let start = Instant::now();
        let mut stats = QueryStats::default();
        let analysis = pushdown::analyze(query);
        // morsel-parallel fast path: decomposable query over a large
        // enough candidate set (see crate::parallel); exact same answer
        if let Some(out) = self.try_execute_morsels(query, analysis.as_ref(), start)? {
            return Ok(out);
        }
        // index-assisted scan via a filtered provider view
        let filtered: Option<FilteredView<'_>> = analysis.as_ref().and_then(|a| {
            if !self.index_enabled() {
                return None;
            }
            let pred = a.doc_predicate.as_ref()?;
            let coll = self.get(&a.collection)?;
            let guard = coll.read();
            stats.collection_size = guard.len();
            let slots = index_candidates(&guard, pred, self.value_index_enabled())?;
            stats.index_used = true;
            stats.docs_scanned = slots.len();
            let docs = guard.fetch_slots(&slots);
            Some(FilteredView { inner: self, collection: a.collection.clone(), docs })
        });
        let items = match &filtered {
            Some(view) => Evaluator::new(view).eval(query),
            None => {
                if let Some(a) = &analysis {
                    if let Some(coll) = self.get(&a.collection) {
                        let len = coll.read().len();
                        stats.collection_size = len;
                        stats.docs_scanned = len;
                    }
                }
                Evaluator::new(self).eval(query)
            }
        }
        .map_err(ExecError::Eval)?;
        stats.elapsed = start.elapsed().as_secs_f64();
        stats.result_bytes = items.iter().map(Item::wire_size).sum();
        Ok(QueryOutput { items, stats })
    }
}

/// Provider view that substitutes an index-filtered document list for one
/// collection and delegates everything else.
struct FilteredView<'a> {
    inner: &'a Database,
    collection: String,
    docs: Vec<std::sync::Arc<partix_xml::Document>>,
}

impl partix_query::CollectionProvider for FilteredView<'_> {
    fn collection(
        &self,
        name: &str,
    ) -> Result<Vec<std::sync::Arc<partix_xml::Document>>, EvalError> {
        if name == self.collection {
            Ok(self.docs.clone())
        } else {
            partix_query::CollectionProvider::collection(self.inner, name)
        }
    }

    fn document(&self, name: &str) -> Result<std::sync::Arc<partix_xml::Document>, EvalError> {
        partix_query::CollectionProvider::document(self.inner, name)
    }
}

/// Execution failure: parse error or evaluation error.
#[derive(Debug)]
pub enum ExecError {
    Parse(partix_query::QueryParseError),
    Eval(EvalError),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Parse(e) => write!(f, "{e}"),
            ExecError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::StorageMode;
    use partix_xml::parse;

    fn db() -> Database {
        let db = Database::new();
        db.create_collection("items", StorageMode::Hot).unwrap();
        for (name, section, desc, price) in [
            ("i1", "CD", "a good jazz record", 10),
            ("i2", "DVD", "a dystopia", 25),
            ("i3", "CD", "goodness gracious", 8),
            ("i4", "BOOK", "a very good read", 12),
        ] {
            let xml = format!(
                "<Item><Code>{name}</Code><Section>{section}</Section>\
                 <Price>{price}</Price><Characteristics><Description>{desc}</Description>\
                 </Characteristics></Item>"
            );
            let mut d = parse(&xml).unwrap();
            d.name = Some(name.to_owned());
            db.store("items", d);
        }
        db
    }

    #[test]
    fn equality_query_uses_index() {
        let db = db();
        db.set_value_index_enabled(true);
        let out = db
            .execute(r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Code"#)
            .unwrap();
        assert_eq!(out.items.len(), 2);
        assert!(out.stats.index_used);
        assert_eq!(out.stats.docs_scanned, 2);
        assert_eq!(out.stats.collection_size, 4);
    }

    #[test]
    fn contains_query_uses_text_index() {
        let db = db();
        let out = db
            .execute(
                r#"count(for $i in collection("items")/Item
                         where contains($i//Description, "good") return $i)"#,
            )
            .unwrap();
        assert_eq!(out.items[0], Item::Num(3.0));
        assert!(out.stats.index_used);
        assert!(out.stats.docs_scanned <= 3);
    }

    #[test]
    fn conjunction_intersects_indexes() {
        let db = db();
        db.set_value_index_enabled(true);
        let out = db
            .execute(
                r#"for $i in collection("items")/Item
                   where $i/Section = "CD" and contains($i//Description, "good")
                   return $i/Code"#,
            )
            .unwrap();
        assert_eq!(out.items.len(), 2);
        assert!(out.stats.index_used);
        assert!(out.stats.docs_scanned <= 2);
    }

    #[test]
    fn existential_query_uses_path_index() {
        let db = db();
        // give one document a Release element
        let mut extra = parse(
            "<Item><Code>i9</Code><Section>CD</Section><Release>2005</Release>\
             <Price>3</Price><Characteristics><Description>x</Description>\
             </Characteristics></Item>",
        )
        .unwrap();
        extra.name = Some("i9".to_owned());
        db.store("items", extra);
        let out = db
            .execute(
                r#"for $i in collection("items")/Item
                   where exists($i/Release) return $i/Code"#,
            )
            .unwrap();
        assert_eq!(out.items.len(), 1);
        assert!(out.stats.index_used);
        assert_eq!(out.stats.docs_scanned, 1);
    }

    #[test]
    fn range_query_falls_back_to_scan() {
        let db = db();
        db.set_value_index_enabled(true);
        let out = db
            .execute(r#"for $i in collection("items")/Item where $i/Price < 12 return $i/Code"#)
            .unwrap();
        assert_eq!(out.items.len(), 2);
        assert!(!out.stats.index_used);
        assert_eq!(out.stats.docs_scanned, 4);
    }

    #[test]
    fn index_and_scan_agree() {
        let db = db();
        db.set_value_index_enabled(true);
        // same query, one with index (=), one forced to scan (>= on strings)
        let via_index = db
            .execute(r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#)
            .unwrap();
        let via_scan = db
            .execute(
                r#"count(for $i in collection("items")/Item
                         where $i/Section >= "CD" and $i/Section <= "CD" return $i)"#,
            )
            .unwrap();
        assert_eq!(via_index.items, via_scan.items);
    }

    #[test]
    fn or_of_indexed_predicates() {
        let db = db();
        db.set_value_index_enabled(true);
        let out = db
            .execute(
                r#"count(for $i in collection("items")/Item
                         where $i/Section = "CD" or $i/Section = "DVD" return $i)"#,
            )
            .unwrap();
        assert_eq!(out.items[0], Item::Num(3.0));
        assert!(out.stats.index_used);
        assert_eq!(out.stats.docs_scanned, 3);
    }

    #[test]
    fn stats_record_result_bytes_and_time() {
        let db = db();
        let out = db
            .execute(r#"for $i in collection("items")/Item return $i"#)
            .unwrap();
        assert!(out.stats.result_bytes > 100);
        assert!(out.stats.elapsed >= 0.0);
    }

    #[test]
    fn parse_error_reported() {
        let db = db();
        assert!(matches!(db.execute("for $"), Err(ExecError::Parse(_))));
    }

    #[test]
    fn missing_collection_eval_error() {
        let db = db();
        assert!(matches!(
            db.execute(r#"for $i in collection("zzz")/a return $i"#),
            Err(ExecError::Eval(EvalError::UnknownCollection(_)))
        ));
    }

    #[test]
    fn sorted_set_helpers_merge_correctly() {
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), [1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[4, 9]), [4, 9]);
        assert_eq!(union_sorted(&[4, 9], &[]), [4, 9]);
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5]), [3, 5]);
        assert_eq!(intersect_sorted(&[1, 2], &[3]), Vec::<u32>::new());
    }

    #[test]
    fn cold_collection_executes_identically() {
        let hot = db();
        let cold = Database::new();
        cold.create_collection("items", StorageMode::Cold).unwrap();
        for doc in partix_query::CollectionProvider::collection(&hot, "items").unwrap() {
            cold.store("items", (*doc).clone());
        }
        let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        assert_eq!(hot.execute(q).unwrap().items, cold.execute(q).unwrap().items);
    }
}
