//! Persistence: saving and loading databases as directories of binary
//! pages.
//!
//! Layout: `<dir>/<collection>/<seq>.pxb`, one page per document, plus a
//! `MANIFEST` listing collections and their storage modes.

use crate::db::{Database, StorageError, StorageMode};
use partix_xml::binary;
use std::fs;
use std::io::Write;
use std::path::Path;

impl Database {
    /// Write every collection under `dir` (created if missing). Existing
    /// contents of `dir` belonging to a previous save are replaced.
    pub fn save_to(&self, dir: &Path) -> Result<(), StorageError> {
        fs::create_dir_all(dir)?;
        let mut manifest = String::new();
        for name in self.collection_names() {
            let coll = self.get(&name).expect("listed collection exists");
            let guard = coll.read();
            let coll_dir = dir.join(&name);
            if coll_dir.exists() {
                fs::remove_dir_all(&coll_dir)?;
            }
            fs::create_dir_all(&coll_dir)?;
            for (i, page) in guard.pages().iter().enumerate() {
                let mut f = fs::File::create(coll_dir.join(format!("{i:08}.pxb")))?;
                f.write_all(page)?;
            }
            let mode = match guard.mode {
                StorageMode::Hot => "hot",
                StorageMode::Cold => "cold",
            };
            manifest.push_str(&format!("{name}\t{mode}\n"));
        }
        fs::write(dir.join("MANIFEST"), manifest)?;
        Ok(())
    }

    /// Load a database previously written by [`Database::save_to`].
    pub fn load_from(dir: &Path) -> Result<Database, StorageError> {
        let manifest = fs::read_to_string(dir.join("MANIFEST"))
            .map_err(|_| StorageError::Corrupt("missing MANIFEST".into()))?;
        let db = Database::new();
        for line in manifest.lines() {
            let Some((name, mode)) = line.split_once('\t') else {
                return Err(StorageError::Corrupt(format!("bad manifest line {line:?}")));
            };
            let mode = match mode {
                "hot" => StorageMode::Hot,
                "cold" => StorageMode::Cold,
                other => {
                    return Err(StorageError::Corrupt(format!("bad storage mode {other:?}")))
                }
            };
            db.create_collection(name, mode)?;
            let coll_dir = dir.join(name);
            let mut entries: Vec<_> = fs::read_dir(&coll_dir)?
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "pxb"))
                .collect();
            entries.sort();
            // pages load verbatim: cold collections index through the
            // zero-copy page view and never decode a document here; only
            // legacy-format pages pay a decode+re-encode
            for path in entries {
                let bytes = fs::read(&path)?;
                let page = if bytes.starts_with(b"PXB1") {
                    let doc = binary::decode(&bytes).map_err(|e| {
                        StorageError::Corrupt(format!("{}: {e}", path.display()))
                    })?;
                    binary::encode(&doc)
                } else {
                    bytes::Bytes::from(bytes)
                };
                db.store_pages(name, [page]).map_err(|e| match e {
                    StorageError::Corrupt(msg) => {
                        StorageError::Corrupt(format!("{}: {msg}", path.display()))
                    }
                    other => other,
                })?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::CollectionProvider;
    use partix_xml::parse;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "partix-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> Database {
        let db = Database::new();
        db.create_collection("hotc", StorageMode::Hot).unwrap();
        db.create_collection("coldc", StorageMode::Cold).unwrap();
        for (i, coll) in [(1, "hotc"), (2, "hotc"), (3, "coldc")] {
            let mut d = parse(&format!("<Item><Code>{i}</Code></Item>")).unwrap();
            d.name = Some(format!("d{i}"));
            db.store(coll, d);
        }
        db
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let db = sample_db();
        db.save_to(&dir).unwrap();
        let loaded = Database::load_from(&dir).unwrap();
        assert_eq!(loaded.collection_names(), ["coldc", "hotc"]);
        assert_eq!(loaded.collection_len("hotc").unwrap(), 2);
        assert_eq!(loaded.collection_len("coldc").unwrap(), 1);
        let docs = loaded.collection("hotc").unwrap();
        assert_eq!(docs[0].name.as_deref(), Some("d1"));
        // queries still work (indexes rebuilt on load)
        let out = loaded
            .execute(r#"count(for $i in collection("hotc")/Item where $i/Code = "1" return $i)"#)
            .unwrap();
        assert_eq!(out.items[0], partix_query::Item::Num(1.0));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_is_replayable() {
        let dir = tmp_dir("replay");
        let db = sample_db();
        db.save_to(&dir).unwrap();
        db.save_to(&dir).unwrap(); // second save replaces, not duplicates
        let loaded = Database::load_from(&dir).unwrap();
        assert_eq!(loaded.collection_len("hotc").unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_manifest_fails() {
        let dir = tmp_dir("nomanifest");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Database::load_from(&dir),
            Err(StorageError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_corrupt_page_fails() {
        let dir = tmp_dir("corrupt");
        let db = sample_db();
        db.save_to(&dir).unwrap();
        fs::write(dir.join("hotc").join("00000000.pxb"), b"garbage").unwrap();
        assert!(matches!(
            Database::load_from(&dir),
            Err(StorageError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
