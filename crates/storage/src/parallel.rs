//! Morsel-driven intra-fragment parallel execution.
//!
//! PartiX parallelizes across fragments, but each node's evaluation of
//! its sub-query was sequential — one huge fragment (or a centralized
//! collection) bounded the whole query. This module closes that gap
//! (ROADMAP O3): when a query is morsel-decomposable
//! ([`partix_query::morsel::plan`]), the driving collection's candidate
//! documents are split into contiguous batches ("morsels") evaluated
//! concurrently on a shared worker pool, and the partial results are
//! merged back into the *exact* sequence the sequential evaluator
//! produces — same items, same order, same `order by` tie-breaking.
//!
//! ## Scheduling
//!
//! Morsels are claimed from a shared atomic cursor, so fast workers
//! steal the tail from slow ones (classic morsel-driven scheduling
//! rather than static assignment). The **calling thread participates**:
//! it claims and executes morsels like any pool worker. That makes the
//! design deadlock-free by construction — even if the pool is saturated
//! with other queries (or sized to zero), the caller alone drains every
//! morsel; pool workers only ever accelerate it. Jobs never block on
//! other jobs.
//!
//! For cold collections the win is twofold: morsel workers decode the
//! binary pages in parallel too, attacking exactly the per-document
//! parse cost the paper measured for many-small-documents fragments.
//!
//! ## Determinism
//!
//! Results are byte-identical to sequential execution. When several
//! morsels fail, the error of the **lowest-indexed** morsel is reported
//! — the same error a sequential left-to-right scan would have hit
//! first.

use crate::db::{Collection, Database};
use crate::exec::{index_candidates, ExecError, QueryOutput, QueryStats};
use parking_lot::{Mutex, RwLock};
use partix_query::morsel::{self, MorselPartial, MorselPlan};
use partix_query::pushdown::QueryAnalysis;
use partix_query::{CollectionProvider, EvalError, Item, Query};
use partix_xml::Document;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Hard ceiling on per-query morsel parallelism (and on shared pool
/// threads) — beyond this, merge and scheduling overheads dominate for
/// the document sizes PartiX handles.
pub const MAX_MORSEL_WORKERS: usize = 8;

/// Per-database knobs for morsel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MorselConfig {
    /// Maximum morsels evaluated concurrently for one query. Values
    /// below 2 disable the parallel path entirely.
    pub max_workers: usize,
    /// Smallest candidate set worth splitting, and the minimum documents
    /// per morsel: collections smaller than `2 * min_docs` (after index
    /// filtering) run sequentially — tiny scans are not worth the
    /// scheduling overhead.
    pub min_docs: usize,
}

impl Default for MorselConfig {
    /// `PARTIX_MORSEL_WORKERS` / `PARTIX_MORSEL_MIN_DOCS` override the
    /// defaults: all available cores (capped at [`MAX_MORSEL_WORKERS`])
    /// and 32 documents per morsel. On a single-core host the default
    /// resolves to 1 worker, i.e. the sequential path.
    fn default() -> MorselConfig {
        let max_workers = env_usize("PARTIX_MORSEL_WORKERS")
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            })
            .min(MAX_MORSEL_WORKERS);
        let min_docs = env_usize("PARTIX_MORSEL_MIN_DOCS").unwrap_or(32).max(1);
        MorselConfig { max_workers, min_docs }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// The shared morsel worker pool: plain daemon threads feeding off one
/// queue. Sized once, at first use, from the default config — per-query
/// parallelism beyond the pool size is made up by the calling thread.
struct MorselPool {
    tx: mpsc::Sender<Job>,
    workers: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

fn pool() -> &'static MorselPool {
    static POOL: OnceLock<MorselPool> = OnceLock::new();
    POOL.get_or_init(|| {
        // at least one helper so the parallel path is genuinely
        // concurrent even on single-core hosts (tests rely on it)
        let workers = MorselConfig::default().max_workers.max(2) - 1;
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("morsel-{i}"))
                .spawn(move || loop {
                    // take the job with the lock released before running
                    // it: a long morsel must not serialize the queue
                    let job = { rx.lock().recv() };
                    match job {
                        Ok(job) => {
                            // jobs are panic-guarded internally; this is
                            // the backstop that keeps the worker alive
                            let _ = std::panic::catch_unwind(
                                std::panic::AssertUnwindSafe(job),
                            );
                        }
                        Err(_) => break, // channel closed: process exit
                    }
                })
                .expect("spawn morsel worker");
        }
        MorselPool { tx, workers }
    })
}

/// Provider view serving exactly one morsel's documents. The plan
/// guarantees the query touches no other collection and no `doc(…)`
/// source, so every other access is a genuine error.
struct MorselView {
    collection: String,
    docs: Vec<Arc<Document>>,
}

impl CollectionProvider for MorselView {
    fn collection(&self, name: &str) -> Result<Vec<Arc<Document>>, EvalError> {
        if name == self.collection {
            Ok(self.docs.clone())
        } else {
            Err(EvalError::UnknownCollection(name.to_owned()))
        }
    }

    fn document(&self, name: &str) -> Result<Arc<Document>, EvalError> {
        Err(EvalError::UnknownDocument(name.to_owned()))
    }
}

/// Everything a morsel job needs, shared across workers for one query.
struct QueryCtx {
    plan: MorselPlan,
    coll: Arc<RwLock<Collection>>,
    /// Candidate slots in document order; `bounds[i]` is morsel `i`'s
    /// half-open range into it.
    slots: Vec<u32>,
    bounds: Vec<(usize, usize)>,
    /// Next unclaimed morsel — the shared work-stealing cursor.
    next: AtomicUsize,
    tx: mpsc::Sender<(usize, Result<MorselPartial, EvalError>)>,
}

impl QueryCtx {
    /// Claim and execute morsels until the cursor runs out. Each morsel
    /// sends exactly one `(index, result)` message, panic included.
    fn drain(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(&(lo, hi)) = self.bounds.get(i) else { break };
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let docs = self.coll.read().fetch_slots(&self.slots[lo..hi]);
                let view =
                    MorselView { collection: self.plan.collection.clone(), docs };
                morsel::eval_partial(&self.plan, &view)
            }))
            .unwrap_or_else(|_| {
                Err(EvalError::TypeError("morsel worker panicked".into()))
            });
            // the caller may have stopped listening only after receiving
            // every message, so a send failure is unreachable in practice;
            // ignore it rather than poison the worker
            let _ = self.tx.send((i, result));
        }
    }
}

impl Database {
    /// Attempt morsel-parallel execution. Returns `Ok(None)` when the
    /// query must run on the sequential path: not decomposable, morsels
    /// disabled, or too few candidate documents to be worth splitting.
    pub(crate) fn try_execute_morsels(
        &self,
        query: &Query,
        analysis: Option<&QueryAnalysis>,
        start: Instant,
    ) -> Result<Option<QueryOutput>, ExecError> {
        let config = self.morsel_config();
        if config.max_workers < 2 {
            return Ok(None);
        }
        let Some(plan) = morsel::plan(query) else {
            return Ok(None);
        };
        // unknown collection: let the sequential path raise the error
        let Some(coll) = self.get(&plan.collection) else {
            return Ok(None);
        };

        let mut stats = QueryStats::default();
        let slots: Vec<u32> = {
            let guard = coll.read();
            stats.collection_size = guard.len();
            // same index pre-filter as the sequential path, minus the
            // document materialization (each morsel fetches its own)
            let probed = analysis.and_then(|a| {
                if !self.index_enabled() || a.collection != plan.collection {
                    return None;
                }
                let pred = a.doc_predicate.as_ref()?;
                index_candidates(&guard, pred, self.value_index_enabled())
            });
            match probed {
                Some(slots) => {
                    stats.index_used = true;
                    slots
                }
                // tombstoned slots hold no document — scan live ones only
                None => guard.live_slots(),
            }
        };
        stats.docs_scanned = slots.len();

        let morsels = (slots.len() / config.min_docs).min(config.max_workers);
        if morsels < 2 {
            return Ok(None);
        }
        // contiguous, near-even split preserving document order
        let mut bounds = Vec::with_capacity(morsels);
        let (base, extra) = (slots.len() / morsels, slots.len() % morsels);
        let mut lo = 0;
        for i in 0..morsels {
            let hi = lo + base + usize::from(i < extra);
            bounds.push((lo, hi));
            lo = hi;
        }

        let (tx, rx) = mpsc::channel();
        let ctx = Arc::new(QueryCtx {
            plan,
            coll,
            slots,
            bounds,
            next: AtomicUsize::new(0),
            tx,
        });
        let p = pool();
        for _ in 0..(morsels - 1).min(p.workers) {
            let ctx = Arc::clone(&ctx);
            let _ = p.tx.send(Box::new(move || ctx.drain()));
        }
        ctx.drain(); // the caller works too — saturation cannot deadlock

        let mut results: Vec<Option<Result<MorselPartial, EvalError>>> =
            (0..morsels).map(|_| None).collect();
        for _ in 0..morsels {
            let (i, result) = rx.recv().expect("every morsel sends exactly once");
            results[i] = Some(result);
        }
        let mut partials = Vec::with_capacity(morsels);
        for result in results {
            // first error by morsel index = the error a sequential
            // left-to-right scan would have reported
            partials.push(
                result.expect("all morsels reported").map_err(ExecError::Eval)?,
            );
        }

        let items =
            morsel::merge(&ctx.plan, partials).map_err(ExecError::Eval)?;
        stats.morsels = morsels;
        stats.elapsed = start.elapsed().as_secs_f64();
        stats.result_bytes = items.iter().map(Item::wire_size).sum();
        Ok(Some(QueryOutput { items, stats }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::StorageMode;
    use partix_xml::parse;

    fn many_items(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let section = ["CD", "DVD", "BOOK"][i % 3];
                let xml = format!(
                    "<Item><Code>{i}</Code><Section>{section}</Section>\
                     <Price>{}</Price><Characteristics><Description>item \
                     number {i} is {}</Description></Characteristics></Item>",
                    (i * 7) % 50,
                    if i % 4 == 0 { "good" } else { "plain" },
                );
                let mut d = parse(&xml).unwrap();
                d.name = Some(format!("d{i}"));
                d
            })
            .collect()
    }

    fn db_with(n: usize, mode: StorageMode, config: MorselConfig) -> Database {
        let db = Database::new();
        db.create_collection("items", mode).unwrap();
        db.store_all("items", many_items(n));
        db.set_morsel_config(config);
        db
    }

    const PARALLEL: MorselConfig = MorselConfig { max_workers: 4, min_docs: 1 };
    const SEQUENTIAL: MorselConfig = MorselConfig { max_workers: 1, min_docs: 1 };

    fn assert_same_answers(q: &str, n: usize, mode: StorageMode) {
        let par = db_with(n, mode, PARALLEL);
        let seq = db_with(n, mode, SEQUENTIAL);
        let a = par.execute(q).unwrap();
        let b = seq.execute(q).unwrap();
        assert_eq!(a.serialize(), b.serialize(), "diverged on {q}");
        assert!(a.stats.morsels >= 2, "expected parallel path for {q}");
        assert_eq!(b.stats.morsels, 0, "expected sequential path");
        assert_eq!(a.stats.docs_scanned, b.stats.docs_scanned);
        assert_eq!(a.stats.collection_size, b.stats.collection_size);
    }

    #[test]
    fn parallel_matches_sequential_hot_and_cold() {
        let q = r#"for $i in collection("items")/Item
                   where $i/Section = "CD" return $i/Code"#;
        assert_same_answers(q, 40, StorageMode::Hot);
        assert_same_answers(q, 40, StorageMode::Cold);
    }

    #[test]
    fn ordered_query_keeps_exact_tie_order() {
        // prices repeat every 50/7 items → plenty of duplicate sort keys
        assert_same_answers(
            r#"for $i in collection("items")/Item
               order by number($i/Price) return $i/Code"#,
            60,
            StorageMode::Hot,
        );
        assert_same_answers(
            r#"for $i in collection("items")/Item
               order by number($i/Price) descending return $i/Code"#,
            60,
            StorageMode::Hot,
        );
    }

    #[test]
    fn aggregates_merge_exactly() {
        for agg in ["count", "sum", "min", "max", "avg"] {
            assert_same_answers(
                &format!(
                    r#"{agg}(for $i in collection("items")/Item
                             return number($i/Price))"#
                ),
                50,
                StorageMode::Hot,
            );
        }
    }

    #[test]
    fn small_collections_stay_sequential() {
        let db = db_with(10, StorageMode::Hot, MorselConfig { max_workers: 4, min_docs: 32 });
        let out = db
            .execute(r#"for $i in collection("items")/Item return $i/Code"#)
            .unwrap();
        assert_eq!(out.stats.morsels, 0);
        assert_eq!(out.items.len(), 10);
    }

    #[test]
    fn non_decomposable_queries_stay_sequential() {
        let db = db_with(40, StorageMode::Hot, PARALLEL);
        // correlated self-join: two collection refs
        let out = db
            .execute(
                r#"count(for $i in collection("items")/Item
                         where count(for $j in collection("items")/Item
                                     where $j/Section = $i/Section return $j) > 1
                         return $i)"#,
            )
            .unwrap();
        assert_eq!(out.stats.morsels, 0);
        assert_eq!(out.items[0], Item::Num(40.0));
    }

    #[test]
    fn index_prefilter_applies_to_morsels() {
        let db = db_with(60, StorageMode::Hot, PARALLEL);
        db.set_value_index_enabled(true);
        let out = db
            .execute(
                r#"for $i in collection("items")/Item
                   where $i/Section = "CD" return $i/Code"#,
            )
            .unwrap();
        assert!(out.stats.index_used);
        assert_eq!(out.stats.docs_scanned, 20);
        assert!(out.stats.morsels >= 2);
        assert_eq!(out.items.len(), 20);
    }

    #[test]
    fn errors_are_deterministic_first_morsel() {
        let par = db_with(40, StorageMode::Hot, PARALLEL);
        let seq = db_with(40, StorageMode::Hot, SEQUENTIAL);
        let q = r#"for $i in collection("items")/Item return $zzz"#;
        let (a, b) = (par.execute(q), seq.execute(q));
        let (Err(ExecError::Eval(a)), Err(ExecError::Eval(b))) = (a, b) else {
            panic!("both paths must error");
        };
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_collection_error_is_preserved() {
        let db = db_with(4, StorageMode::Hot, PARALLEL);
        assert!(matches!(
            db.execute(r#"for $i in collection("zzz")/a return $i"#),
            Err(ExecError::Eval(EvalError::UnknownCollection(_)))
        ));
    }

    #[test]
    fn config_roundtrips_and_env_defaults_are_sane() {
        let db = Database::new();
        let d = db.morsel_config();
        assert!(d.max_workers >= 1 && d.max_workers <= MAX_MORSEL_WORKERS);
        assert!(d.min_docs >= 1);
        db.set_morsel_config(MorselConfig { max_workers: 3, min_docs: 7 });
        assert_eq!(db.morsel_config(), MorselConfig { max_workers: 3, min_docs: 7 });
    }

    #[test]
    fn concurrent_morsel_queries_share_the_pool() {
        let db = Arc::new(db_with(60, StorageMode::Hot, PARALLEL));
        let expected = db
            .execute(r#"count(collection("items")//Description)"#)
            .unwrap()
            .items;
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    db.execute(r#"count(collection("items")//Description)"#)
                        .unwrap()
                        .items
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
    }
}
