//! Automatic indexes over a collection.
//!
//! Three indexes are maintained per collection, mirroring what eXist
//! builds by default (full-text + structural) plus the optional value
//! index:
//!
//! * [`PathIndex`] — structural index keyed two ways: by node **label**
//!   and by the node's full root-to-node **label path** (its Dewey prefix
//!   spelled in labels, e.g. `Item/Characteristics/Description` or
//!   `Item/@id`). Serves existential probes (`exists(P)`): an absolute
//!   child-axis path probes its exact label path, anything else falls
//!   back to the final label.
//! * [`ValueIndex`] — equality index over leaf values, also keyed both by
//!   label and by label path. Serves `/Item[Section = "CD"]` without
//!   touching non-matching documents; consulted only when the value index
//!   is switched on.
//! * [`TextIndex`] — an inverted word index over all text content,
//!   serving `contains()` text searches. Lookup is *sound*: a
//!   `contains(needle)` probe returns every document whose vocabulary has
//!   a word containing the needle's longest token as a substring, so no
//!   qualifying document is ever missed (the evaluator re-checks exact
//!   semantics afterwards).
//!
//! All probes return **authoritative supersets**: every document that
//! could satisfy the predicate is in the candidate set, and the evaluator
//! re-checks exact semantics on the candidates. For the value index this
//! requires care with elements whose string value spans *multiple* text
//! nodes: a comparison like `Section = "CD"` is against the concatenated
//! subtree text, so leaf elements are indexed under their concatenated
//! text-child value (including `""` for empty elements), and elements
//! with element children are recorded in a per-key **opaque** set that is
//! unioned into every probe — those documents are re-scanned rather than
//! wrongly ruled out.
//!
//! Indexes build from anything implementing [`TreeAccess`], so a cold
//! collection can index a binary page through the zero-copy
//! [`partix_xml::PageView`] without materializing a [`Document`].
//!
//! [`Document`]: partix_xml::Document

use partix_xml::{NodeKind, TreeAccess};
use std::collections::{HashMap, HashSet};

/// Set of document slots (indices into the collection's slot vector).
pub type DocSet = HashSet<u32>;

/// Walk every node reachable from the root of `tree` in document order,
/// calling `visit(id, kind, label_path)`. The label path of a node is its
/// root-to-node label sequence joined with `/`; attribute segments are
/// prefixed `@`. Text nodes are visited with their parent's path.
fn walk_paths<T: TreeAccess + ?Sized>(tree: &T, mut visit: impl FnMut(u32, NodeKind, &str)) {
    let mut path = String::new();
    // (node id, length of the parent's label path)
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    while let Some((id, plen)) = stack.pop() {
        path.truncate(plen);
        let kind = tree.node_kind(id);
        if kind != NodeKind::Text {
            if !path.is_empty() {
                path.push('/');
            }
            if kind == NodeKind::Attribute {
                path.push('@');
            }
            path.push_str(tree.node_label(id));
        }
        visit(id, kind, &path);
        let child_plen = path.len();
        let mut child = tree.node_first_child(id);
        while let Some(c) = child {
            stack.push((c, child_plen));
            child = tree.node_next_sibling(c);
        }
    }
}

/// Per-key entry of the value index: exact values seen for the key, plus
/// the documents where the key occurs on an element whose string value the
/// index cannot represent (element children ⇒ value spans subtrees).
#[derive(Debug, Default, Clone)]
struct ValueSlot {
    /// value → docs containing a node with this key and exactly this value.
    values: HashMap<String, DocSet>,
    /// Docs where this key occurs opaquely; unioned into every probe.
    opaque: DocSet,
}

/// Equality index on leaf values, keyed by label and by label path.
#[derive(Debug, Default, Clone)]
pub struct ValueIndex {
    by_label: HashMap<String, ValueSlot>,
    by_path: HashMap<String, ValueSlot>,
}

impl ValueIndex {
    /// Index every attribute and element of `tree`.
    pub fn insert(&mut self, slot: u32, tree: &impl TreeAccess) {
        walk_paths(tree, |id, kind, path| match kind {
            NodeKind::Attribute => {
                // label-keyed probes use the bare attribute name (a final
                // `@a` test and a final `a` name test share the label
                // namespace in relative-path fallbacks); path keys carry
                // the `@` marker so `Item/@id` and `Item/id` stay distinct
                let value = tree.node_value(id).unwrap_or("");
                let label = tree.node_label(id);
                for slot_map in [
                    self.by_label.entry(label.to_owned()).or_default(),
                    self.by_path.entry(path.to_owned()).or_default(),
                ] {
                    slot_map.values.entry(value.to_owned()).or_default().insert(slot);
                }
            }
            NodeKind::Element => {
                // a leaf element's string value is the concatenation of
                // its text children; an element with element children has
                // a composite string value the index does not store
                let mut concat = String::new();
                let mut composite = false;
                let mut child = tree.node_first_child(id);
                while let Some(c) = child {
                    match tree.node_kind(c) {
                        NodeKind::Element => composite = true,
                        NodeKind::Text => concat.push_str(tree.node_value(c).unwrap_or("")),
                        NodeKind::Attribute => {}
                    }
                    child = tree.node_next_sibling(c);
                }
                let label = tree.node_label(id);
                for slot_map in [
                    self.by_label.entry(label.to_owned()).or_default(),
                    self.by_path.entry(path.to_owned()).or_default(),
                ] {
                    if composite {
                        slot_map.opaque.insert(slot);
                    } else {
                        slot_map.values.entry(concat.clone()).or_default().insert(slot);
                    }
                }
            }
            NodeKind::Text => {}
        });
    }

    /// Documents that may contain a node labelled `label` whose string
    /// value equals `value`. Authoritative superset: an empty result
    /// means no document qualifies. Allocation-free on the probe path.
    pub fn candidates_by_label(&self, label: &str, value: &str) -> Vec<u32> {
        Self::candidates(self.by_label.get(label), value)
    }

    /// Documents that may contain a node at label path `path` (e.g.
    /// `Item/Section`, `Item/@id`) whose string value equals `value`.
    pub fn candidates_by_path(&self, path: &str, value: &str) -> Vec<u32> {
        Self::candidates(self.by_path.get(path), value)
    }

    fn candidates(entry: Option<&ValueSlot>, value: &str) -> Vec<u32> {
        let Some(entry) = entry else { return Vec::new() };
        let mut out: Vec<u32> = match entry.values.get(value) {
            Some(set) => set.union(&entry.opaque).copied().collect(),
            None => entry.opaque.iter().copied().collect(),
        };
        out.sort_unstable();
        out
    }

    /// Number of distinct `(label, value)` entries.
    pub fn entry_count(&self) -> usize {
        self.by_label.values().map(|s| s.values.len()).sum()
    }
}

/// Structural index: which documents contain a node with a given label,
/// and which contain a node at a given label path — eXist's automatic
/// path index, extended with the Dewey-prefix label paths that let
/// absolute child-axis probes skip documents by structure alone.
#[derive(Debug, Default, Clone)]
pub struct PathIndex {
    labels: HashMap<String, DocSet>,
    paths: HashMap<String, DocSet>,
}

impl PathIndex {
    pub fn insert(&mut self, slot: u32, tree: &impl TreeAccess) {
        walk_paths(tree, |id, kind, path| {
            if kind != NodeKind::Text {
                self.labels
                    .entry(tree.node_label(id).to_owned())
                    .or_default()
                    .insert(slot);
                self.paths.entry(path.to_owned()).or_default().insert(slot);
            }
        });
    }

    /// Documents containing at least one node labelled `label`.
    pub fn lookup(&self, label: &str) -> Option<&DocSet> {
        self.labels.get(label)
    }

    /// Documents containing at least one node at label path `path`.
    pub fn lookup_path(&self, path: &str) -> Option<&DocSet> {
        self.paths.get(path)
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

/// Inverted full-text index.
#[derive(Debug, Default, Clone)]
pub struct TextIndex {
    /// lower-cased word → docs.
    words: HashMap<String, DocSet>,
}

impl TextIndex {
    pub fn insert(&mut self, slot: u32, tree: &impl TreeAccess) {
        for id in 0..tree.node_count() as u32 {
            if let Some(value) = tree.node_value(id) {
                for word in tokenize(value) {
                    self.words.entry(word).or_default().insert(slot);
                }
            }
        }
    }

    /// Documents that may contain `needle` as a substring of their text.
    ///
    /// Returns `None` when the needle has no usable token (the caller
    /// must scan everything). The result is a superset of the documents
    /// whose text contains `needle`.
    pub fn lookup_contains(&self, needle: &str) -> Option<DocSet> {
        let token = longest_token(needle)?;
        let mut out = DocSet::new();
        for (word, docs) in &self.words {
            if word.contains(&token) {
                out.extend(docs.iter().copied());
            }
        }
        Some(out)
    }

    pub fn vocabulary_size(&self) -> usize {
        self.words.len()
    }
}

fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// The longest alphanumeric token of a needle — the most selective probe.
fn longest_token(needle: &str) -> Option<String> {
    tokenize(needle).max_by_key(String::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::{parse, Document};

    fn doc(xml: &str) -> Document {
        parse(xml).unwrap()
    }

    #[test]
    fn value_index_leaf_elements() {
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc("<Item><Section>CD</Section></Item>"));
        idx.insert(1, &doc("<Item><Section>DVD</Section></Item>"));
        idx.insert(2, &doc("<Item><Section>CD</Section></Item>"));
        assert_eq!(idx.candidates_by_label("Section", "CD"), [0, 2]);
        assert!(idx.candidates_by_label("Section", "BOOK").is_empty());
        assert!(idx.candidates_by_label("Name", "CD").is_empty());
    }

    #[test]
    fn value_index_path_keys() {
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc("<Item><Section>CD</Section></Item>"));
        idx.insert(1, &doc("<Item><Other><Section>CD</Section></Other></Item>"));
        // the path key separates same-labelled nodes at different depths
        assert_eq!(idx.candidates_by_path("Item/Section", "CD"), [0]);
        assert_eq!(idx.candidates_by_path("Item/Other/Section", "CD"), [1]);
        // the label key still reaches both
        assert_eq!(idx.candidates_by_label("Section", "CD"), [0, 1]);
    }

    #[test]
    fn value_index_attributes() {
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc(r#"<a id="7"/>"#));
        assert_eq!(idx.candidates_by_label("id", "7"), [0]);
        assert_eq!(idx.candidates_by_path("a/@id", "7"), [0]);
    }

    #[test]
    fn value_index_empty_elements_are_probeable() {
        // string value of <Section/> is "" — a probe for "" must find it
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc("<Item><Section/></Item>"));
        idx.insert(1, &doc("<Item><Section>CD</Section></Item>"));
        assert_eq!(idx.candidates_by_label("Section", ""), [0]);
        assert_eq!(idx.candidates_by_path("Item/Section", ""), [0]);
    }

    #[test]
    fn value_index_composite_elements_stay_candidates() {
        // <Section><b>C</b>D</Section> has string value "CD" spanning two
        // text nodes; the index cannot prove or refute equality, so the
        // document must stay in the candidate set for ANY probed value
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc("<Item><Section><b>C</b>D</Section></Item>"));
        idx.insert(1, &doc("<Item><Section>CD</Section></Item>"));
        assert_eq!(idx.candidates_by_label("Section", "CD"), [0, 1]);
        assert_eq!(idx.candidates_by_label("Section", "ZZZ"), [0]);
        assert_eq!(idx.candidates_by_path("Item/Section", "CD"), [0, 1]);
    }

    #[test]
    fn path_index_label_lookup() {
        let mut idx = PathIndex::default();
        idx.insert(0, &doc("<Item><Release>2005</Release></Item>"));
        idx.insert(1, &doc("<Item><Name>x</Name></Item>"));
        idx.insert(2, &doc(r#"<Item id="3"><Release>2006</Release></Item>"#));
        let hits = idx.lookup("Release").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&0) && hits.contains(&2));
        // attributes are indexed too
        assert!(idx.lookup("id").unwrap().contains(&2));
        assert!(idx.lookup("Nothing").is_none());
    }

    #[test]
    fn path_index_dewey_prefix_paths() {
        let mut idx = PathIndex::default();
        idx.insert(0, &doc("<Item><Release>2005</Release></Item>"));
        idx.insert(1, &doc("<Other><Item><Release>x</Release></Item></Other>"));
        let hits = idx.lookup_path("Item/Release").unwrap();
        assert_eq!(hits.len(), 1);
        assert!(hits.contains(&0));
        assert!(idx.lookup_path("Other/Item/Release").unwrap().contains(&1));
        assert!(idx.lookup_path("Release").is_none());
        assert!(idx.path_count() >= 4);
    }

    #[test]
    fn text_index_word_lookup() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>a very good record</d>"));
        idx.insert(1, &doc("<d>absolute goodness</d>"));
        idx.insert(2, &doc("<d>nothing here</d>"));
        // substring semantics: "good" must reach both "good" and "goodness"
        let hits = idx.lookup_contains("good").unwrap();
        assert!(hits.contains(&0) && hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn text_index_multiword_needle() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>a very good record</d>"));
        // longest token of "good record" is "record"
        let hits = idx.lookup_contains("good record").unwrap();
        assert!(hits.contains(&0));
    }

    #[test]
    fn text_index_case_insensitive_probe() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>Good Stuff</d>"));
        assert!(idx.lookup_contains("good").unwrap().contains(&0));
    }

    #[test]
    fn empty_needle_forces_scan() {
        let idx = TextIndex::default();
        assert!(idx.lookup_contains("  --- ").is_none());
        assert!(idx.lookup_contains("").is_none());
    }

    #[test]
    fn indexes_build_identically_from_page_view() {
        let xml = r#"<Store><Item id="1"><Section>CD</Section><D>good one</D></Item>
                     <Item id="2"><Section><b>D</b>VD</Section><D/></Item></Store>"#;
        let document = doc(xml);
        let page = partix_xml::binary::encode(&document);
        let view = partix_xml::PageView::parse(&page).unwrap();

        let (mut v1, mut v2) = (ValueIndex::default(), ValueIndex::default());
        v1.insert(3, &document);
        v2.insert(3, &view);
        for (label, value) in
            [("Section", "CD"), ("Section", "DVD"), ("id", "2"), ("D", ""), ("D", "good one")]
        {
            assert_eq!(
                v1.candidates_by_label(label, value),
                v2.candidates_by_label(label, value),
                "label probe {label}={value}"
            );
        }
        assert_eq!(
            v1.candidates_by_path("Store/Item/Section", "CD"),
            v2.candidates_by_path("Store/Item/Section", "CD"),
        );

        let (mut p1, mut p2) = (PathIndex::default(), PathIndex::default());
        p1.insert(3, &document);
        p2.insert(3, &view);
        assert_eq!(p1.label_count(), p2.label_count());
        assert_eq!(p1.path_count(), p2.path_count());
        assert_eq!(p1.lookup_path("Store/Item/@id"), p2.lookup_path("Store/Item/@id"));

        let (mut t1, mut t2) = (TextIndex::default(), TextIndex::default());
        t1.insert(3, &document);
        t2.insert(3, &view);
        assert_eq!(t1.vocabulary_size(), t2.vocabulary_size());
        assert_eq!(t1.lookup_contains("good"), t2.lookup_contains("good"));
    }
}
