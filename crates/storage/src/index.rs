//! Automatic indexes over a collection.
//!
//! Three indexes are maintained per collection, mirroring what eXist
//! builds by default (full-text + structural) plus the optional value
//! index:
//!
//! * [`PathIndex`] — maps node labels to the documents containing them,
//!   serving existential probes (`exists(P)`).
//! * [`ValueIndex`] — maps `(leaf element or attribute label, exact
//!   value)` to the set of documents containing such a node. Serves
//!   equality predicates (`/Item/Section = "CD"`); consulted only when
//!   the node's value index is switched on.
//! * [`TextIndex`] — an inverted word index over all text content,
//!   serving `contains()` text searches. Lookup is *sound*: a
//!   `contains(needle)` probe returns every document whose vocabulary has
//!   a word containing the needle's longest token as a substring, so no
//!   qualifying document is ever missed (the evaluator re-checks exact
//!   semantics afterwards).
//!
//! Both lookups are over-approximations keyed by the *final label* of the
//! probing path — fragment-local documents re-rooted by projection still
//! hit the same entries.

use partix_xml::{Document, NodeKind};
use std::collections::{HashMap, HashSet};

/// Set of document slots (indices into the collection's doc vector).
pub type DocSet = HashSet<u32>;

/// Equality index on leaf values.
#[derive(Debug, Default, Clone)]
pub struct ValueIndex {
    /// `(label, value) → docs`.
    entries: HashMap<(String, String), DocSet>,
}

impl ValueIndex {
    /// Index every leaf element and attribute of `doc`.
    pub fn insert(&mut self, slot: u32, doc: &Document) {
        for node in doc.root().descendants_or_self() {
            match node.kind() {
                NodeKind::Attribute => {
                    self.entries
                        .entry((node.label().to_owned(), node.value().unwrap_or("").to_owned()))
                        .or_default()
                        .insert(slot);
                }
                NodeKind::Text => {
                    if let Some(parent) = node.parent() {
                        self.entries
                            .entry((
                                parent.label().to_owned(),
                                node.value().unwrap_or("").to_owned(),
                            ))
                            .or_default()
                            .insert(slot);
                    }
                }
                NodeKind::Element => {}
            }
        }
    }

    /// Documents that may contain a node labelled `label` with exactly
    /// `value` as its text.
    pub fn lookup(&self, label: &str, value: &str) -> Option<&DocSet> {
        self.entries.get(&(label.to_owned(), value.to_owned()))
    }

    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

/// Structural label index: which documents contain at least one element
/// or attribute with a given label — eXist's automatic path index, in the
/// granularity our localization needs. Serves existential probes
/// (`exists(P)`): a document can only satisfy `P` if it contains `P`'s
/// final label somewhere.
#[derive(Debug, Default, Clone)]
pub struct PathIndex {
    labels: HashMap<String, DocSet>,
}

impl PathIndex {
    pub fn insert(&mut self, slot: u32, doc: &Document) {
        for node in doc.root().descendants_or_self() {
            if node.kind() != NodeKind::Text {
                self.labels
                    .entry(node.label().to_owned())
                    .or_default()
                    .insert(slot);
            }
        }
    }

    /// Documents containing at least one node labelled `label`.
    pub fn lookup(&self, label: &str) -> Option<&DocSet> {
        self.labels.get(label)
    }

    pub fn label_count(&self) -> usize {
        self.labels.len()
    }
}

/// Inverted full-text index.
#[derive(Debug, Default, Clone)]
pub struct TextIndex {
    /// lower-cased word → docs.
    words: HashMap<String, DocSet>,
}

impl TextIndex {
    pub fn insert(&mut self, slot: u32, doc: &Document) {
        for node in doc.root().descendants_or_self() {
            if let Some(value) = node.value() {
                for word in tokenize(value) {
                    self.words.entry(word).or_default().insert(slot);
                }
            }
        }
    }

    /// Documents that may contain `needle` as a substring of their text.
    ///
    /// Returns `None` when the needle has no usable token (the caller
    /// must scan everything). The result is a superset of the documents
    /// whose text contains `needle`.
    pub fn lookup_contains(&self, needle: &str) -> Option<DocSet> {
        let token = longest_token(needle)?;
        let mut out = DocSet::new();
        for (word, docs) in &self.words {
            if word.contains(&token) {
                out.extend(docs.iter().copied());
            }
        }
        Some(out)
    }

    pub fn vocabulary_size(&self) -> usize {
        self.words.len()
    }
}

fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
}

/// The longest alphanumeric token of a needle — the most selective probe.
fn longest_token(needle: &str) -> Option<String> {
    tokenize(needle).max_by_key(String::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::parse;

    fn doc(xml: &str) -> Document {
        parse(xml).unwrap()
    }

    #[test]
    fn value_index_leaf_elements() {
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc("<Item><Section>CD</Section></Item>"));
        idx.insert(1, &doc("<Item><Section>DVD</Section></Item>"));
        idx.insert(2, &doc("<Item><Section>CD</Section></Item>"));
        let hits = idx.lookup("Section", "CD").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&0) && hits.contains(&2));
        assert!(idx.lookup("Section", "BOOK").is_none());
        assert!(idx.lookup("Name", "CD").is_none());
    }

    #[test]
    fn value_index_attributes() {
        let mut idx = ValueIndex::default();
        idx.insert(0, &doc(r#"<a id="7"/>"#));
        assert!(idx.lookup("id", "7").unwrap().contains(&0));
    }

    #[test]
    fn path_index_label_lookup() {
        let mut idx = PathIndex::default();
        idx.insert(0, &doc("<Item><Release>2005</Release></Item>"));
        idx.insert(1, &doc("<Item><Name>x</Name></Item>"));
        idx.insert(2, &doc(r#"<Item id="3"><Release>2006</Release></Item>"#));
        let hits = idx.lookup("Release").unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains(&0) && hits.contains(&2));
        // attributes are indexed too
        assert!(idx.lookup("id").unwrap().contains(&2));
        assert!(idx.lookup("Nothing").is_none());
    }

    #[test]
    fn text_index_word_lookup() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>a very good record</d>"));
        idx.insert(1, &doc("<d>absolute goodness</d>"));
        idx.insert(2, &doc("<d>nothing here</d>"));
        // substring semantics: "good" must reach both "good" and "goodness"
        let hits = idx.lookup_contains("good").unwrap();
        assert!(hits.contains(&0) && hits.contains(&1));
        assert!(!hits.contains(&2));
    }

    #[test]
    fn text_index_multiword_needle() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>a very good record</d>"));
        // longest token of "good record" is "record"
        let hits = idx.lookup_contains("good record").unwrap();
        assert!(hits.contains(&0));
    }

    #[test]
    fn text_index_case_insensitive_probe() {
        let mut idx = TextIndex::default();
        idx.insert(0, &doc("<d>Good Stuff</d>"));
        assert!(idx.lookup_contains("good").unwrap().contains(&0));
    }

    #[test]
    fn empty_needle_forces_scan() {
        let idx = TextIndex::default();
        assert!(idx.lookup_contains("  --- ").is_none());
        assert!(idx.lookup_contains("").is_none());
    }
}
