//! The database: named collections of documents plus their indexes.

use crate::index::{PathIndex, TextIndex, ValueIndex};
use parking_lot::RwLock;
use partix_query::{CollectionProvider, EvalError};
use partix_xml::{binary, Document, PageView};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// How a collection keeps its documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Pre-parsed in memory (eXist's paged DOM — the fast path).
    #[default]
    Hot,
    /// Compact binary pages decoded on every access. Models the
    /// per-document parse cost the paper observed when a fragment is
    /// stored as many small documents (FragMode1).
    Cold,
}

/// Storage-level failures.
#[derive(Debug)]
pub enum StorageError {
    UnknownCollection(String),
    DuplicateCollection(String),
    Io(std::io::Error),
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownCollection(n) => write!(f, "unknown collection {n:?}"),
            StorageError::DuplicateCollection(n) => {
                write!(f, "collection {n:?} already exists")
            }
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> StorageError {
        StorageError::Io(e)
    }
}

/// Tombstone count at which a collection considers compacting; actual
/// compaction additionally requires the dead slots to outnumber the live
/// ones, so the O(collection) rebuild amortizes over at least as many
/// deletions as there are surviving documents.
const COMPACT_MIN_DEAD: usize = 64;

/// One stored collection.
///
/// Slots are **stable**: deleting a document tombstones its slot (the
/// per-slot entry goes to `None`) instead of shifting every later slot
/// down. Index entries for dead slots go stale harmlessly — every probe
/// filters through the liveness check — and the vectors are compacted
/// (with an index rebuild) only once tombstones dominate.
pub struct Collection {
    pub name: String,
    pub mode: StorageMode,
    /// Hot documents (shared with query results); `None` = tombstone.
    docs: Vec<Option<Arc<Document>>>,
    /// Cold pages (decoded per access when `mode == Cold`); `None` =
    /// tombstone.
    pages: Vec<Option<bytes::Bytes>>,
    /// Per-slot document names — lets `doc("name")` lookups resolve
    /// without decoding any cold page.
    names: Vec<Option<String>>,
    /// name → live slots carrying it, ascending. Documents stored through
    /// the raw `store` path may duplicate names; lookups resolve to the
    /// lowest slot, matching the old first-match scan.
    name_map: HashMap<String, Vec<u32>>,
    /// Live (non-tombstoned) slot count.
    live: usize,
    value_index: ValueIndex,
    text_index: TextIndex,
    path_index: PathIndex,
}

impl Collection {
    fn new(name: &str, mode: StorageMode) -> Collection {
        Collection {
            name: name.to_owned(),
            mode,
            docs: Vec::new(),
            pages: Vec::new(),
            names: Vec::new(),
            name_map: HashMap::new(),
            live: 0,
            value_index: ValueIndex::default(),
            text_index: TextIndex::default(),
            path_index: PathIndex::default(),
        }
    }

    /// Number of stored (live) documents.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of physical slots, tombstones included. Slot numbers run
    /// `0..physical_len()`; only [`Collection::is_live`] ones hold data.
    fn physical_len(&self) -> usize {
        self.names.len()
    }

    fn is_live(&self, slot: u32) -> bool {
        match self.mode {
            StorageMode::Hot => matches!(self.docs.get(slot as usize), Some(Some(_))),
            StorageMode::Cold => matches!(self.pages.get(slot as usize), Some(Some(_))),
        }
    }

    /// All live slots, ascending — the full-scan candidate list.
    pub(crate) fn live_slots(&self) -> Vec<u32> {
        (0..self.physical_len() as u32).filter(|&s| self.is_live(s)).collect()
    }

    /// Total size of the stored pages/documents in bytes (approximate for
    /// hot collections).
    pub fn byte_size(&self) -> usize {
        match self.mode {
            StorageMode::Hot => {
                self.docs.iter().flatten().map(|d| d.approx_size()).sum()
            }
            StorageMode::Cold => self.pages.iter().flatten().map(bytes::Bytes::len).sum(),
        }
    }

    fn register_name(&mut self, slot: u32, name: Option<&str>) {
        self.names.push(name.map(str::to_owned));
        if let Some(name) = name {
            // appends keep each slot list ascending
            self.name_map.entry(name.to_owned()).or_default().push(slot);
        }
        self.live += 1;
    }

    fn insert(&mut self, doc: Document) {
        self.insert_shared(Arc::new(doc));
    }

    /// Insert an already-shared document without deep-copying it: hot
    /// collections adopt the `Arc` directly (one refcount bump), cold
    /// collections encode through the shared reference.
    fn insert_shared(&mut self, doc: Arc<Document>) {
        let slot = self.physical_len() as u32;
        self.value_index.insert(slot, &*doc);
        self.text_index.insert(slot, &*doc);
        self.path_index.insert(slot, &*doc);
        self.register_name(slot, doc.name.as_deref());
        match self.mode {
            StorageMode::Hot => {
                self.docs.push(Some(doc));
                self.pages.push(None);
            }
            StorageMode::Cold => {
                self.pages.push(Some(binary::encode(&doc)));
                self.docs.push(None);
            }
        }
    }

    /// Ingest an already-encoded binary page. Cold collections keep the
    /// page verbatim and index it through the zero-copy [`PageView`] —
    /// **no document is materialized**; hot collections decode it once.
    fn insert_page(&mut self, page: bytes::Bytes) -> Result<(), StorageError> {
        let view = PageView::parse(&page)
            .map_err(|e| StorageError::Corrupt(format!("bad page: {e}")))?;
        let slot = self.physical_len() as u32;
        self.value_index.insert(slot, &view);
        self.text_index.insert(slot, &view);
        self.path_index.insert(slot, &view);
        let name = view.name().map(str::to_owned);
        match self.mode {
            StorageMode::Hot => {
                let doc = view.to_document();
                drop(view);
                self.register_name(slot, name.as_deref());
                self.docs.push(Some(Arc::new(doc)));
                self.pages.push(None);
            }
            StorageMode::Cold => {
                drop(view);
                self.register_name(slot, name.as_deref());
                self.pages.push(Some(page));
                self.docs.push(None);
            }
        }
        Ok(())
    }

    /// Slot of the document named `name`, if any — one hash probe.
    fn slot_by_name(&self, name: &str) -> Option<u32> {
        self.name_map.get(name).and_then(|slots| slots.first().copied())
    }

    /// Materialize one document (decoding if cold). `slot` must be live.
    fn fetch(&self, slot: u32) -> Arc<Document> {
        match self.mode {
            StorageMode::Hot => {
                Arc::clone(self.docs[slot as usize].as_ref().expect("live slot"))
            }
            StorageMode::Cold => Arc::new(
                binary::decode(self.pages[slot as usize].as_ref().expect("live slot"))
                    .expect("pages written by insert() always decode"),
            ),
        }
    }

    fn all(&self) -> Vec<Arc<Document>> {
        self.live_slots().into_iter().map(|s| self.fetch(s)).collect()
    }

    /// Drop dead index entries and sort: probe results are ascending
    /// live slots.
    fn live_sorted(&self, set: impl IntoIterator<Item = u32>) -> Vec<u32> {
        let mut v: Vec<u32> = set.into_iter().filter(|&s| self.is_live(s)).collect();
        v.sort_unstable();
        v
    }

    /// Candidate slots for an equality probe keyed by final label.
    /// Authoritative superset: empty means no document qualifies.
    pub(crate) fn probe_value_label(&self, label: &str, value: &str) -> Vec<u32> {
        self.live_sorted(self.value_index.candidates_by_label(label, value))
    }

    /// Candidate slots for an equality probe keyed by the full label path
    /// (e.g. `Item/Section`, `Item/@id`).
    pub(crate) fn probe_value_path(&self, path: &str, value: &str) -> Vec<u32> {
        self.live_sorted(self.value_index.candidates_by_path(path, value))
    }

    /// Candidate slots for an existential probe on a label; an unseen
    /// label yields the empty set.
    pub(crate) fn probe_label(&self, label: &str) -> Vec<u32> {
        match self.path_index.lookup(label) {
            Some(set) => self.live_sorted(set.iter().copied()),
            None => Vec::new(),
        }
    }

    /// Candidate slots for an existential probe on a full label path.
    pub(crate) fn probe_path(&self, path: &str) -> Vec<u32> {
        match self.path_index.lookup_path(path) {
            Some(set) => self.live_sorted(set.iter().copied()),
            None => Vec::new(),
        }
    }

    /// Candidate slots for a `contains` probe; `None` = full scan needed.
    pub(crate) fn probe_contains(&self, needle: &str) -> Option<Vec<u32>> {
        self.text_index.lookup_contains(needle).map(|set| self.live_sorted(set))
    }

    pub(crate) fn fetch_slots(&self, slots: &[u32]) -> Vec<Arc<Document>> {
        slots.iter().map(|&s| self.fetch(s)).collect()
    }

    /// Raw binary pages of the live documents (for persistence and for
    /// shipping to other nodes).
    pub fn pages(&self) -> Vec<bytes::Bytes> {
        match self.mode {
            StorageMode::Hot => {
                self.docs.iter().flatten().map(|d| binary::encode(d)).collect()
            }
            StorageMode::Cold => self.pages.iter().flatten().cloned().collect(),
        }
    }

    /// Remove the document named `name`, if present. O(1): the slot is
    /// tombstoned in place, stale index entries are filtered at probe
    /// time, and compaction is deferred until tombstones dominate.
    fn remove_by_name(&mut self, name: &str) -> bool {
        let Some(slots) = self.name_map.get_mut(name) else { return false };
        // lowest slot first, matching the old first-match scan semantics
        let slot = slots.remove(0);
        if slots.is_empty() {
            self.name_map.remove(name);
        }
        let idx = slot as usize;
        self.names[idx] = None;
        self.docs[idx] = None;
        self.pages[idx] = None;
        self.live -= 1;
        self.maybe_compact();
        true
    }

    fn maybe_compact(&mut self) {
        let dead = self.physical_len() - self.live;
        if dead >= COMPACT_MIN_DEAD && dead > self.live {
            self.compact();
        }
    }

    /// Drop tombstones, renumber slots, and rebuild the name map and all
    /// indexes. Cold collections rebuild their indexes through the
    /// zero-copy page view — no document is decoded.
    fn compact(&mut self) {
        let old_docs = std::mem::take(&mut self.docs);
        let old_pages = std::mem::take(&mut self.pages);
        let old_names = std::mem::take(&mut self.names);
        self.name_map.clear();
        self.live = 0;
        self.value_index = ValueIndex::default();
        self.text_index = TextIndex::default();
        self.path_index = PathIndex::default();
        for ((doc, page), name) in old_docs.into_iter().zip(old_pages).zip(old_names) {
            let slot = self.physical_len() as u32;
            match self.mode {
                StorageMode::Hot => {
                    let Some(doc) = doc else { continue };
                    self.value_index.insert(slot, &*doc);
                    self.text_index.insert(slot, &*doc);
                    self.path_index.insert(slot, &*doc);
                    self.register_name(slot, name.as_deref());
                    self.docs.push(Some(doc));
                    self.pages.push(None);
                }
                StorageMode::Cold => {
                    let Some(page) = page else { continue };
                    {
                        let view = PageView::parse(&page)
                            .expect("pages written by insert() always parse");
                        self.value_index.insert(slot, &view);
                        self.text_index.insert(slot, &view);
                        self.path_index.insert(slot, &view);
                    }
                    self.register_name(slot, name.as_deref());
                    self.pages.push(Some(page));
                    self.docs.push(None);
                }
            }
        }
    }
}

/// A sequential XML database instance: what each PartiX node runs.
///
/// Thread-safe: the PartiX middleware queries many databases in parallel.
pub struct Database {
    collections: RwLock<HashMap<String, Arc<RwLock<Collection>>>>,
    use_indexes: std::sync::atomic::AtomicBool,
    use_value_index: std::sync::atomic::AtomicBool,
    /// Intra-query parallelism knobs (see [`crate::parallel`]).
    morsels: RwLock<crate::parallel::MorselConfig>,
    /// Per-collection write epochs (bumped on every mutation, including
    /// drops — entries outlive their collection so the counter stays
    /// monotonic across drop/recreate cycles). Result caches layered
    /// above the storage key their entries by this counter.
    epochs: RwLock<HashMap<String, u64>>,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    pub fn new() -> Database {
        Database {
            collections: RwLock::new(HashMap::new()),
            use_indexes: std::sync::atomic::AtomicBool::new(true),
            use_value_index: std::sync::atomic::AtomicBool::new(false),
            morsels: RwLock::new(crate::parallel::MorselConfig::default()),
            epochs: RwLock::new(HashMap::new()),
        }
    }

    /// Set the morsel-parallelism knobs for this database instance.
    pub fn set_morsel_config(&self, config: crate::parallel::MorselConfig) {
        *self.morsels.write() = config;
    }

    /// Current morsel-parallelism knobs.
    pub fn morsel_config(&self) -> crate::parallel::MorselConfig {
        *self.morsels.read()
    }

    /// Enable/disable index-assisted scans (ablation studies; indexes are
    /// still maintained, just not consulted).
    pub fn set_index_enabled(&self, enabled: bool) {
        self.use_indexes.store(enabled, std::sync::atomic::Ordering::Release);
    }

    /// Whether index-assisted scans are enabled.
    pub fn index_enabled(&self) -> bool {
        self.use_indexes.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Enable equality probes against the value index. Off by default,
    /// mirroring the paper's eXist configuration: the automatically
    /// created indexes cover text search and path navigation, while
    /// value/range indexes needed manual setup (*"No other indexes were
    /// created"*).
    pub fn set_value_index_enabled(&self, enabled: bool) {
        self.use_value_index
            .store(enabled, std::sync::atomic::Ordering::Release);
    }

    /// Whether equality probes may use the value index.
    pub fn value_index_enabled(&self) -> bool {
        self.use_value_index.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Create a collection. Errors if the name is taken.
    pub fn create_collection(
        &self,
        name: &str,
        mode: StorageMode,
    ) -> Result<(), StorageError> {
        let mut map = self.collections.write();
        if map.contains_key(name) {
            return Err(StorageError::DuplicateCollection(name.to_owned()));
        }
        map.insert(name.to_owned(), Arc::new(RwLock::new(Collection::new(name, mode))));
        drop(map);
        // creating an (empty) collection is observable — it turns an
        // "unknown collection" error into an empty result
        self.bump_epoch(name);
        Ok(())
    }

    /// Store a document into a collection (created on demand, hot mode).
    pub fn store(&self, collection: &str, doc: Document) {
        let coll = self.get_or_create(collection);
        coll.write().insert(doc);
        self.bump_epoch(collection);
    }

    /// Store many documents at once.
    pub fn store_all(&self, collection: &str, docs: impl IntoIterator<Item = Document>) {
        let coll = self.get_or_create(collection);
        let mut guard = coll.write();
        for doc in docs {
            guard.insert(doc);
        }
        drop(guard);
        self.bump_epoch(collection);
    }

    /// Store shared documents without deep-copying them (hot collections
    /// adopt the `Arc`s directly) — the zero-copy path used when the
    /// coordinator re-materializes fetched fragments.
    pub fn store_all_shared(
        &self,
        collection: &str,
        docs: impl IntoIterator<Item = Arc<Document>>,
    ) {
        let coll = self.get_or_create(collection);
        let mut guard = coll.write();
        for doc in docs {
            guard.insert_shared(doc);
        }
        drop(guard);
        self.bump_epoch(collection);
    }

    /// Ingest already-encoded binary pages into a collection (which must
    /// exist — create it first to pick the storage mode). Cold
    /// collections keep the pages verbatim and index them through the
    /// zero-copy page view, so a load never materializes documents.
    pub fn store_pages(
        &self,
        collection: &str,
        pages: impl IntoIterator<Item = bytes::Bytes>,
    ) -> Result<usize, StorageError> {
        let coll = self
            .get(collection)
            .ok_or_else(|| StorageError::UnknownCollection(collection.to_owned()))?;
        let mut guard = coll.write();
        let mut stored = 0;
        for page in pages {
            guard.insert_page(page)?;
            stored += 1;
        }
        drop(guard);
        self.bump_epoch(collection);
        Ok(stored)
    }

    /// Current write epoch of `collection` (0 = never written).
    pub fn collection_epoch(&self, collection: &str) -> u64 {
        self.epochs.read().get(collection).copied().unwrap_or(0)
    }

    fn bump_epoch(&self, collection: &str) {
        *self.epochs.write().entry(collection.to_owned()).or_insert(0) += 1;
    }

    fn get_or_create(&self, name: &str) -> Arc<RwLock<Collection>> {
        if let Some(c) = self.collections.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.collections.write();
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(RwLock::new(Collection::new(name, StorageMode::Hot)))),
        )
    }

    pub(crate) fn get(&self, name: &str) -> Option<Arc<RwLock<Collection>>> {
        self.collections.read().get(name).cloned()
    }

    /// Names of all collections, sorted.
    pub fn collection_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.collections.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Documents in a collection.
    pub fn collection_len(&self, name: &str) -> Result<usize, StorageError> {
        self.get(name)
            .map(|c| c.read().len())
            .ok_or_else(|| StorageError::UnknownCollection(name.to_owned()))
    }

    /// Total bytes stored in a collection.
    pub fn collection_bytes(&self, name: &str) -> Result<usize, StorageError> {
        self.get(name)
            .map(|c| c.read().byte_size())
            .ok_or_else(|| StorageError::UnknownCollection(name.to_owned()))
    }

    /// Drop a collection; succeeds silently if absent. The write epoch
    /// is bumped either way (the drop is observable).
    pub fn drop_collection(&self, name: &str) {
        self.collections.write().remove(name);
        self.bump_epoch(name);
    }

    /// Upsert a document keyed by its name: any existing document with
    /// the same name in `collection` is replaced first (so storing the
    /// same document twice converges instead of duplicating). Returns
    /// whether a previous version was replaced. Unnamed documents are
    /// plain inserts — they can never be replaced or deleted later.
    pub fn put_doc(&self, collection: &str, doc: Document) -> bool {
        let coll = self.get_or_create(collection);
        let mut guard = coll.write();
        let replaced = match doc.name.as_deref() {
            Some(name) => guard.remove_by_name(name),
            None => false,
        };
        guard.insert(doc);
        drop(guard);
        self.bump_epoch(collection);
        replaced
    }

    /// Delete the document named `name` from `collection`. Returns
    /// whether anything was removed (an absent collection or name is a
    /// no-op, keeping deletes idempotent). The epoch bumps only on a
    /// real removal — a no-op delete is not observable.
    pub fn delete_doc(&self, collection: &str, name: &str) -> bool {
        let Some(coll) = self.get(collection) else { return false };
        let removed = coll.write().remove_by_name(name);
        if removed {
            self.bump_epoch(collection);
        }
        removed
    }

    /// Apply one logged/replicated [`crate::wal::WriteOp`]. Idempotent:
    /// applying the same op twice converges to the same state. Returns
    /// the number of documents affected (0 or 1; for a `Put`, 1 when a
    /// previous version was replaced, 0 for a fresh insert).
    pub fn apply_write(&self, op: &crate::wal::WriteOp) -> u32 {
        match op {
            crate::wal::WriteOp::Put { collection, doc } => {
                u32::from(self.put_doc(collection, doc.clone()))
            }
            crate::wal::WriteOp::Delete { collection, name } => {
                u32::from(self.delete_doc(collection, name))
            }
        }
    }
}

impl CollectionProvider for Database {
    fn collection(&self, name: &str) -> Result<Vec<Arc<Document>>, EvalError> {
        self.get(name)
            .map(|c| c.read().all())
            .ok_or_else(|| EvalError::UnknownCollection(name.to_owned()))
    }

    fn document(&self, name: &str) -> Result<Arc<Document>, EvalError> {
        // name scan first, so only the one matching document is ever
        // decoded — a cold collection used to pay a full decode per
        // stored page just to answer (or miss) a doc("…") lookup
        for coll in self.collections.read().values() {
            let guard = coll.read();
            if let Some(slot) = guard.slot_by_name(name) {
                return Ok(guard.fetch(slot));
            }
        }
        Err(EvalError::UnknownDocument(name.to_owned()))
    }

    fn collection_filtered(
        &self,
        name: &str,
        predicate: &partix_path::Predicate,
    ) -> Result<Vec<Arc<Document>>, EvalError> {
        let coll = self
            .get(name)
            .ok_or_else(|| EvalError::UnknownCollection(name.to_owned()))?;
        let guard = coll.read();
        match crate::exec::index_candidates(&guard, predicate, self.value_index_enabled()) {
            Some(slots) => Ok(guard.fetch_slots(&slots)),
            None => Ok(guard.all()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_path::Predicate;
    use partix_xml::parse;

    fn make_db(mode: StorageMode) -> Database {
        let db = Database::new();
        db.create_collection("items", mode).unwrap();
        for (name, xml) in [
            ("i1", "<Item><Section>CD</Section><D>good one</D></Item>"),
            ("i2", "<Item><Section>DVD</Section><D>fine</D></Item>"),
            ("i3", "<Item><Section>CD</Section><D>goodness</D></Item>"),
        ] {
            let mut d = parse(xml).unwrap();
            d.name = Some(name.to_owned());
            db.store("items", d);
        }
        db
    }

    #[test]
    fn store_and_fetch_hot() {
        let db = make_db(StorageMode::Hot);
        assert_eq!(db.collection_len("items").unwrap(), 3);
        let docs = db.collection("items").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[0].name.as_deref(), Some("i1"));
    }

    #[test]
    fn store_and_fetch_cold_roundtrips() {
        let db = make_db(StorageMode::Cold);
        let docs = db.collection("items").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[2].root().child_element("D").unwrap().text(), "goodness");
    }

    #[test]
    fn document_lookup_by_name() {
        let db = make_db(StorageMode::Hot);
        let d = db.document("i2").unwrap();
        assert_eq!(d.root().child_element("Section").unwrap().text(), "DVD");
        assert!(db.document("zzz").is_err());
    }

    #[test]
    fn document_lookup_works_cold_without_full_decode() {
        let db = make_db(StorageMode::Cold);
        // the name side-table answers the scan; only i3's page decodes
        let d = db.document("i3").unwrap();
        assert_eq!(d.root().child_element("D").unwrap().text(), "goodness");
        assert!(db.document("zzz").is_err());
        // unnamed documents are skippable, not matchable
        db.store("items", parse("<Item><Section>LP</Section></Item>").unwrap());
        assert!(db.document("").is_err());
    }

    #[test]
    fn filtered_uses_value_index() {
        let db = make_db(StorageMode::Hot);
        db.set_value_index_enabled(true);
        let pred = Predicate::parse(r#"/Item/Section = "CD""#).unwrap();
        let docs = db.collection_filtered("items", &pred).unwrap();
        assert_eq!(docs.len(), 2);
    }

    #[test]
    fn filtered_contains_is_sound_superset() {
        let db = make_db(StorageMode::Hot);
        let pred = Predicate::parse(r#"contains(/Item/D, "good")"#).unwrap();
        let docs = db.collection_filtered("items", &pred).unwrap();
        // must include i1 (good) and i3 (goodness)
        let names: Vec<_> = docs.iter().map(|d| d.name.clone().unwrap()).collect();
        assert!(names.contains(&"i1".to_owned()));
        assert!(names.contains(&"i3".to_owned()));
    }

    #[test]
    fn duplicate_collection_rejected() {
        let db = Database::new();
        db.create_collection("c", StorageMode::Hot).unwrap();
        assert!(matches!(
            db.create_collection("c", StorageMode::Hot),
            Err(StorageError::DuplicateCollection(_))
        ));
    }

    #[test]
    fn unknown_collection_errors() {
        let db = Database::new();
        assert!(db.collection("nope").is_err());
        assert!(db.collection_len("nope").is_err());
    }

    #[test]
    fn drop_collection_removes() {
        let db = make_db(StorageMode::Hot);
        db.drop_collection("items");
        assert!(db.collection("items").is_err());
    }

    #[test]
    fn byte_size_positive() {
        let db = make_db(StorageMode::Hot);
        assert!(db.collection_bytes("items").unwrap() > 0);
    }

    #[test]
    fn store_all_shared_adopts_arcs() {
        let db = Database::new();
        let doc = Arc::new(parse("<Item><Section>CD</Section></Item>").unwrap());
        db.store_all_shared("c", vec![Arc::clone(&doc)]);
        let fetched = db.collection("c").unwrap();
        assert_eq!(fetched.len(), 1);
        // hot storage shares the exact allocation, no deep copy
        assert!(Arc::ptr_eq(&fetched[0], &doc));
        // shared inserts are indexed like owned ones
        let pred = Predicate::parse(r#"/Item/Section = "CD""#).unwrap();
        db.set_value_index_enabled(true);
        assert_eq!(db.collection_filtered("c", &pred).unwrap().len(), 1);
    }

    #[test]
    fn delete_doc_removes_and_keeps_indexes_consistent() {
        for mode in [StorageMode::Hot, StorageMode::Cold] {
            let db = make_db(mode);
            assert!(db.delete_doc("items", "i1"));
            assert!(!db.delete_doc("items", "i1"), "second delete is a no-op");
            assert!(!db.delete_doc("items", "zzz"));
            assert!(!db.delete_doc("absent", "i1"));
            assert_eq!(db.collection_len("items").unwrap(), 2);
            // slots shifted: index probes must still answer correctly
            db.set_value_index_enabled(true);
            let pred = Predicate::parse(r#"/Item/Section = "CD""#).unwrap();
            let docs = db.collection_filtered("items", &pred).unwrap();
            let names: Vec<_> = docs.iter().map(|d| d.name.clone().unwrap()).collect();
            assert_eq!(names, vec!["i3".to_owned()], "{mode:?}");
            let pred = Predicate::parse(r#"contains(/Item/D, "good")"#).unwrap();
            let names: Vec<_> = db
                .collection_filtered("items", &pred)
                .unwrap()
                .iter()
                .map(|d| d.name.clone().unwrap())
                .collect();
            assert!(names.contains(&"i3".to_owned()), "{mode:?}");
            assert!(!names.contains(&"i1".to_owned()), "{mode:?}: stale index slot");
            assert!(db.document("i1").is_err());
        }
    }

    #[test]
    fn put_doc_replaces_by_name() {
        let db = make_db(StorageMode::Hot);
        let mut d = parse("<Item><Section>LP</Section><D>new</D></Item>").unwrap();
        d.name = Some("i2".to_owned());
        assert!(db.put_doc("items", d), "same-named doc must report replacement");
        assert_eq!(db.collection_len("items").unwrap(), 3, "replace, not append");
        let fetched = db.document("i2").unwrap();
        assert_eq!(fetched.root().child_element("Section").unwrap().text(), "LP");
        // fresh name is an insert
        let mut d = parse("<Item><Section>LP</Section></Item>").unwrap();
        d.name = Some("i9".to_owned());
        assert!(!db.put_doc("items", d));
        assert_eq!(db.collection_len("items").unwrap(), 4);
        // unnamed docs insert without replacing anything
        assert!(!db.put_doc("items", parse("<Item/>").unwrap()));
        assert_eq!(db.collection_len("items").unwrap(), 5);
    }

    #[test]
    fn write_ops_apply_idempotently_and_bump_epochs() {
        let db = make_db(StorageMode::Hot);
        let before = db.collection_epoch("items");
        let mut d = parse("<Item><Section>CD</Section></Item>").unwrap();
        d.name = Some("w1".to_owned());
        let put = crate::wal::WriteOp::Put { collection: "items".into(), doc: d };
        assert_eq!(db.apply_write(&put), 0, "fresh insert affects no prior doc");
        assert_eq!(db.apply_write(&put), 1, "re-apply replaces, state converges");
        assert_eq!(db.collection_len("items").unwrap(), 4);
        let del = crate::wal::WriteOp::Delete { collection: "items".into(), name: "w1".into() };
        assert_eq!(db.apply_write(&del), 1);
        assert_eq!(db.apply_write(&del), 0);
        assert_eq!(db.collection_len("items").unwrap(), 3);
        assert!(db.collection_epoch("items") > before, "writes must invalidate caches");
    }

    #[test]
    fn epochs_track_mutations_monotonically() {
        let db = Database::new();
        assert_eq!(db.collection_epoch("c"), 0);
        db.store("c", parse("<a/>").unwrap());
        let after_store = db.collection_epoch("c");
        assert!(after_store >= 1);
        db.store_all("c", vec![parse("<b/>").unwrap()]);
        let after_store_all = db.collection_epoch("c");
        assert!(after_store_all > after_store);
        db.drop_collection("c");
        let after_drop = db.collection_epoch("c");
        assert!(after_drop > after_store_all);
        // recreate after drop: the counter keeps increasing
        db.store_all_shared("c", vec![Arc::new(parse("<d/>").unwrap())]);
        assert!(db.collection_epoch("c") > after_drop);
        // other collections are untouched
        assert_eq!(db.collection_epoch("other"), 0);
    }
}
