//! Per-node write-ahead log and crash recovery.
//!
//! Every online write (a [`WriteOp`]) goes through three stages:
//!
//! ```text
//! append (record → wal.log) → fsync (durability point) → apply (in-memory)
//! ```
//!
//! and is acknowledged only after all three. A node killed anywhere in
//! that pipeline restarts consistent: [`DurableDb::open`] loads the last
//! checkpoint ([`Database::save_to`] snapshot) and replays the log.
//! Replay is torn-tolerant — a record cut short by the crash (length
//! header incomplete, payload truncated, or checksum mismatch) ends the
//! replay at the last fully durable record — and idempotent, so replaying
//! the same log twice (or replaying records that also made it into the
//! snapshot) converges to the same state. [`DurableDb::checkpoint`]
//! persists the snapshot and truncates the log.
//!
//! For the crash/interleaving differential tests, a [`DurableDb`] carries
//! a one-shot kill point ([`DurableDb::set_kill`]): the next write aborts
//! at the chosen [`WalStage`] exactly as a `kill -9` there would —
//! `Append` leaves a torn half-record (lost on replay, and the caller was
//! never acknowledged), `Fsync`/`Apply` leave a fully durable record that
//! replay re-applies. After a kill the instance is dead (every call fails
//! with [`WalError::Dead`]) until it is "restarted" by reopening the
//! directory with [`DurableDb::open`].
//!
//! Record layout (all little-endian): `[len: u32][crc32: u32][payload]`,
//! one record per write, `crc32` covering the payload.

use crate::db::{Database, StorageError};
use parking_lot::Mutex;
use partix_xml::{binary, Document};
use std::fmt;
use std::fs;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// File name of the log inside a database directory.
pub const WAL_FILE: &str = "wal.log";

/// One online write, as routed by the coordinator and logged by the WAL.
///
/// `Put` is an upsert keyed by document *name*: any existing document
/// with the same name in the collection is replaced, so inserts and
/// updates share one primitive and replaying a log twice is a no-op.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    /// Insert-or-replace `doc` (keyed by `doc.name`) in `collection`.
    Put { collection: String, doc: Document },
    /// Remove the document named `name` from `collection` (no-op when
    /// absent — deletes are idempotent).
    Delete { collection: String, name: String },
}

impl WriteOp {
    /// The collection this write touches.
    pub fn collection(&self) -> &str {
        match self {
            WriteOp::Put { collection, .. } | WriteOp::Delete { collection, .. } => collection,
        }
    }

    /// The document name this write is keyed by (`None` for an unnamed
    /// `Put`, which can never be replaced or deleted later).
    pub fn doc_name(&self) -> Option<&str> {
        match self {
            WriteOp::Put { doc, .. } => doc.name.as_deref(),
            WriteOp::Delete { name, .. } => Some(name),
        }
    }
}

impl fmt::Display for WriteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOp::Put { collection, doc } => {
                write!(f, "put {:?} into {collection:?}", doc.name.as_deref().unwrap_or("<unnamed>"))
            }
            WriteOp::Delete { collection, name } => {
                write!(f, "delete {name:?} from {collection:?}")
            }
        }
    }
}

/// The three stages of the write pipeline — also the kill points the
/// crash tests inject between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalStage {
    /// Crash mid-append: a torn half-record reaches the disk. The write
    /// was never acknowledged and is lost on replay.
    Append,
    /// Crash after the record is written but before the fsync returns.
    /// The record is on disk, so replay re-applies it.
    Fsync,
    /// Crash after the durability point but before the in-memory apply.
    /// Replay re-applies it.
    Apply,
}

impl WalStage {
    /// All stages, in pipeline order.
    pub const ALL: [WalStage; 3] = [WalStage::Append, WalStage::Fsync, WalStage::Apply];

    /// Whether a write killed at this stage survives recovery (its
    /// record reached the durability path in full).
    pub fn survives_recovery(self) -> bool {
        !matches!(self, WalStage::Append)
    }
}

impl fmt::Display for WalStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalStage::Append => f.write_str("append"),
            WalStage::Fsync => f.write_str("fsync"),
            WalStage::Apply => f.write_str("apply"),
        }
    }
}

/// WAL-level failures.
#[derive(Debug)]
pub enum WalError {
    /// The node was killed at the given stage (simulated crash).
    Killed(WalStage),
    /// The node already crashed; reopen the directory to restart it.
    Dead,
    Io(std::io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Killed(stage) => write!(f, "node killed at WAL stage {stage}"),
            WalError::Dead => f.write_str("node is down (killed mid-write; reopen to restart)"),
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// CRC-32 (IEEE, reflected) over `bytes` — same polynomial as the PXN1
/// frame checksum, reimplemented here so `partix-storage` stays free of
/// a `partix-net` dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_u32(buf: &[u8], at: &mut usize) -> Option<u32> {
    let bytes = buf.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(bytes.try_into().unwrap()))
}

fn get_str(buf: &[u8], at: &mut usize) -> Option<String> {
    let len = get_u32(buf, at)? as usize;
    let bytes = buf.get(*at..*at + len)?;
    *at += len;
    String::from_utf8(bytes.to_vec()).ok()
}

/// Serialize an op to a record payload (without the record header).
pub fn encode_op(op: &WriteOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match op {
        WriteOp::Put { collection, doc } => {
            out.push(0);
            put_str(&mut out, collection);
            let page = binary::encode(doc);
            out.extend_from_slice(&(page.len() as u32).to_le_bytes());
            out.extend_from_slice(&page);
        }
        WriteOp::Delete { collection, name } => {
            out.push(1);
            put_str(&mut out, collection);
            put_str(&mut out, name);
        }
    }
    out
}

/// Decode a record payload back into an op. `None` = corrupt payload.
pub fn decode_op(payload: &[u8]) -> Option<WriteOp> {
    let kind = *payload.first()?;
    let mut at = 1usize;
    match kind {
        0 => {
            let collection = get_str(payload, &mut at)?;
            let len = get_u32(payload, &mut at)? as usize;
            let page = payload.get(at..at + len)?;
            at += len;
            if at != payload.len() {
                return None;
            }
            let doc = binary::decode(page).ok()?;
            Some(WriteOp::Put { collection, doc })
        }
        1 => {
            let collection = get_str(payload, &mut at)?;
            let name = get_str(payload, &mut at)?;
            if at != payload.len() {
                return None;
            }
            Some(WriteOp::Delete { collection, name })
        }
        _ => None,
    }
}

/// Frame an op as a full on-disk record: `[len][crc32][payload]`.
pub fn encode_record(op: &WriteOp) -> Vec<u8> {
    let payload = encode_op(op);
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&crc32(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// What a replay found in a log file.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Fully durable records decoded.
    pub records: usize,
    /// Bytes covered by those records — everything past this offset is a
    /// torn tail (safe to truncate away).
    pub valid_bytes: u64,
    /// Whether a torn/corrupt tail was found (and ignored).
    pub torn: bool,
}

/// Read every durable record from a log buffer, stopping (not failing)
/// at the first torn or corrupt record — a crash can only tear the
/// *tail*, so everything before it is trustworthy.
pub fn replay_bytes(buf: &[u8]) -> (Vec<WriteOp>, ReplayReport) {
    let mut ops = Vec::new();
    let mut report = ReplayReport::default();
    let mut at = 0usize;
    while at < buf.len() {
        let mut cursor = at;
        let Some(len) = get_u32(buf, &mut cursor) else { break };
        let Some(crc) = get_u32(buf, &mut cursor) else { break };
        let Some(payload) = buf.get(cursor..cursor + len as usize) else { break };
        if crc32(payload) != crc {
            break;
        }
        let Some(op) = decode_op(payload) else { break };
        ops.push(op);
        at = cursor + len as usize;
        report.records += 1;
        report.valid_bytes = at as u64;
    }
    report.torn = (report.valid_bytes as usize) < buf.len();
    (ops, report)
}

/// Replay a log file (absent file = empty log).
pub fn replay_file(path: &Path) -> Result<(Vec<WriteOp>, ReplayReport), WalError> {
    match fs::read(path) {
        Ok(bytes) => Ok(replay_bytes(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Ok((Vec::new(), ReplayReport::default()))
        }
        Err(e) => Err(WalError::Io(e)),
    }
}

// ---------------------------------------------------------------------
// The log file
// ---------------------------------------------------------------------

/// An open write-ahead log: appends records, fsyncs, truncates at
/// checkpoints, and counts both for the benchmarks.
pub struct Wal {
    file: Mutex<fs::File>,
    path: PathBuf,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

impl Wal {
    /// Open (or create) the log at `path`, positioned for appends.
    pub fn open(path: &Path) -> Result<Wal, WalError> {
        let mut file =
            fs::OpenOptions::new().create(true).truncate(false).read(true).write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file: Mutex::new(file),
            path: path.to_owned(),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append raw bytes (a full record — or, for crash simulation, a
    /// deliberate prefix of one).
    pub fn append(&self, bytes: &[u8]) -> Result<(), WalError> {
        let mut file = self.file.lock();
        file.write_all(bytes)?;
        self.appends.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// The durability point: flush the log to stable storage.
    pub fn sync(&self) -> Result<(), WalError> {
        self.file.lock().sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Checkpoint: drop every logged record (the snapshot now covers
    /// them) and make the truncation itself durable.
    pub fn truncate(&self) -> Result<(), WalError> {
        let mut file = self.file.lock();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_data()?;
        self.fsyncs.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len(&self) -> Result<u64, WalError> {
        Ok(self.file.lock().metadata()?.len())
    }

    /// Whether the log holds no bytes.
    pub fn is_empty(&self) -> Result<bool, WalError> {
        Ok(self.len()? == 0)
    }

    /// Records appended since this handle opened.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Acquire)
    }

    /// Fsyncs issued since this handle opened (including truncations).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Acquire)
    }

    /// Re-read and replay the log from disk (used by tests to prove
    /// idempotence without reopening the database).
    pub fn replay(&self) -> Result<(Vec<WriteOp>, ReplayReport), WalError> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        file.seek(SeekFrom::End(0))?;
        Ok(replay_bytes(&buf))
    }
}

// ---------------------------------------------------------------------
// DurableDb: Database + WAL + crash recovery
// ---------------------------------------------------------------------

/// A [`Database`] whose writes are write-ahead logged to a directory, so
/// a node killed mid-write reopens to a consistent state: last snapshot
/// plus every durable log record, in order.
pub struct DurableDb {
    db: Arc<Database>,
    wal: Wal,
    dir: PathBuf,
    /// One-shot kill point for crash tests (see [`DurableDb::set_kill`]).
    kill: Mutex<Option<WalStage>>,
    /// Set once a kill fires: the "process" is gone until reopen.
    dead: AtomicBool,
    /// Serializes the append→fsync→apply pipeline so the log order *is*
    /// the apply order.
    write_lock: Mutex<()>,
}

impl DurableDb {
    /// Open a database directory: load the snapshot (if any), replay the
    /// log's durable records on top, and position the log for appends.
    /// Creates the directory when missing.
    pub fn open(dir: &Path) -> Result<DurableDb, StorageError> {
        fs::create_dir_all(dir)?;
        let db = if dir.join("MANIFEST").exists() {
            Database::load_from(dir)?
        } else {
            Database::new()
        };
        let wal_path = dir.join(WAL_FILE);
        let (ops, report) = replay_file(&wal_path).map_err(wal_to_storage)?;
        for op in &ops {
            db.apply_write(op);
        }
        if report.torn {
            // Cut the torn tail off *now*: records appended after this
            // reopen must not land behind unreadable bytes, or the next
            // replay would stop at the old tear and lose them.
            let file = fs::OpenOptions::new().write(true).open(&wal_path)?;
            file.set_len(report.valid_bytes)?;
            file.sync_data()?;
        }
        let wal = Wal::open(&wal_path).map_err(wal_to_storage)?;
        Ok(DurableDb {
            db: Arc::new(db),
            wal,
            dir: dir.to_owned(),
            kill: Mutex::new(None),
            dead: AtomicBool::new(false),
            write_lock: Mutex::new(()),
        })
    }

    /// The in-memory database serving reads.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The directory this database persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The underlying log (counters, size).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Arm a one-shot kill point: the next write dies at `stage`.
    pub fn set_kill(&self, stage: Option<WalStage>) {
        *self.kill.lock() = stage;
    }

    /// Whether a kill has fired (the instance must be reopened).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    fn take_kill(&self, stage: WalStage) -> bool {
        let mut kill = self.kill.lock();
        if *kill == Some(stage) {
            *kill = None;
            self.dead.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Run one write through the full pipeline. Returns the number of
    /// documents the op affected (0 or 1); an `Err` means the write was
    /// NOT acknowledged — for [`WalError::Killed`] the recovery outcome
    /// is deterministic per [`WalStage::survives_recovery`].
    pub fn apply(&self, op: &WriteOp) -> Result<u32, WalError> {
        let _guard = self.write_lock.lock();
        if self.is_dead() {
            return Err(WalError::Dead);
        }
        let record = encode_record(op);
        if self.take_kill(WalStage::Append) {
            // a torn half-record reaches the disk, exactly as a crash
            // mid-write leaves it; replay must shrug it off
            self.wal.append(&record[..record.len() / 2])?;
            return Err(WalError::Killed(WalStage::Append));
        }
        self.wal.append(&record)?;
        if self.take_kill(WalStage::Fsync) {
            return Err(WalError::Killed(WalStage::Fsync));
        }
        self.wal.sync()?;
        if self.take_kill(WalStage::Apply) {
            return Err(WalError::Killed(WalStage::Apply));
        }
        Ok(self.db.apply_write(op))
    }

    /// Persist the snapshot and truncate the log. After a checkpoint a
    /// reopen replays nothing — the snapshot alone reproduces the state.
    pub fn checkpoint(&self) -> Result<(), StorageError> {
        let _guard = self.write_lock.lock();
        if self.is_dead() {
            return Err(StorageError::Io(std::io::Error::other("node is down")));
        }
        self.db.save_to(&self.dir)?;
        self.wal.truncate().map_err(wal_to_storage)?;
        Ok(())
    }

    /// Fsyncs issued by this instance (durability points + checkpoints).
    pub fn fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }
}

fn wal_to_storage(e: WalError) -> StorageError {
    match e {
        WalError::Io(io) => StorageError::Io(io),
        other => StorageError::Corrupt(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_xml::parse;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("partix-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn named(name: &str, xml: &str) -> Document {
        let mut d = parse(xml).unwrap();
        d.name = Some(name.to_owned());
        d
    }

    fn put(name: &str, section: &str) -> WriteOp {
        WriteOp::Put {
            collection: "items".into(),
            doc: named(name, &format!("<Item><Section>{section}</Section></Item>")),
        }
    }

    fn state(db: &Database) -> Vec<(String, Vec<String>)> {
        db.collection_names()
            .into_iter()
            .map(|c| {
                let mut docs: Vec<String> = partix_query::CollectionProvider::collection(db, &c)
                    .unwrap_or_default()
                    .iter()
                    .map(|d| format!("{:?}:{}", d.name, partix_xml::serializer::to_string(d)))
                    .collect();
                docs.sort();
                (c, docs)
            })
            .collect()
    }

    #[test]
    fn op_codec_roundtrips() {
        for op in [
            put("i1", "CD"),
            WriteOp::Delete { collection: "items".into(), name: "i1".into() },
            WriteOp::Put { collection: "c".into(), doc: parse("<a><b>t</b></a>").unwrap() },
        ] {
            let payload = encode_op(&op);
            assert_eq!(decode_op(&payload), Some(op.clone()), "{op}");
        }
        // corrupt payloads decode to None, never panic
        assert_eq!(decode_op(&[]), None);
        assert_eq!(decode_op(&[9, 0, 0]), None);
        let mut good = encode_op(&put("i1", "CD"));
        good.push(0); // trailing garbage
        assert_eq!(decode_op(&good), None);
    }

    #[test]
    fn replay_reads_back_records_in_order() {
        let ops = [put("i1", "CD"), put("i2", "DVD"), WriteOp::Delete {
            collection: "items".into(),
            name: "i1".into(),
        }];
        let mut log = Vec::new();
        for op in &ops {
            log.extend_from_slice(&encode_record(op));
        }
        let (replayed, report) = replay_bytes(&log);
        assert_eq!(replayed, ops.to_vec());
        assert_eq!(report.records, 3);
        assert!(!report.torn);
        assert_eq!(report.valid_bytes as usize, log.len());
    }

    #[test]
    fn torn_final_record_truncated_at_every_byte_offset() {
        // the satellite's exhaustive version of the torn-tail guarantee:
        // cutting the log at ANY byte offset replays exactly the records
        // that fit wholly before the cut — never garbage, never a panic
        let ops =
            [put("i1", "CD"), put("i2", "DVD"), put("i3", "BOOK"), WriteOp::Delete {
                collection: "items".into(),
                name: "i2".into(),
            }];
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for op in &ops {
            log.extend_from_slice(&encode_record(op));
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let (replayed, report) = replay_bytes(&log[..cut]);
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replayed.len(), expect, "cut at {cut}");
            assert_eq!(&replayed[..], &ops[..expect], "cut at {cut}");
            assert_eq!(report.torn, cut != boundaries[expect], "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_middle_record_stops_replay_before_it() {
        let ops = [put("i1", "CD"), put("i2", "DVD"), put("i3", "BOOK")];
        let mut log = Vec::new();
        for op in &ops {
            log.extend_from_slice(&encode_record(op));
        }
        // flip one payload byte of the second record
        let second_start = encode_record(&ops[0]).len();
        log[second_start + 9] ^= 0xFF;
        let (replayed, report) = replay_bytes(&log);
        assert_eq!(replayed, vec![ops[0].clone()]);
        assert!(report.torn);
    }

    #[test]
    fn double_replay_is_idempotent() {
        let dir = tmp_dir("idem");
        let durable = DurableDb::open(&dir).unwrap();
        for op in [put("i1", "CD"), put("i2", "DVD"), put("i1", "BOOK"), WriteOp::Delete {
            collection: "items".into(),
            name: "i2".into(),
        }] {
            durable.apply(&op).unwrap();
        }
        let once = state(durable.db());
        // replay the same log on top of the already-recovered state
        let (ops, _) = durable.wal.replay().unwrap();
        for op in &ops {
            durable.db().apply_write(op);
        }
        assert_eq!(state(durable.db()), once, "replaying twice must be a no-op");
        // and a fresh open (snapshot-less: pure replay) agrees too
        let reopened = DurableDb::open(&dir).unwrap();
        assert_eq!(state(reopened.db()), once);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_replay_equals_pure_replay() {
        let dir_a = tmp_dir("ckpt-a");
        let dir_b = tmp_dir("ckpt-b");
        let ops = [put("i1", "CD"), put("i2", "DVD"), put("i1", "LP"), WriteOp::Delete {
            collection: "items".into(),
            name: "i2".into(),
        }, put("i3", "BOOK")];
        // A: checkpoint mid-stream; B: never checkpoints
        let a = DurableDb::open(&dir_a).unwrap();
        let b = DurableDb::open(&dir_b).unwrap();
        for (i, op) in ops.iter().enumerate() {
            a.apply(op).unwrap();
            b.apply(op).unwrap();
            if i == 2 {
                a.checkpoint().unwrap();
            }
        }
        assert!(a.wal.len().unwrap() < b.wal.len().unwrap(), "checkpoint truncated the log");
        let ra = DurableDb::open(&dir_a).unwrap();
        let rb = DurableDb::open(&dir_b).unwrap();
        assert_eq!(state(ra.db()), state(rb.db()), "checkpoint+replay ≠ pure replay");
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn kill_points_recover_deterministically() {
        for stage in WalStage::ALL {
            let dir = tmp_dir(&format!("kill-{stage}"));
            let durable = DurableDb::open(&dir).unwrap();
            durable.apply(&put("base", "CD")).unwrap();
            durable.set_kill(Some(stage));
            let err = durable.apply(&put("victim", "DVD")).unwrap_err();
            assert!(matches!(err, WalError::Killed(s) if s == stage), "{stage}");
            // dead until reopened: further writes refuse
            assert!(matches!(durable.apply(&put("after", "LP")), Err(WalError::Dead)));
            assert!(durable.is_dead());
            let reopened = DurableDb::open(&dir).unwrap();
            let names: Vec<Option<String>> =
                partix_query::CollectionProvider::collection(&**reopened.db(), "items")
                    .unwrap()
                    .iter()
                    .map(|d| d.name.clone())
                    .collect();
            assert!(names.contains(&Some("base".into())), "{stage}: acknowledged write lost");
            assert_eq!(
                names.contains(&Some("victim".into())),
                stage.survives_recovery(),
                "{stage}: unexpected recovery outcome"
            );
            assert!(!names.contains(&Some("after".into())), "{stage}: dead node accepted a write");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn fsync_and_append_counters_track_pipeline() {
        let dir = tmp_dir("counters");
        let durable = DurableDb::open(&dir).unwrap();
        assert_eq!(durable.fsyncs(), 0);
        durable.apply(&put("i1", "CD")).unwrap();
        durable.apply(&put("i2", "DVD")).unwrap();
        assert_eq!(durable.wal().appends(), 2);
        assert_eq!(durable.fsyncs(), 2);
        durable.checkpoint().unwrap();
        assert_eq!(durable.fsyncs(), 3); // truncation is durable too
        assert!(durable.wal().is_empty().unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_so_later_appends_survive_next_replay() {
        // crash at Append leaves a torn half-record; if the reopen kept
        // it, every record appended afterwards would sit behind the tear
        // and silently vanish on the NEXT recovery
        let dir = tmp_dir("torn-reopen");
        let durable = DurableDb::open(&dir).unwrap();
        durable.apply(&put("base", "CD")).unwrap();
        durable.set_kill(Some(WalStage::Append));
        assert!(matches!(
            durable.apply(&put("victim", "DVD")),
            Err(WalError::Killed(WalStage::Append))
        ));
        let reopened = DurableDb::open(&dir).unwrap();
        reopened.apply(&put("after", "BOOK")).unwrap(); // acknowledged
        let twice = DurableDb::open(&dir).unwrap();
        let names: Vec<Option<String>> =
            partix_query::CollectionProvider::collection(&**twice.db(), "items")
                .unwrap()
                .iter()
                .map(|d| d.name.clone())
                .collect();
        assert!(names.contains(&Some("base".into())));
        assert!(!names.contains(&Some("victim".into())), "torn record must not replay");
        assert!(
            names.contains(&Some("after".into())),
            "write acknowledged after recovery was lost by the second recovery"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_offsets_fuzzed_against_real_files() {
        // proptest-style seeded sweep over (op count, cut offset) pairs
        // against a real on-disk file, sized by PARTIX_PROPTEST_CASES
        let cases: u64 = std::env::var("PARTIX_PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        let dir = tmp_dir("fuzz");
        let mut seed = 0x7E57_0FF5_E75u64;
        let mut next = move || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..cases {
            let n_ops = 1 + (next() % 5) as usize;
            let ops: Vec<WriteOp> = (0..n_ops)
                .map(|i| {
                    if next() % 4 == 0 && i > 0 {
                        WriteOp::Delete { collection: "items".into(), name: format!("d{}", i - 1) }
                    } else {
                        put(&format!("d{i}"), ["CD", "DVD", "BOOK"][(next() % 3) as usize])
                    }
                })
                .collect();
            let mut log = Vec::new();
            let mut boundaries = vec![0usize];
            for op in &ops {
                log.extend_from_slice(&encode_record(op));
                boundaries.push(log.len());
            }
            let cut = (next() % (log.len() as u64 + 1)) as usize;
            let path = dir.join(format!("wal-{case}.log"));
            fs::write(&path, &log[..cut]).unwrap();
            let (replayed, _) = replay_file(&path).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(
                &replayed[..],
                &ops[..expect],
                "case {case}: {n_ops} ops cut at {cut} (replayable: seed case index {case})"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
