//! Write-path regression tests: name-map lookups at scale, tombstoned
//! deletes with deferred compaction, and value-index soundness for the
//! shapes that used to be wrongly excluded (mixed content and empty
//! elements).

use partix_query::{CollectionProvider, Item};
use partix_storage::{Database, StorageMode};
use partix_xml::parse;

fn named(xml: &str, name: &str) -> partix_xml::Document {
    let mut d = parse(xml).unwrap();
    d.name = Some(name.to_owned());
    d
}

fn count(db: &Database, query: &str) -> f64 {
    match db.execute(&format!("count({query})")).unwrap().items[0] {
        Item::Num(n) => n,
        ref other => panic!("expected count, got {other:?}"),
    }
}

/// 10k named puts then 10k deletes. With the old O(slots) name scan and
/// the O(collection) index rebuild per delete this is quadratic in both
/// directions; with the name map and tombstones it's near-linear and
/// finishes instantly.
#[test]
fn ten_k_put_delete_churn() {
    for mode in [StorageMode::Hot, StorageMode::Cold] {
        let db = Database::new();
        db.create_collection("c", mode).unwrap();
        for i in 0..10_000 {
            db.put_doc("c", named(&format!("<Item><N>{i}</N></Item>"), &format!("d{i}")));
        }
        assert_eq!(db.collection_len("c").unwrap(), 10_000);
        // upserts replace, never duplicate
        for i in 0..100 {
            assert!(db.put_doc("c", named("<Item><N>x</N></Item>", &format!("d{i}"))));
        }
        assert_eq!(db.collection_len("c").unwrap(), 10_000);
        assert_eq!(db.document("d7777").unwrap().name.as_deref(), Some("d7777"));
        for i in 0..10_000 {
            assert!(db.delete_doc("c", &format!("d{i}")), "delete d{i} ({mode:?})");
        }
        assert_eq!(db.collection_len("c").unwrap(), 0);
        assert!(!db.delete_doc("c", "d0"), "deletes are idempotent");
        // slots are reusable after full churn
        db.put_doc("c", named("<Item><N>back</N></Item>", "again"));
        assert_eq!(db.collection_len("c").unwrap(), 1);
        assert_eq!(db.document("again").unwrap().root().text(), "back");
    }
}

/// Deleting most of a collection crosses the compaction threshold;
/// probes, fetches, and full scans must agree with a freshly-built
/// collection throughout.
#[test]
fn tombstones_and_compaction_keep_probes_correct() {
    for mode in [StorageMode::Hot, StorageMode::Cold] {
        let db = Database::new();
        db.set_value_index_enabled(true);
        db.create_collection("items", mode).unwrap();
        let sections = ["CD", "DVD", "Book"];
        for i in 0..300 {
            let s = sections[i % 3];
            db.store("items", named(&format!("<Item><Section>{s}</Section></Item>"), &format!("n{i}")));
        }
        // delete everything but i % 3 == 0 (the CD docs): 200 deletes,
        // far past the 64-tombstone compaction floor
        for i in 0..300 {
            if i % 3 != 0 {
                assert!(db.delete_doc("items", &format!("n{i}")));
            }
        }
        assert_eq!(db.collection_len("items").unwrap(), 100);
        let q = |v: &str| {
            format!(r#"for $i in collection("items")/Item where $i/Section = "{v}" return $i"#)
        };
        assert_eq!(count(&db, &q("CD")), 100.0, "mode {mode:?}");
        assert_eq!(count(&db, &q("DVD")), 0.0, "mode {mode:?}");
        // survivors fetch by name and keep their content
        assert_eq!(db.document("n0").unwrap().root().text(), "CD");
        assert!(db.document("n1").is_err());
        // interleave fresh inserts with the compacted slots
        for i in 0..50 {
            db.put_doc("items", named("<Item><Section>Vinyl</Section></Item>", &format!("v{i}")));
        }
        assert_eq!(count(&db, &q("Vinyl")), 50.0, "mode {mode:?}");
        assert_eq!(count(&db, &q("CD")), 100.0, "mode {mode:?}");
    }
}

/// Duplicate names: the first stored document wins lookups, and deletes
/// peel them off in insertion order — exactly the old linear-scan
/// behaviour, now served from the name map.
#[test]
fn duplicate_names_resolve_in_insertion_order() {
    let db = Database::new();
    db.create_collection("c", StorageMode::Hot).unwrap();
    db.store("c", named("<A>first</A>", "dup"));
    db.store("c", named("<A>second</A>", "dup"));
    assert_eq!(db.document("dup").unwrap().root().text(), "first");
    assert!(db.delete_doc("c", "dup"));
    assert_eq!(db.document("dup").unwrap().root().text(), "second");
    assert!(db.delete_doc("c", "dup"));
    assert!(db.document("dup").is_err());
}

/// Mixed-content elements (`<Section><b>C</b>D</Section>` has
/// string-value "CD") and empty elements (`<Section/>` has string-value
/// "") must stay reachable through equality predicates when the value
/// index is on — both used to be wrongly excluded by authoritative
/// index misses.
#[test]
fn value_index_is_sound_for_mixed_and_empty_content() {
    for mode in [StorageMode::Hot, StorageMode::Cold] {
        let db = Database::new();
        db.set_value_index_enabled(true);
        db.create_collection("items", mode).unwrap();
        db.store("items", named("<Item><Section>CD</Section></Item>", "plain"));
        db.store("items", named("<Item><Section><b>C</b>D</Section></Item>", "mixed"));
        db.store("items", named("<Item><Section/></Item>", "empty"));
        db.store("items", named("<Item><Section>DVD</Section></Item>", "other"));

        let q = |v: &str| {
            format!(r#"for $i in collection("items")/Item where $i/Section = "{v}" return $i"#)
        };
        // plain + mixed both have string-value "CD"
        assert_eq!(count(&db, &q("CD")), 2.0, "mode {mode:?}");
        // the empty element matches the empty string
        assert_eq!(count(&db, &q("")), 1.0, "mode {mode:?}");
        assert_eq!(count(&db, &q("DVD")), 1.0, "mode {mode:?}");
        assert_eq!(count(&db, &q("Tape")), 0.0, "mode {mode:?}");

        // the oracle: same queries with every index off
        db.set_value_index_enabled(false);
        db.set_index_enabled(false);
        assert_eq!(count(&db, &q("CD")), 2.0, "unindexed oracle, mode {mode:?}");
        assert_eq!(count(&db, &q("")), 1.0, "unindexed oracle, mode {mode:?}");
    }
}
