//! Lightweight per-query tracing: hierarchical spans on a monotonic
//! clock, recorded into a [`StageBreakdown`] that travels with every
//! [`QueryReport`](crate::QueryReport).
//!
//! The paper's scale-up claims (Sec. 5) hinge on knowing *where* a
//! query's time goes — localization vs. dispatch vs. composition. A
//! [`Trace`] is created per query by the service, cloned (one `Arc`
//! bump) into each sub-query's coordinator thread, and collapsed into a
//! flat span list when the query finishes. Overhead when enabled is a
//! handful of `Instant::now()` reads and one short mutex push per span;
//! a disabled trace ([`Trace::disabled`]) is a no-op on every call, so
//! the fault-free hot path pays nothing but a branch.
//!
//! Span lists export in the Chrome trace-event format
//! ([`chrome_trace`]): one complete JSON event object per line, openable
//! directly in `chrome://tracing` / Perfetto.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// One finished span, relative to its trace's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage or sub-query label, e.g. `parse`, `dispatch`, `exec:f_cd@n2`.
    pub name: String,
    /// Display lane (Chrome trace `tid`): 0 = coordinator stages, `i+1`
    /// = sub-query `i`'s retry loop.
    pub lane: usize,
    /// Microseconds from the trace epoch to the span start.
    pub start_us: u64,
    /// Span duration in microseconds (0 for sub-microsecond spans).
    pub dur_us: u64,
}

struct TraceInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A per-query span collector. Cloning shares the collector (`Arc`);
/// [`Trace::disabled`] makes every operation free.
#[derive(Clone)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// An enabled collector whose epoch is *now*.
    pub fn new() -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::with_capacity(16)),
            })),
        }
    }

    /// A collector that records nothing (the zero-overhead path).
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a span that started at `begun` and ends now.
    pub fn record(&self, name: &str, lane: usize, begun: Instant) {
        let Some(inner) = &self.inner else { return };
        let start_us = begun.saturating_duration_since(inner.epoch).as_micros() as u64;
        let dur_us = begun.elapsed().as_micros() as u64;
        inner.spans.lock().push(SpanRecord {
            name: name.to_owned(),
            lane,
            start_us,
            dur_us,
        });
    }

    /// Record a span of an explicit duration starting at `begun` — for
    /// time measured elsewhere (e.g. wire send/recv clocked on a worker
    /// thread) that should still land on this trace's timeline.
    pub fn record_window(&self, name: &str, lane: usize, begun: Instant, dur_s: f64) {
        let Some(inner) = &self.inner else { return };
        let start_us = begun.saturating_duration_since(inner.epoch).as_micros() as u64;
        inner.spans.lock().push(SpanRecord {
            name: name.to_owned(),
            lane,
            start_us,
            dur_us: (dur_s * 1e6) as u64,
        });
    }

    /// Drain the recorded spans, ordered by start time.
    pub fn finish(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut spans = std::mem::take(&mut *inner.spans.lock());
        spans.sort_by_key(|s| s.start_us);
        spans
    }
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::disabled()
    }
}

/// Per-stage timing of one distributed query: the same boundaries the
/// paper's Sec. 5 methodology attributes time to, plus the dispatch
/// micro-stages a retrying coordinator adds (queue wait, backoff).
#[derive(Debug, Clone, Default)]
pub struct StageBreakdown {
    /// Query-text parsing (0 when the plan came from the plan cache or
    /// the query entered pre-parsed).
    pub parse_s: f64,
    /// Pushdown analysis + fragment pruning + sub-query construction.
    pub localize_s: f64,
    /// Fan-out wall time: result-cache probing plus every sub-query's
    /// retry loop, run in parallel (this is wall clock, not the sum of
    /// per-site service times).
    pub dispatch_s: f64,
    /// Coordinator-side composition (union / aggregate combination /
    /// reconstruction join).
    pub compose_s: f64,
    /// One entry per *dispatched* sub-query (cache hits never dispatch).
    pub subqueries: Vec<SubQueryStage>,
}

impl StageBreakdown {
    /// Sum of the coordinator stage times. Always ≤ the query's total
    /// wall time (stages are disjoint slices of one thread's timeline).
    pub fn stage_total(&self) -> f64 {
        self.parse_s + self.localize_s + self.dispatch_s + self.compose_s
    }

    /// Whether any stage was actually measured.
    pub fn is_measured(&self) -> bool {
        self.stage_total() > 0.0 || !self.subqueries.is_empty()
    }
}

/// Dispatch-stage detail of one sub-query's retry loop.
#[derive(Debug, Clone, Default)]
pub struct SubQueryStage {
    pub fragment: String,
    /// The replica that answered (or the last one tried, on failure).
    pub node: usize,
    /// Dispatch attempts made (≥ 1).
    pub attempts: usize,
    /// Time spent waiting in worker-pool queues (0 outside Pool mode).
    pub queue_wait_s: f64,
    /// In-attempt execution wall time, summed over attempts.
    pub execute_s: f64,
    /// Wire time writing the request frames (0 for in-process drivers).
    pub send_s: f64,
    /// Wire time waiting for and reading the response frames (0 for
    /// in-process drivers; includes the node's service time).
    pub recv_s: f64,
    /// Retry backoff slept between attempts.
    pub backoff_s: f64,
    pub retries: usize,
    pub failovers: usize,
    pub timeouts: usize,
}

/// Render spans in the Chrome trace-event format: a JSON array opening
/// bracket, then **one complete event object per line**, loadable as-is
/// in `chrome://tracing` or Perfetto — and strict JSON (continuation
/// lines carry a *leading* comma so the array has no trailing one), so
/// `python -m json.tool` and friends parse it too.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 * spans.len() + 2);
    out.push_str("[\n");
    for (i, span) in spans.iter().enumerate() {
        let name: String = span
            .name
            .chars()
            .map(|c| if c == '"' || c == '\\' { '_' } else { c })
            .collect();
        let _ = writeln!(
            out,
            "{}{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            if i == 0 { "" } else { "," },
            span.lane,
            span.start_us,
            span.dur_us,
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_record_relative_to_epoch() {
        let trace = Trace::new();
        let begun = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        trace.record("parse", 0, begun);
        let later = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        trace.record("dispatch", 1, later);
        let spans = trace.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert!(spans[0].dur_us >= 1_000, "{:?}", spans[0]);
        // sorted by start: dispatch began after parse
        assert!(spans[1].start_us >= spans[0].start_us);
        // finish drains
        assert!(trace.finish().is_empty());
    }

    #[test]
    fn disabled_trace_is_a_no_op() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        trace.record("parse", 0, Instant::now());
        assert!(trace.finish().is_empty());
    }

    #[test]
    fn spans_merge_across_threads() {
        let trace = Trace::new();
        std::thread::scope(|scope| {
            for lane in 0..4 {
                let trace = trace.clone();
                scope.spawn(move || {
                    trace.record("exec", lane, Instant::now());
                });
            }
        });
        assert_eq!(trace.finish().len(), 4);
    }

    #[test]
    fn stage_breakdown_totals() {
        let stages = StageBreakdown {
            parse_s: 0.001,
            localize_s: 0.002,
            dispatch_s: 0.01,
            compose_s: 0.003,
            subqueries: Vec::new(),
        };
        assert!((stages.stage_total() - 0.016).abs() < 1e-12);
        assert!(stages.is_measured());
        assert!(!StageBreakdown::default().is_measured());
    }

    #[test]
    fn chrome_trace_is_line_oriented_events() {
        let spans = vec![
            SpanRecord { name: "parse".into(), lane: 0, start_us: 0, dur_us: 12 },
            SpanRecord { name: "exec:\"f\"".into(), lane: 1, start_us: 5, dur_us: 40 },
        ];
        let text = chrome_trace(&spans);
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("]\n"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("\"ph\":\"X\""));
        assert!(lines[1].contains("\"ts\":0"));
        // quotes in labels are sanitized, keeping every line valid JSON
        assert!(lines[2].contains("exec:_f_"));
        // strict JSON: continuation lines lead with the comma, so the
        // array never ends in a trailing one
        assert!(lines[2].starts_with(','));
        assert!(!lines[2].ends_with(','));
    }
}
