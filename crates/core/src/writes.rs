//! The online write path: coordinator-routed `put` / `delete`.
//!
//! The paper's experiments are read-only — repositories are fragmented
//! once by the publisher and then queried. This module adds the natural
//! next step: single-document writes routed through the *same*
//! fragmentation predicates the publisher and the localizer use, so a
//! live repository stays a correct fragmentation of its logical
//! collection as it changes.
//!
//! Routing reuses [`partix_frag::apply::apply_fragment`]: the incoming
//! document is fragmented exactly as the bulk publisher would fragment
//! it, and each non-empty piece is written to every replica of its
//! fragment. Before any node is touched, the per-document design rules
//! are re-checked online with [`partix_frag::check_correctness`] — a
//! document matching no horizontal predicate is a typed
//! [`WriteError::UnroutableDocument`] (completeness would break), one
//! matching several is a typed [`WriteError::Correctness`] (disjointness
//! would break). Nothing is silently dropped.
//!
//! [`WriteOp::Put`] is an **upsert** keyed by document name, so `insert`
//! and `update` are the same idempotent primitive — retrying a timed-out
//! write converges instead of duplicating. An update that changes the
//! routing value (say an Item's `Section` flips from `"CD"` to `"DVD"`)
//! is a *cross-fragment move*: the coordinator first puts the new piece
//! on its target fragment, then deletes the stale piece from every other
//! fragment. Put-before-delete means a crash between the two steps never
//! loses the document — the transient duplicate is healed by retrying
//! the (idempotent) write after recovery.
//!
//! Every replica write goes through [`Node::apply_write`], which bumps
//! the node's collection epoch whether the write succeeded or died
//! mid-pipeline — so the coordinator's plan/result caches invalidate
//! exactly as they do for rebalancing, and a cached answer can never
//! outlive a write *attempt*.

use crate::cluster::Node;
use crate::driver::DriverError;
use crate::metrics;
use crate::service::PartiX;
use partix_frag::apply::apply_fragment;
use partix_frag::def::FragType;
use partix_frag::{check_correctness, FragMode, FragOp, Violation};
use partix_storage::WriteOp;
use partix_xml::Document;
use std::fmt;
use std::sync::Arc;

/// Why an online write was refused or aborted. Every variant is typed so
/// the differential harness can assert "right answer or typed error,
/// never wrong or lost data".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// The collection has no registered distribution to route against.
    NoDistribution { collection: String },
    /// Puts are keyed by document name; an anonymous document cannot be
    /// upserted (or later deleted) deterministically.
    UnnamedDocument { collection: String },
    /// The document matches no fragmentation predicate — storing it
    /// anywhere would break completeness, dropping it would lose data.
    /// (The latent gap this error closes: the bulk publisher silently
    /// leaves such documents behind.)
    UnroutableDocument { collection: String, name: String },
    /// The per-document online correctness re-check failed (e.g. the
    /// document satisfies two horizontal predicates — disjointness).
    Correctness { collection: String, name: String, violations: Vec<String> },
    /// The design cannot accept single-document writes: a hybrid
    /// FragMode1 fragment explodes one source document into many
    /// same-named unit documents, which a name-keyed upsert would clobber.
    UnsupportedDesign { collection: String, detail: String },
    /// A replica never acknowledged the write (node down or killed
    /// mid-pipeline). The write's durability on that node is decided by
    /// its WAL on restart; retrying after recovery converges.
    NodeUnavailable { node: usize, fragment: String, detail: String },
    /// A replica's DBMS processed and rejected the write.
    Rejected { node: usize, fragment: String, detail: String },
    /// Delete found no document of that name in any fragment.
    NoSuchDocument { collection: String, name: String },
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::NoDistribution { collection } => {
                write!(f, "collection {collection} has no registered distribution")
            }
            WriteError::UnnamedDocument { collection } => {
                write!(f, "cannot write an unnamed document to {collection}: puts are keyed by name")
            }
            WriteError::UnroutableDocument { collection, name } => write!(
                f,
                "document {name} matches no fragmentation predicate of {collection}; \
                 storing it would break completeness"
            ),
            WriteError::Correctness { collection, name, violations } => write!(
                f,
                "writing {name} to {collection} would violate the design: {}",
                violations.join("; ")
            ),
            WriteError::UnsupportedDesign { collection, detail } => {
                write!(f, "design of {collection} does not support online writes: {detail}")
            }
            WriteError::NodeUnavailable { node, fragment, detail } => write!(
                f,
                "node {node} (fragment {fragment}) did not acknowledge the write: {detail}"
            ),
            WriteError::Rejected { node, fragment, detail } => {
                write!(f, "node {node} (fragment {fragment}) rejected the write: {detail}")
            }
            WriteError::NoSuchDocument { collection, name } => {
                write!(f, "no document named {name} in {collection}")
            }
        }
    }
}

impl std::error::Error for WriteError {}

/// What a successful write did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    pub collection: String,
    /// Document name the write was keyed by.
    pub name: String,
    /// Fragments that received the document (put) or held it (delete).
    pub fragments: Vec<String>,
    /// Node indices written, in write order.
    pub nodes: Vec<usize>,
    /// For puts: true when an existing document was replaced on at least
    /// one replica (an update rather than a fresh insert).
    pub replaced: bool,
    /// Total existing documents removed across all replicas (for a put,
    /// stale pieces cleaned off non-target fragments during a move).
    pub deleted: u32,
}

impl PartiX {
    /// Insert-or-replace one named document, routed by the collection's
    /// fragmentation design. See the module docs for ordering and crash
    /// semantics. Returns a typed [`WriteError`] — never a silent drop.
    pub fn put(&self, collection: &str, doc: Document) -> Result<WriteReport, WriteError> {
        self.sync_with_meta();
        let outcome = self.put_inner(collection, doc);
        record_write_metrics("partix.writes.puts", outcome.is_err());
        if outcome.is_ok() {
            // tell every replicated coordinator to drop result caches
            // built over the pre-write data
            self.notify_meta_of_write();
        }
        outcome
    }

    /// Alias of [`PartiX::put`] for callers thinking in INSERT terms:
    /// put is an upsert, so inserting an existing name replaces it.
    pub fn insert(&self, collection: &str, doc: Document) -> Result<WriteReport, WriteError> {
        self.put(collection, doc)
    }

    /// Alias of [`PartiX::put`] for callers thinking in UPDATE terms.
    /// Updating a document whose routing value changed moves it across
    /// fragments (put to target, then delete stale pieces).
    pub fn update(&self, collection: &str, doc: Document) -> Result<WriteReport, WriteError> {
        self.put(collection, doc)
    }

    /// Delete one named document wherever the design placed it. The
    /// coordinator does not know which fragment currently holds the name,
    /// so the delete broadcasts to every replica of every fragment;
    /// disjointness guarantees at most one fragment actually removes it.
    pub fn delete(&self, collection: &str, name: &str) -> Result<WriteReport, WriteError> {
        self.sync_with_meta();
        let outcome = self.delete_inner(collection, name);
        record_write_metrics("partix.writes.deletes", outcome.is_err());
        if outcome.is_ok() {
            self.notify_meta_of_write();
        }
        outcome
    }

    fn put_inner(&self, collection: &str, doc: Document) -> Result<WriteReport, WriteError> {
        let name = match &doc.name {
            Some(n) => n.clone(),
            None => return Err(WriteError::UnnamedDocument { collection: collection.into() }),
        };
        let dist = self
            .catalog()
            .distribution(collection)
            .cloned()
            .ok_or_else(|| WriteError::NoDistribution { collection: collection.into() })?;
        let design = &dist.design;
        if let Some(frag) = design.fragments.iter().find(
            |f| matches!(f.op, FragOp::Hybrid { mode: FragMode::ManySmallDocs, .. }),
        ) {
            return Err(WriteError::UnsupportedDesign {
                collection: collection.into(),
                detail: format!(
                    "fragment {} uses FragMode1 (many small docs per source document)",
                    frag.name
                ),
            });
        }

        // Route: fragment the document exactly as the bulk publisher
        // would, then re-check the design rules online against this one
        // document before any node is touched.
        let source = [doc];
        let pieces: Vec<(String, Vec<Document>)> = design
            .fragments
            .iter()
            .map(|frag| (frag.name.clone(), apply_fragment(frag, &source)))
            .collect();
        if pieces.iter().all(|(_, docs)| docs.is_empty()) {
            return Err(WriteError::UnroutableDocument { collection: collection.into(), name });
        }
        if let Some((frag, n)) = pieces.iter().find_map(|(f, docs)| {
            (docs.len() > 1).then(|| (f.clone(), docs.len()))
        }) {
            return Err(WriteError::UnsupportedDesign {
                collection: collection.into(),
                detail: format!(
                    "fragment {frag} produced {n} pieces of one source document; \
                     a name-keyed upsert cannot represent that"
                ),
            });
        }
        // Horizontal designs carry the paper's completeness/disjointness
        // obligations per document; re-verify them with the same checker
        // the publisher and the rebalancer use. (Vertical/hybrid rules
        // are structural and already enforced at design registration.)
        if design.frag_type() == FragType::Horizontal {
            let report = check_correctness(design, &source, &pieces);
            if !report.is_correct() {
                if report.violations.iter().all(|v| matches!(v, Violation::Incomplete { .. })) {
                    return Err(WriteError::UnroutableDocument {
                        collection: collection.into(),
                        name,
                    });
                }
                return Err(WriteError::Correctness {
                    collection: collection.into(),
                    name,
                    violations: report.violations.iter().map(|v| v.to_string()).collect(),
                });
            }
        }

        // Apply: put to target fragments first, then clear stale pieces
        // off the rest (put-before-delete — see module docs).
        let mut report = WriteReport {
            collection: collection.into(),
            name: name.clone(),
            fragments: Vec::new(),
            nodes: Vec::new(),
            replaced: false,
            deleted: 0,
        };
        for (frag_name, mut docs) in pieces.clone() {
            let Some(piece) = docs.pop() else { continue };
            report.fragments.push(frag_name.clone());
            let op = WriteOp::Put { collection: frag_name.clone(), doc: piece };
            for node_id in dist.nodes_of(&frag_name) {
                let affected = self.write_to_node(node_id, &frag_name, &op)?;
                report.nodes.push(node_id);
                report.replaced |= affected > 0;
            }
        }
        for (frag_name, docs) in &pieces {
            if !docs.is_empty() {
                continue;
            }
            let op = WriteOp::Delete { collection: frag_name.clone(), name: name.clone() };
            for node_id in dist.nodes_of(frag_name) {
                let removed = self.write_to_node(node_id, frag_name, &op)?;
                report.deleted += removed;
            }
        }
        Ok(report)
    }

    fn delete_inner(&self, collection: &str, name: &str) -> Result<WriteReport, WriteError> {
        let dist = self
            .catalog()
            .distribution(collection)
            .cloned()
            .ok_or_else(|| WriteError::NoDistribution { collection: collection.into() })?;
        let mut report = WriteReport {
            collection: collection.into(),
            name: name.into(),
            fragments: Vec::new(),
            nodes: Vec::new(),
            replaced: false,
            deleted: 0,
        };
        for frag in &dist.design.fragments {
            let op = WriteOp::Delete { collection: frag.name.clone(), name: name.into() };
            let mut removed_here = 0;
            for node_id in dist.nodes_of(&frag.name) {
                let removed = self.write_to_node(node_id, &frag.name, &op)?;
                removed_here += removed;
                report.nodes.push(node_id);
            }
            if removed_here > 0 {
                report.fragments.push(frag.name.clone());
                report.deleted += removed_here;
            }
        }
        if report.deleted == 0 {
            return Err(WriteError::NoSuchDocument {
                collection: collection.into(),
                name: name.into(),
            });
        }
        Ok(report)
    }

    /// One replica write, mapped into the typed error space. The node
    /// bumps its collection epoch even on failure (cache safety), so a
    /// write that dies mid-pipeline can never be masked by a stale
    /// cached answer.
    fn write_to_node(
        &self,
        node_id: usize,
        fragment: &str,
        op: &WriteOp,
    ) -> Result<u32, WriteError> {
        let node: &Arc<Node> = self.cluster().node(node_id).ok_or_else(|| {
            WriteError::NodeUnavailable {
                node: node_id,
                fragment: fragment.into(),
                detail: "node index outside the cluster".into(),
            }
        })?;
        node.apply_write(op).map_err(|e| match e {
            DriverError::Unavailable(detail) => WriteError::NodeUnavailable {
                node: node_id,
                fragment: fragment.into(),
                detail,
            },
            DriverError::Failed(detail) => WriteError::Rejected {
                node: node_id,
                fragment: fragment.into(),
                detail,
            },
        })
    }
}

fn record_write_metrics(counter: &str, failed: bool) {
    let reg = metrics::global();
    reg.counter("partix.writes").inc();
    reg.counter(counter).inc();
    if failed {
        reg.counter("partix.writes.failed").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Distribution, Placement};
    use crate::cluster::NetworkModel;
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::{PathExpr, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;

    fn item(name: &str, section: &str, code: u32) -> Document {
        let mut d = parse(&format!(
            "<Item><Code>{code}</Code><Section>{section}</Section></Item>"
        ))
        .unwrap();
        d.name = Some(name.to_owned());
        d
    }

    fn horizontal_px(replicas: usize) -> PartiX {
        let px = PartiX::new(2 * replicas, NetworkModel::instantaneous());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(
                        r#"not(/Item/Section = "CD") and not(/Item/Section = "")"#,
                    )
                    .unwrap(),
                ),
            ],
        )
        .unwrap();
        let mut placements = Vec::new();
        for r in 0..replicas {
            placements.push(Placement { fragment: "f_cd".into(), node: 2 * r });
            placements.push(Placement { fragment: "f_rest".into(), node: 2 * r + 1 });
        }
        px.register_distribution(Distribution { design, placements }).unwrap();
        px
    }

    fn count(px: &PartiX, q: &str) -> f64 {
        match px.execute(q).unwrap().items[0] {
            partix_query::Item::Num(n) => n,
            ref other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn put_routes_by_predicate_and_updates_in_place() {
        let px = horizontal_px(1);
        let r = px.put("items", item("i1", "CD", 7)).unwrap();
        assert_eq!(r.fragments, ["f_cd"]);
        assert_eq!(r.nodes, [0]);
        assert!(!r.replaced);
        let r = px.put("items", item("i2", "DVD", 8)).unwrap();
        assert_eq!(r.fragments, ["f_rest"]);
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 2.0);
        // in-place update: same name, same routing value, new content
        let r = px.insert("items", item("i1", "CD", 9)).unwrap();
        assert!(r.replaced);
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 2.0);
        assert_eq!(
            count(
                &px,
                r#"count(for $i in collection("items")/Item where $i/Code = "9" return $i)"#
            ),
            1.0
        );
    }

    #[test]
    fn put_moves_document_across_fragments_when_routing_value_changes() {
        let px = horizontal_px(1);
        let cd_count =
            r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        px.put("items", item("i1", "CD", 7)).unwrap();
        assert_eq!(count(&px, cd_count), 1.0);
        // the Section flips: the document must move f_cd → f_rest
        let r = px.update("items", item("i1", "DVD", 7)).unwrap();
        assert_eq!(r.fragments, ["f_rest"]);
        assert_eq!(r.deleted, 1, "stale piece cleared off f_cd");
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 1.0);
        assert_eq!(count(&px, cd_count), 0.0);
    }

    #[test]
    fn unroutable_document_is_a_typed_error_not_a_silent_drop() {
        let px = horizontal_px(1);
        let err = px.put("items", item("i1", "", 7)).unwrap_err();
        assert!(matches!(err, WriteError::UnroutableDocument { .. }), "{err}");
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 0.0);
    }

    #[test]
    fn unnamed_and_undistributed_writes_are_typed_errors() {
        let px = horizontal_px(1);
        let mut anon = item("x", "CD", 1);
        anon.name = None;
        assert!(matches!(
            px.put("items", anon).unwrap_err(),
            WriteError::UnnamedDocument { .. }
        ));
        assert!(matches!(
            px.put("nope", item("i1", "CD", 1)).unwrap_err(),
            WriteError::NoDistribution { .. }
        ));
        assert!(matches!(
            px.delete("nope", "i1").unwrap_err(),
            WriteError::NoDistribution { .. }
        ));
    }

    #[test]
    fn overlapping_predicates_fail_the_online_disjointness_check() {
        let px = PartiX::new(2, NetworkModel::instantaneous());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                // overlaps f_cd for every CD item with a Code — design
                // registration cannot see that (predicate satisfiability
                // is data-dependent); the online per-document check can
                FragmentDef::horizontal(
                    "f_all",
                    Predicate::parse(r#"not(/Item/Section = "")"#).unwrap(),
                ),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_all".into(), node: 1 },
            ],
        })
        .unwrap();
        let err = px.put("items", item("i1", "CD", 7)).unwrap_err();
        assert!(matches!(err, WriteError::Correctness { .. }), "{err}");
        // nothing was written anywhere: the check runs before any node
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 0.0);
    }

    #[test]
    fn delete_broadcasts_and_reports_missing_names() {
        let px = horizontal_px(1);
        px.put("items", item("i1", "CD", 7)).unwrap();
        px.put("items", item("i2", "DVD", 8)).unwrap();
        let r = px.delete("items", "i2").unwrap();
        assert_eq!(r.fragments, ["f_rest"]);
        assert_eq!(r.deleted, 1);
        assert_eq!(count(&px, r#"count(collection("items")/Item)"#), 1.0);
        assert!(matches!(
            px.delete("items", "i2").unwrap_err(),
            WriteError::NoSuchDocument { .. }
        ));
    }

    #[test]
    fn writes_hit_every_replica() {
        let px = horizontal_px(2);
        let r = px.put("items", item("i1", "CD", 7)).unwrap();
        assert_eq!(r.nodes, [0, 2]);
        for node in [0, 2] {
            let db = &px.cluster().node(node).unwrap().db;
            assert_eq!(db.collection_len("f_cd").unwrap(), 1, "replica on node {node}");
        }
        let r = px.delete("items", "i1").unwrap();
        assert_eq!(r.deleted, 2, "one removal per replica");
    }

    #[test]
    fn writes_invalidate_the_result_cache() {
        let px = horizontal_px(1);
        px.set_result_cache_enabled(true);
        px.put("items", item("i1", "CD", 7)).unwrap();
        let q = r#"count(collection("items")/Item)"#;
        assert_eq!(count(&px, q), 1.0);
        assert_eq!(count(&px, q), 1.0); // cached
        px.put("items", item("i2", "DVD", 8)).unwrap();
        assert_eq!(count(&px, q), 2.0, "epoch bump must invalidate the cached answer");
        px.delete("items", "i1").unwrap();
        assert_eq!(count(&px, q), 1.0);
    }
}
