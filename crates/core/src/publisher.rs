//! The Distributed XML Data Publisher.
//!
//! Receives XML documents from users, applies the fragmentation
//! registered for their collection, and ships the resulting fragments to
//! their nodes (paper Sec. 4).

use crate::service::{PartiX, PartixError};
use partix_frag::Fragmenter;
use partix_xml::Document;

/// What the publisher did with one batch of documents.
#[derive(Debug, Clone, Default)]
pub struct PublishReport {
    /// `(fragment, node, documents stored, bytes stored)`.
    pub shipped: Vec<(String, usize, usize, usize)>,
    /// Source documents processed.
    pub documents: usize,
}

impl PartiX {
    /// Fragment `docs` according to the registered distribution of
    /// `collection` and store each fragment on its node.
    pub fn publish(
        &self,
        collection: &str,
        docs: &[Document],
    ) -> Result<PublishReport, PartixError> {
        let catalog = self.catalog();
        let dist = catalog
            .distribution(collection)
            .ok_or_else(|| PartixError::NoDistribution(collection.to_owned()))?;
        let fragmenter = Fragmenter::new(dist.design.clone());
        let mut report = PublishReport { documents: docs.len(), ..Default::default() };
        for (frag_name, frag_docs) in fragmenter.fragment_all(docs) {
            let nodes = dist.nodes_of(&frag_name);
            if nodes.is_empty() {
                return Err(PartixError::Internal(format!("{frag_name} unplaced")));
            }
            let count = frag_docs.len();
            let bytes: usize = frag_docs.iter().map(Document::approx_size).sum();
            // ship a copy to every replica node
            for node_id in nodes {
                let node = self.cluster().node(node_id).ok_or_else(|| {
                    PartixError::Internal(format!("node {node_id} missing"))
                })?;
                node.store_docs(&frag_name, frag_docs.clone());
                report.shipped.push((frag_name.clone(), node_id, count, bytes));
            }
        }
        drop(catalog);
        self.refresh_node_gauges();
        Ok(report)
    }

    /// Store `docs` unfragmented on one node — the centralized baseline
    /// every experiment compares against.
    pub fn publish_centralized(
        &self,
        node: usize,
        collection: &str,
        docs: &[Document],
    ) -> Result<(), PartixError> {
        let node = self
            .cluster()
            .node(node)
            .ok_or_else(|| PartixError::Internal(format!("node {node} missing")))?;
        node.store_docs(collection, docs.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Distribution, Placement};
    use crate::cluster::NetworkModel;
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::{PathExpr, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;
    use std::sync::Arc;

    fn items(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let section = ["CD", "DVD"][i % 2];
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Section>{section}</Section></Item>"
                ))
                .unwrap();
                d.name = Some(format!("i{i}"));
                d
            })
            .collect()
    }

    fn partix() -> PartiX {
        let px = PartiX::new(2, NetworkModel::default());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_dvd",
                    Predicate::parse(r#"/Item/Section = "DVD""#).unwrap(),
                ),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_dvd".into(), node: 1 },
            ],
        })
        .unwrap();
        px
    }

    #[test]
    fn publish_ships_fragments_to_their_nodes() {
        let px = partix();
        let report = px.publish("items", &items(10)).unwrap();
        assert_eq!(report.documents, 10);
        assert_eq!(report.shipped.len(), 2);
        assert_eq!(report.shipped[0], ("f_cd".into(), 0, 5, report.shipped[0].3));
        assert_eq!(report.shipped[1].2, 5);
        assert_eq!(px.cluster().node(0).unwrap().db.collection_len("f_cd").unwrap(), 5);
        assert_eq!(px.cluster().node(1).unwrap().db.collection_len("f_dvd").unwrap(), 5);
        // nothing leaked onto the wrong node
        assert!(px.cluster().node(1).unwrap().db.collection_len("f_cd").is_err());
    }

    #[test]
    fn publish_unknown_collection_fails() {
        let px = partix();
        assert!(matches!(
            px.publish("nope", &items(1)),
            Err(PartixError::NoDistribution(_))
        ));
    }

    #[test]
    fn publish_centralized_stores_whole_collection() {
        let px = partix();
        px.publish_centralized(0, "items_central", &items(10)).unwrap();
        assert_eq!(
            px.cluster().node(0).unwrap().db.collection_len("items_central").unwrap(),
            10
        );
    }

    #[test]
    fn incremental_publish_appends() {
        let px = partix();
        px.publish("items", &items(4)).unwrap();
        px.publish("items", &items(4)).unwrap();
        assert_eq!(px.cluster().node(0).unwrap().db.collection_len("f_cd").unwrap(), 4);
    }
}
