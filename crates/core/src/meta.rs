//! The epoch-versioned catalog meta service behind coordinator
//! replication.
//!
//! One [`MetaService`] holds the authoritative distribution catalog plus
//! a monotonically increasing *epoch*. Any number of [`crate::PartiX`]
//! coordinators attach to it ([`crate::PartiX::attach_meta`]) and become
//! stateless front-ends: every catalog mutation — schema or distribution
//! registration, a rebalance swapping placements, an online write — goes
//! through the meta service and bumps the epoch; each coordinator
//! re-pulls the snapshot (and drops its result cache) the first time it
//! serves a query after the bump. The snapshot is cheap: the catalog's
//! values are `Arc`s, so a clone is two small `HashMap`s of refcount
//! bumps, not a deep copy of designs and placements.
//!
//! Watching: [`MetaService::wait_for`] blocks until the epoch passes a
//! threshold, which is how tests (and any future push-invalidation
//! plumbing) observe convergence without polling.

use crate::catalog::{Catalog, Distribution, DistributionError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct MetaState {
    epoch: u64,
    catalog: Catalog,
}

/// Shared, epoch-versioned catalog. See the module docs.
pub struct MetaService {
    state: Mutex<MetaState>,
    watch: Condvar,
}

impl MetaService {
    /// An empty catalog at epoch 1.
    pub fn new() -> Arc<MetaService> {
        MetaService::with_catalog(Catalog::new())
    }

    /// Seed the service from an existing catalog (e.g. the catalog a
    /// standalone coordinator built before replication was turned on).
    pub fn with_catalog(catalog: Catalog) -> Arc<MetaService> {
        Arc::new(MetaService {
            state: Mutex::new(MetaState { epoch: 1, catalog }),
            watch: Condvar::new(),
        })
    }

    /// Current catalog epoch. Monotonic; starts at 1.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// The current `(epoch, catalog)` pair, snapshotted atomically.
    pub fn snapshot(&self) -> (u64, Catalog) {
        let state = self.lock();
        (state.epoch, state.catalog.clone())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetaState> {
        // the service is infallible shared state: a poisoned lock means a
        // panic *inside* one of these short critical sections, which never
        // leaves the state half-mutated
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn mutate<R>(&self, f: impl FnOnce(&mut Catalog) -> R) -> (u64, R) {
        let mut state = self.lock();
        let r = f(&mut state.catalog);
        state.epoch += 1;
        let epoch = state.epoch;
        drop(state);
        self.watch.notify_all();
        (epoch, r)
    }

    /// Register a schema; bumps the epoch.
    pub fn register_schema(&self, schema: Arc<partix_schema::Schema>) -> u64 {
        self.mutate(|c| c.register_schema(schema)).0
    }

    /// Register (or replace) a distribution, validated against
    /// `cluster_len`; bumps the epoch on success.
    pub fn register_distribution_on(
        &self,
        dist: Distribution,
        cluster_len: usize,
    ) -> Result<u64, DistributionError> {
        let mut state = self.lock();
        state.catalog.register_distribution_on(dist, cluster_len)?;
        state.epoch += 1;
        let epoch = state.epoch;
        drop(state);
        self.watch.notify_all();
        Ok(epoch)
    }

    /// Bump the epoch without touching the catalog — the invalidation
    /// signal for data mutations (online writes), telling every attached
    /// coordinator to drop result caches built over the old data.
    pub fn bump(&self) -> u64 {
        self.mutate(|_| ()).0
    }

    /// Block until the epoch reaches at least `min_epoch` (or the
    /// timeout passes); returns the epoch observed last. Watch/notify,
    /// not polling.
    pub fn wait_for(&self, min_epoch: u64, timeout: Duration) -> u64 {
        let started = Instant::now();
        let mut state = self.lock();
        while state.epoch < min_epoch {
            let waited = started.elapsed();
            if waited >= timeout {
                break;
            }
            let (guard, wait) = self
                .watch
                .wait_timeout(state, timeout - waited)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
            if wait.timed_out() {
                break;
            }
        }
        state.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bumps_and_snapshots() {
        let meta = MetaService::new();
        assert_eq!(meta.epoch(), 1);
        assert_eq!(meta.bump(), 2);
        let (epoch, _catalog) = meta.snapshot();
        assert_eq!(epoch, 2);
    }

    #[test]
    fn wait_for_observes_concurrent_bumps() {
        let meta = MetaService::new();
        let waiter = Arc::clone(&meta);
        let handle = std::thread::spawn(move || waiter.wait_for(3, Duration::from_secs(5)));
        meta.bump();
        meta.bump();
        assert!(handle.join().unwrap() >= 3);
    }

    #[test]
    fn wait_for_times_out() {
        let meta = MetaService::new();
        let seen = meta.wait_for(99, Duration::from_millis(20));
        assert_eq!(seen, 1);
    }
}
