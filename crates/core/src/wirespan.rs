//! Thread-local send/recv accounting for network-backed drivers.
//!
//! The dispatch loop runs each driver call on some worker thread; a
//! socket-backed driver knows exactly how long it spent writing the
//! request and waiting for the response bytes, but the `PartixDriver`
//! trait has no channel to report it. This module is that channel: the
//! driver [`record`]s its wire times as the call returns, and the
//! coordinator [`take`]s them on the same thread right after the call,
//! folding them into the per-sub-query [`SubQueryStage`]
//! (`send`/`recv` spans) without widening the driver trait's result
//! types.
//!
//! The cell is per-thread, so concurrent sub-queries on different
//! workers never mix their numbers; [`take`] resets the cell so a
//! driver that records nothing (every in-process driver) yields zeros.
//!
//! [`SubQueryStage`]: crate::trace::SubQueryStage

use std::cell::Cell;

thread_local! {
    static SEND_S: Cell<f64> = const { Cell::new(0.0) };
    static RECV_S: Cell<f64> = const { Cell::new(0.0) };
}

/// Add wire time observed by a driver call on this thread. Accumulates,
/// so one logical call that writes/reads several frames may record more
/// than once.
pub fn record(send_s: f64, recv_s: f64) {
    SEND_S.with(|c| c.set(c.get() + send_s));
    RECV_S.with(|c| c.set(c.get() + recv_s));
}

/// Drain this thread's accumulated `(send_s, recv_s)`, resetting to
/// zero. Call once per driver call, on the thread that made it.
pub fn take() -> (f64, f64) {
    let send = SEND_S.with(|c| c.replace(0.0));
    let recv = RECV_S.with(|c| c.replace(0.0));
    (send, recv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_take_resets() {
        assert_eq!(take(), (0.0, 0.0));
        record(0.25, 0.5);
        record(0.25, 0.0);
        assert_eq!(take(), (0.5, 0.5));
        assert_eq!(take(), (0.0, 0.0));
    }

    #[test]
    fn threads_are_isolated() {
        record(1.0, 1.0);
        std::thread::spawn(|| {
            assert_eq!(take(), (0.0, 0.0));
        })
        .join()
        .unwrap();
        assert_eq!(take(), (1.0, 1.0));
    }
}
