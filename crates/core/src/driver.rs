//! The PartiX Driver — the uniform interface between the middleware and
//! the XML DBMS running on each node (paper Sec. 4: *"Our architecture
//! considers that there is a PartiX Driver, which allows accessing remote
//! DBMSs to store and retrieve XML documents. … The PartiX driver allows
//! different XML DBMSs to participate in the system. The only requirement
//! is that they are able to process XQuery."*)
//!
//! [`partix_storage::Database`] is the built-in implementation; any other
//! XQuery-capable engine can participate by implementing [`PartixDriver`]
//! and installing it on a node with [`Node::set_driver`](crate::Node::set_driver).
//! [`InstrumentedDriver`] wraps another driver with fault and latency
//! injection — used by the failure tests and useful for resilience
//! experiments.

use partix_query::Query;
use partix_storage::{Database, DurableDb, QueryOutput, WalError, WriteOp};
use partix_xml::Document;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// How a driver call failed. The distinction drives the coordinator's
/// recovery: [`DriverError::Unavailable`] means the DBMS never processed
/// the request (node crashed, link dropped) — safe and worthwhile to
/// retry on another replica — while [`DriverError::Failed`] means the
/// DBMS rejected or aborted the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The DBMS is unreachable or crashed mid-request.
    Unavailable(String),
    /// The DBMS processed the request and failed it.
    Failed(String),
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
            DriverError::Failed(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// What each node-side DBMS must provide.
pub trait PartixDriver: Send + Sync {
    /// Execute an XQuery. `Ok(None)` means the queried collection does
    /// not exist on this node (an empty fragment — answered upstream with
    /// an empty result); `Err` is a genuine execution failure.
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError>;

    /// Store documents into a named collection (created on demand).
    fn store(&self, collection: &str, docs: Vec<Document>);

    /// Fetch a whole collection (empty when absent) — used by the
    /// reconstruction fallback.
    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>>;

    /// Names of the collections this node holds.
    fn collections(&self) -> Vec<String>;

    /// Remove a collection entirely (no-op when absent). Default does
    /// nothing so drivers predating this method stay source-compatible.
    fn drop_collection(&self, _collection: &str) {}

    /// Liveness probe. In-process drivers are trivially healthy; network
    /// drivers override this with a real ping so the cluster can verify
    /// a node before routing work to it.
    fn health_check(&self) -> Result<(), DriverError> {
        Ok(())
    }

    /// Whether this driver already accounts *genuine* wire bytes into
    /// the `net.bytes_shipped` counter as its calls run. When true, the
    /// coordinator skips its modeled byte accounting for results served
    /// by this driver, so shipped bytes are never double-counted.
    fn counts_wire_bytes(&self) -> bool {
        false
    }

    /// Apply one online write (put/delete), returning how many existing
    /// documents it affected. Unlike [`PartixDriver::store`] (the bulk
    /// publish path, fire-and-forget by design) this is *fallible with
    /// typed errors*: an [`DriverError::Unavailable`] means the write was
    /// not acknowledged — on a WAL-backed node its recovery outcome is
    /// decided by how far the pipeline got — while a
    /// [`DriverError::Failed`] means the DBMS rejected it. The default
    /// refuses, keeping drivers that predate the write path
    /// source-compatible and loudly non-writable instead of silently
    /// dropping documents.
    fn write(&self, op: &WriteOp) -> Result<u32, DriverError> {
        let _ = op;
        Err(DriverError::Failed("driver does not support online writes".into()))
    }
}

impl PartixDriver for Database {
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        match self.execute_parsed(query) {
            Ok(out) => Ok(Some(out)),
            Err(partix_storage::exec::ExecError::Eval(
                partix_query::EvalError::UnknownCollection(_),
            )) => Ok(None),
            Err(other) => Err(DriverError::Failed(other.to_string())),
        }
    }

    fn store(&self, collection: &str, docs: Vec<Document>) {
        self.store_all(collection, docs);
    }

    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>> {
        partix_query::CollectionProvider::collection(self, collection).unwrap_or_default()
    }

    fn collections(&self) -> Vec<String> {
        self.collection_names()
    }

    fn drop_collection(&self, collection: &str) {
        Database::drop_collection(self, collection);
    }

    fn write(&self, op: &WriteOp) -> Result<u32, DriverError> {
        Ok(self.apply_write(op))
    }
}

/// A WAL-backed node database: reads are served by the recovered
/// in-memory [`Database`], writes run the full append → fsync → apply
/// pipeline, and a node killed mid-write answers
/// [`DriverError::Unavailable`] until the directory is reopened.
impl PartixDriver for DurableDb {
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        if self.is_dead() {
            return Err(DriverError::Unavailable("node is down (killed mid-write)".into()));
        }
        PartixDriver::execute(&**self.db(), query)
    }

    fn store(&self, collection: &str, docs: Vec<Document>) {
        // bulk publish bypasses the log by design: publishing is part of
        // building a repository, checkpointed explicitly by the caller
        PartixDriver::store(&**self.db(), collection, docs);
    }

    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>> {
        PartixDriver::fetch_collection(&**self.db(), collection)
    }

    fn collections(&self) -> Vec<String> {
        self.db().collection_names()
    }

    fn drop_collection(&self, collection: &str) {
        Database::drop_collection(self.db(), collection);
    }

    fn health_check(&self) -> Result<(), DriverError> {
        if self.is_dead() {
            return Err(DriverError::Unavailable("node is down (killed mid-write)".into()));
        }
        Ok(())
    }

    fn write(&self, op: &WriteOp) -> Result<u32, DriverError> {
        self.apply(op).map_err(|e| match e {
            WalError::Killed(_) | WalError::Dead => DriverError::Unavailable(e.to_string()),
            WalError::Io(_) => DriverError::Failed(e.to_string()),
        })
    }
}

/// A wrapper driver injecting failures and artificial service delay —
/// a stand-in for a flaky or slow remote DBMS.
pub struct InstrumentedDriver {
    inner: Arc<dyn PartixDriver>,
    failing: AtomicBool,
    /// Extra seconds charged onto every query's reported elapsed time.
    delay_secs: f64,
    calls: AtomicUsize,
}

impl InstrumentedDriver {
    pub fn new(inner: Arc<dyn PartixDriver>) -> InstrumentedDriver {
        InstrumentedDriver {
            inner,
            failing: AtomicBool::new(false),
            delay_secs: 0.0,
            calls: AtomicUsize::new(0),
        }
    }

    /// Charge `delay_secs` of service time onto every query.
    pub fn with_delay(mut self, delay_secs: f64) -> InstrumentedDriver {
        self.delay_secs = delay_secs;
        self
    }

    /// Make every subsequent query fail (simulating a DBMS crash that
    /// leaves the node reachable).
    pub fn set_failing(&self, failing: bool) {
        self.failing.store(failing, Ordering::Release);
    }

    /// Queries served so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Acquire)
    }
}

impl PartixDriver for InstrumentedDriver {
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        self.calls.fetch_add(1, Ordering::AcqRel);
        if self.failing.load(Ordering::Acquire) {
            return Err(DriverError::Failed("injected DBMS failure".into()));
        }
        let mut out = self.inner.execute(query)?;
        if let Some(out) = &mut out {
            out.stats.elapsed += self.delay_secs;
        }
        Ok(out)
    }

    fn store(&self, collection: &str, docs: Vec<Document>) {
        self.inner.store(collection, docs);
    }

    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>> {
        self.inner.fetch_collection(collection)
    }

    fn collections(&self) -> Vec<String> {
        self.inner.collections()
    }

    fn drop_collection(&self, collection: &str) {
        self.inner.drop_collection(collection);
    }

    fn health_check(&self) -> Result<(), DriverError> {
        if self.failing.load(Ordering::Acquire) {
            return Err(DriverError::Failed("injected DBMS failure".into()));
        }
        self.inner.health_check()
    }

    fn counts_wire_bytes(&self) -> bool {
        self.inner.counts_wire_bytes()
    }

    fn write(&self, op: &WriteOp) -> Result<u32, DriverError> {
        if self.failing.load(Ordering::Acquire) {
            return Err(DriverError::Failed("injected DBMS failure".into()));
        }
        self.inner.write(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;
    use partix_xml::parse;

    fn db_with_items() -> Arc<Database> {
        let db = Database::new();
        for i in 0..4 {
            let mut d = parse(&format!("<Item><Code>{i}</Code></Item>")).unwrap();
            d.name = Some(format!("i{i}"));
            db.store("items", d);
        }
        Arc::new(db)
    }

    #[test]
    fn database_driver_roundtrip() {
        let db = db_with_items();
        let driver: &dyn PartixDriver = &*db;
        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        let out = driver.execute(&q).unwrap().unwrap();
        assert_eq!(out.items[0], partix_query::Item::Num(4.0));
        assert_eq!(driver.collections(), ["items"]);
        assert_eq!(driver.fetch_collection("items").len(), 4);
        assert!(driver.fetch_collection("nope").is_empty());
        // unknown collection is an empty fragment, not a failure
        let q = parse_query(r#"count(collection("absent")/x)"#).unwrap();
        assert!(driver.execute(&q).unwrap().is_none());
    }

    #[test]
    fn instrumented_driver_injects_failures_and_delay() {
        let db = db_with_items();
        let driver = InstrumentedDriver::new(db).with_delay(0.25);
        let q = parse_query(r#"count(collection("items")/Item)"#).unwrap();
        let out = driver.execute(&q).unwrap().unwrap();
        assert!(out.stats.elapsed >= 0.25);
        driver.set_failing(true);
        assert!(driver.execute(&q).is_err());
        driver.set_failing(false);
        assert!(driver.execute(&q).is_ok());
        assert_eq!(driver.calls(), 3);
    }

    #[test]
    fn driver_store_creates_collections() {
        let db = Arc::new(Database::new());
        let driver = InstrumentedDriver::new(Arc::clone(&db) as Arc<dyn PartixDriver>);
        driver.store("c", vec![parse("<a/>").unwrap()]);
        assert_eq!(driver.collections(), ["c"]);
    }
}
