//! Data localization: which fragments can contribute to a query?
//!
//! The middleware prunes a sub-query when the fragment provably cannot
//! hold matching data (paper Sec. 5: *"When the query predicates match
//! the fragmentation predicates, the sub-queries are issued only to the
//! corresponding fragments"*). All checks are conservative: in doubt, the
//! fragment stays relevant.

use partix_frag::{FragOp, FragmentationSchema};
use partix_path::analysis::{
    fragment_relevant_to_path, predicates_may_cosatisfy,
};
use partix_path::{Axis, NodeTest, PathExpr, Predicate, Step};
use partix_query::pushdown::QueryAnalysis;

/// Decide relevance of every fragment in `design` for a query with the
/// given pushdown analysis. Returns fragment indexes in definition order.
pub fn relevant_fragments(
    design: &FragmentationSchema,
    analysis: Option<&QueryAnalysis>,
) -> Vec<usize> {
    let Some(analysis) = analysis else {
        // nothing known about the query: every fragment participates
        return (0..design.fragments.len()).collect();
    };
    let doc_schema = design.collection.document_schema();
    let single_valued = |p: &PathExpr| {
        doc_schema.as_ref().is_some_and(|s| s.is_single_valued(p))
    };
    design
        .fragments
        .iter()
        .enumerate()
        .filter(|(_, frag)| match &frag.op {
            FragOp::Horizontal { predicate } => match &analysis.doc_predicate {
                Some(q) => predicates_may_cosatisfy(predicate, q, &single_valued),
                None => true,
            },
            FragOp::Vertical { projection } => vertical_relevant(
                &projection.path,
                &projection.prune,
                &analysis.footprint,
            ),
            FragOp::Hybrid { unit_path, predicate, .. } => {
                let path_relevant = analysis
                    .footprint
                    .iter()
                    .any(|q| fragment_relevant_to_path(unit_path, q));
                if !path_relevant {
                    return false;
                }
                // unit-level pruning: the query's per-tuple predicate and
                // the fragment's unit predicate live in the same space
                // (paths rooted at the unit element), where the unit
                // schema decides single-valuedness
                let unit_binding_matches = analysis
                    .binding_path
                    .last_step()
                    .zip(unit_path.last_step())
                    .is_some_and(|(a, b)| a.test == b.test);
                match (&analysis.tuple_predicate, unit_binding_matches) {
                    (Some(q), true) => {
                        let unit_schema = design
                            .collection
                            .schema
                            .subschema(unit_path);
                        let unit_single = |p: &PathExpr| {
                            unit_schema.as_ref().is_some_and(|s| s.is_single_valued(p))
                        };
                        predicates_may_cosatisfy(predicate, q, &unit_single)
                    }
                    _ => true,
                }
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Vertical fragment relevance: some footprint path must reach into the
/// projected subtree (or be an ancestor of it), and not live entirely
/// inside a pruned-away part.
fn vertical_relevant(path: &PathExpr, prune: &[PathExpr], footprint: &[PathExpr]) -> bool {
    footprint.iter().any(|q| {
        fragment_relevant_to_path(path, q) && !strictly_inside_any(q, prune)
    })
}

/// Is `q` provably contained in the subtree pruned by one of `prune`?
///
/// Decided via exact step-prefix containment: when `q`'s leading steps
/// are exactly `g`, every node `q` selects lies under a `g` node —
/// wildcards *after* the prefix do not affect this. Paths that relate to
/// `g` only through leading wildcards are left undecided (fragment stays
/// relevant — conservative).
pub(crate) fn strictly_inside_any(q: &PathExpr, prune: &[PathExpr]) -> bool {
    prune.iter().any(|g| q.strip_prefix(g).is_some())
}

/// Re-root a hybrid fragment's unit-level predicate (paths like
/// `/Item/Section`) to the collection's document space (paths like
/// `/Store/Items/Item/Section`) so it can be compared with the query's
/// pushed-down predicate.
pub fn align_unit_predicate(predicate: &Predicate, unit_path: &PathExpr) -> Predicate {
    map_predicate_paths(predicate, &|p| {
        if p.steps.is_empty() {
            return p.clone();
        }
        // replace the first step (the unit root label) with the unit path
        let mut steps: Vec<Step> = unit_path.steps.clone();
        steps.extend(p.steps.iter().skip(1).cloned());
        PathExpr { absolute: true, steps }
    })
}

fn map_predicate_paths(pred: &Predicate, f: &dyn Fn(&PathExpr) -> PathExpr) -> Predicate {
    use partix_path::pred::BoolFn;
    match pred {
        Predicate::Cmp { path, op, value } => {
            Predicate::Cmp { path: f(path), op: *op, value: value.clone() }
        }
        Predicate::FnCmp { func, path, op, value } => Predicate::FnCmp {
            func: *func,
            path: f(path),
            op: *op,
            value: value.clone(),
        },
        Predicate::Bool(b) => Predicate::Bool(match b {
            BoolFn::Contains(p, s) => BoolFn::Contains(f(p), s.clone()),
            BoolFn::StartsWith(p, s) => BoolFn::StartsWith(f(p), s.clone()),
            BoolFn::Empty(p) => BoolFn::Empty(f(p)),
        }),
        Predicate::Exists(p) => Predicate::Exists(f(p)),
        Predicate::And(ps) => {
            Predicate::And(ps.iter().map(|p| map_predicate_paths(p, f)).collect())
        }
        Predicate::Or(ps) => {
            Predicate::Or(ps.iter().map(|p| map_predicate_paths(p, f)).collect())
        }
        Predicate::Not(p) => Predicate::Not(Box::new(map_predicate_paths(p, f))),
    }
}

/// Build the absolute path of a fragment's stored document root — what a
/// sub-query's first step must test. For a vertical fragment this is the
/// last step of its projection path; for hybrid FragMode2 the stored root
/// is the collection root itself.
pub fn fragment_root_step(projection_path: &PathExpr) -> Option<Step> {
    projection_path.last_step().map(|s| Step {
        axis: Axis::Child,
        test: s.test.clone(),
        position: None,
    })
}

/// Does a node-test name an element called `label`?
pub fn step_is_named(step: &Step, label: &str) -> bool {
    matches!(&step.test, NodeTest::Name(n) if n == label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_frag::{FragMode, FragmentDef};
    use partix_query::parse_query;
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use std::sync::Arc;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    fn pr(s: &str) -> Predicate {
        Predicate::parse(s).unwrap()
    }

    fn citems() -> CollectionDef {
        CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            p("/Store/Items/Item"),
            RepoKind::MultipleDocuments,
        )
    }

    fn horizontal_design() -> FragmentationSchema {
        FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::horizontal("f_cd", pr(r#"/Item/Section = "CD""#)),
                FragmentDef::horizontal("f_dvd", pr(r#"/Item/Section = "DVD""#)),
                FragmentDef::horizontal(
                    "f_rest",
                    pr(r#"/Item/Section != "CD" and /Item/Section != "DVD""#),
                ),
            ],
        )
        .unwrap()
    }

    fn analyze(src: &str) -> QueryAnalysis {
        partix_query::pushdown::analyze(&parse_query(src).unwrap()).unwrap()
    }

    #[test]
    fn horizontal_pruning_on_matching_predicate() {
        let design = horizontal_design();
        let a = analyze(
            r#"for $i in collection("items")/Item where $i/Section = "CD" return $i/Name"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [0]);
    }

    #[test]
    fn horizontal_no_predicate_keeps_all() {
        let design = horizontal_design();
        let a = analyze(r#"for $i in collection("items")/Item return $i/Name"#);
        assert_eq!(relevant_fragments(&design, Some(&a)), [0, 1, 2]);
    }

    #[test]
    fn horizontal_unrelated_predicate_keeps_all() {
        let design = horizontal_design();
        let a = analyze(
            r#"for $i in collection("items")/Item where contains($i/Name, "x") return $i"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [0, 1, 2]);
    }

    #[test]
    fn horizontal_disjunction_selects_two() {
        let design = horizontal_design();
        let a = analyze(
            r#"for $i in collection("items")/Item
               where $i/Section = "CD" or $i/Section = "DVD" return $i"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [0, 1]);
    }

    fn vertical_design() -> FragmentationSchema {
        FragmentationSchema::new(
            citems(),
            vec![
                FragmentDef::vertical("f_main", p("/Item"), vec![p("/Item/PictureList")]),
                FragmentDef::vertical("f_pics", p("/Item/PictureList"), vec![]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn vertical_path_pruning() {
        let design = vertical_design();
        // touches only item names → pictures fragment irrelevant
        let a = analyze(r#"for $i in collection("items")/Item/Name return $i"#);
        assert_eq!(relevant_fragments(&design, Some(&a)), [0]);
        // touches only pictures, which live strictly inside the pruned
        // subtree → only the pictures fragment is consulted
        let a = analyze(
            r#"for $x in collection("items")/Item/PictureList/Picture return $x"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [1]);
    }

    #[test]
    fn vertical_pruned_subtree_excluded_from_main() {
        // query entirely inside the pruned PictureList: the main fragment
        // (which pruned it) keeps only ancestor relevance via /Item root…
        let design = vertical_design();
        let a = analyze(
            r#"count(collection("items")/Item/PictureList/Picture/OriginalPath)"#,
        );
        // footprint /Item/PictureList/Picture/OriginalPath is strictly
        // inside the pruned subtree → f_main NOT relevant; f_pics is
        let rel = relevant_fragments(&design, Some(&a));
        assert_eq!(rel, [1]);
    }

    #[test]
    fn wildcard_footprint_keeps_everything() {
        let design = vertical_design();
        let a = analyze(r#"count(collection("items")//Description)"#);
        assert_eq!(relevant_fragments(&design, Some(&a)), [0, 1]);
    }

    #[test]
    fn hybrid_alignment_and_pruning() {
        let cstore = CollectionDef::new(
            "store",
            Arc::new(virtual_store()),
            p("/Store"),
            RepoKind::SingleDocument,
        );
        let design = FragmentationSchema::new(
            cstore,
            vec![
                FragmentDef::hybrid(
                    "f_cd",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "CD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::hybrid(
                    "f_dvd",
                    p("/Store/Items/Item"),
                    pr(r#"/Item/Section = "DVD""#),
                    FragMode::SingleDoc,
                ),
                FragmentDef::vertical("f_rest", p("/Store"), vec![p("/Store/Items")]),
            ],
        )
        .unwrap();
        // query for CD items: only f_cd
        let a = analyze(
            r#"for $i in collection("store")/Store/Items/Item
               where $i/Section = "CD" return $i/Name"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [0]);
        // query over Sections: only the prune fragment
        let a = analyze(
            r#"for $s in collection("store")/Store/Sections/Section return $s/Name"#,
        );
        assert_eq!(relevant_fragments(&design, Some(&a)), [2]);
    }

    #[test]
    fn align_unit_predicate_rewrites_first_step() {
        let aligned = align_unit_predicate(
            &pr(r#"/Item/Section = "CD""#),
            &p("/Store/Items/Item"),
        );
        assert_eq!(aligned.to_string(), r#"/Store/Items/Item/Section = "CD""#);
    }

    #[test]
    fn no_analysis_keeps_all() {
        let design = horizontal_design();
        assert_eq!(relevant_fragments(&design, None), [0, 1, 2]);
    }
}
