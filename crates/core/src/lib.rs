//! # partix-engine
//!
//! The PartiX middleware (paper Section 4): a coordinator that processes
//! XQuery queries over XML repositories fragmented across a cluster of
//! nodes, each running a sequential XML DBMS ([`partix_storage::Database`]).
//!
//! ```text
//!            ┌────────────────────── PartiX ──────────────────────┐
//!  XQuery ──▶│ Schema Catalog │ Distribution Catalog │ Publisher  │
//!            │          Distributed Query Service                 │
//!            └──────┬───────────────┬────────────────┬────────────┘
//!              sub-query        sub-query        sub-query
//!            ┌──────▼─────┐  ┌──────▼─────┐  ┌──────▼─────┐
//!            │  node 0    │  │  node 1    │  │  node n    │
//!            │ (XML DBMS) │  │ (XML DBMS) │  │ (XML DBMS) │
//!            └────────────┘  └────────────┘  └────────────┘
//! ```
//!
//! * [`catalog`] — the XML Schema Catalog Service and the XML
//!   Distribution Catalog Service: schemas, collections, fragmentation
//!   designs and fragment placement.
//! * [`cluster`] — nodes (each a [`partix_storage::Database`]), the
//!   cluster, and the network model used to charge transmission times
//!   (the paper: result bytes ÷ Gigabit Ethernet speed).
//! * [`publisher`] — the Distributed XML Data Publisher: fragments
//!   incoming documents per the registered design and ships each fragment
//!   to its node.
//! * [`localize`] — data localization: decides which fragments can
//!   contribute to a query, using predicate co-satisfiability (horizontal)
//!   and path-overlap analysis (vertical/hybrid).
//! * [`service`] — the Distributed Query Service: decomposes a query into
//!   per-fragment sub-queries, runs them in parallel (one thread per
//!   node), composes the result (union / aggregate combination /
//!   reconstruction join) and reports the cluster-timing breakdown.
//! * [`runtime`] — persistent per-node worker pools backing
//!   [`DispatchMode::Pool`]: concurrent `execute` calls share a bounded
//!   set of threads instead of spawning per sub-query.
//! * [`cache`] — coordinator-side plan and sub-query result caches, the
//!   latter invalidated by per-collection write epochs.
//! * [`faults`] — deterministic fault injection: seeded per-node fault
//!   schedules ([`faults::FaultPlan`]) wrapping any node's driver in a
//!   [`faults::FaultInjector`] (crashes, DBMS errors, latency,
//!   flip-flopping availability), exercising the dispatch layer's
//!   retry/deadline/failover machinery ([`service::RetryPolicy`]).
//! * [`trace`] — per-query spans on a monotonic clock, collapsed into a
//!   [`trace::StageBreakdown`] (parse / localize / dispatch / compose,
//!   plus per-sub-query queue-wait, execute and backoff) carried by each
//!   [`report::QueryReport`], exportable in Chrome trace-event format.
//! * [`metrics`] — the process-wide [`metrics::MetricsRegistry`]: named
//!   counters, gauges and lock-free log-bucket latency histograms
//!   (cache hits, pool queue depth, retries, timeouts, bytes moved).
//! * [`wirespan`] — thread-local send/recv timing channel between
//!   socket-backed drivers (`partix-net`) and the dispatch loop, feeding
//!   the `send`/`recv` spans of each sub-query's stage breakdown.
//!
//! The *parallel elapsed time* in a [`report::QueryReport`] follows the
//! paper's methodology: the slowest site determines the parallel time,
//! and transmission time is modelled from result sizes and the configured
//! bandwidth (there is no inter-node communication).

pub mod cache;
pub mod catalog;
pub mod cluster;
pub mod compose;
pub mod driver;
pub mod faults;
pub mod localize;
pub mod meta;
pub mod metrics;
pub mod publisher;
pub mod report;
pub mod runtime;
pub mod service;
pub mod trace;
pub mod wirespan;
pub mod writes;

pub use cache::CacheStats;
pub use catalog::{Catalog, Distribution, DistributionError, Placement};
pub use cluster::{Cluster, NetworkModel, Node};
pub use driver::{DriverError, InstrumentedDriver, PartixDriver};
pub use faults::{Fault, FaultInjector, FaultPlan, InjectionStats};
pub use meta::MetaService;
pub use metrics::{MetricsRegistry, Snapshot};
pub use report::{QueryReport, SiteReport, SkippedFragment};
pub use trace::{SpanRecord, StageBreakdown, SubQueryStage, Trace};
pub use partix_storage::MorselConfig;
pub use partix_tenant::{
    Admission, AdmissionConfig, AdmissionController, PriorityClass, TenantId,
    TenantQuotas, TenantRegistry, TenantSpec,
};
pub use runtime::PoolConfig;
pub use service::{
    DispatchMode, DistributedResult, ExecOptions, PartiX, PartixError, RetryPolicy,
    Tenancy,
};
pub use writes::{WriteError, WriteReport};
