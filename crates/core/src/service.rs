//! The Distributed Query Service.
//!
//! Receives an XQuery, consults the catalogs, decomposes it into
//! per-fragment sub-queries, runs them in parallel (one thread per
//! involved node), and composes the final answer (paper Sec. 4 and
//! Figure 5).
//!
//! Decomposition strategy by fragment family:
//!
//! * **horizontal** — the sub-query is the original query with the
//!   collection renamed to the fragment; results compose by `∪`
//!   (concatenation) or by distributive-aggregate combination.
//! * **hybrid, FragMode2** — fragment documents keep the source shape, so
//!   renaming suffices there too.
//! * **vertical / hybrid FragMode1** — paths are re-rooted onto the
//!   fragment's documents ([`partix_query::rewrite`]). When a query needs
//!   data from several vertical fragments at once (the rewrite fails),
//!   the service falls back to *reconstruct-then-evaluate*: it fetches
//!   the fragments, rebuilds the source documents with the Dewey join,
//!   and runs the original query at the coordinator — the expensive path
//!   the paper identifies for multi-fragment queries.

use crate::cache::{CacheStats, CachedSite, PlanCache, ResultCache, ResultKey};
use crate::catalog::{Catalog, Distribution};
use crate::cluster::{Cluster, NetworkModel, Node};
use crate::compose::{self, Composition};
use crate::driver::DriverError;
use crate::localize;
use crate::metrics;
use crate::report::{QueryReport, SiteReport, SkippedFragment};
use crate::runtime::{PoolConfig, WorkerPool};
use crate::trace::{StageBreakdown, SubQueryStage, Trace};
use crate::wirespan;
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use partix_frag::{FragMode, FragOp};
use partix_query::rewrite::{rewrite_collection_name, rewrite_for_vertical};
use partix_query::{parse_query, pushdown, Query, Sequence};
use partix_storage::{Database, QueryOutput};
use partix_xml::Document;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Errors surfaced by the middleware.
#[derive(Debug)]
pub enum PartixError {
    Parse(partix_query::QueryParseError),
    /// The query references a collection with no registered distribution
    /// and no centralized copy on node 0.
    NoDistribution(String),
    /// A distribution failed registration-time validation (unknown
    /// fragment, node out of range, missing or duplicate placement).
    InvalidDistribution(crate::catalog::DistributionError),
    /// A node required by the query is down.
    NodeUnavailable { node: usize, fragment: String },
    /// A sub-query failed on its node.
    SubQuery { node: usize, fragment: String, error: String },
    /// Fragment reconstruction failed (correctness violation at runtime).
    Reconstruction(String),
    /// A live rebalance swapped the collection's distribution while a
    /// *streamed* answer was in flight. Chunks already emitted may
    /// reflect the old placements, and a stream cannot be silently
    /// re-emitted — the caller must discard and retry (buffered
    /// execution replans transparently instead).
    CatalogSwapped,
    /// The tenant's admission quota rejected the query (or it queued
    /// past the admission deadline). Always a typed answer — admission
    /// never hangs and never panics — carrying a retry hint for the
    /// client. Mapped to dedicated error variants on both wire
    /// protocols.
    AdmissionRejected { tenant: String, retry_after_ms: u64, reason: String },
    Internal(String),
}

impl fmt::Display for PartixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartixError::Parse(e) => write!(f, "{e}"),
            PartixError::NoDistribution(c) => {
                write!(f, "collection {c:?} has no registered distribution")
            }
            PartixError::InvalidDistribution(e) => {
                write!(f, "invalid distribution: {e}")
            }
            PartixError::NodeUnavailable { node, fragment } => {
                write!(f, "node {node} (fragment {fragment}) is unavailable")
            }
            PartixError::SubQuery { node, fragment, error } => {
                write!(f, "sub-query on node {node} (fragment {fragment}) failed: {error}")
            }
            PartixError::Reconstruction(msg) => write!(f, "reconstruction failed: {msg}"),
            PartixError::CatalogSwapped => {
                write!(f, "distribution changed while streaming the answer; retry the query")
            }
            PartixError::AdmissionRejected { tenant, retry_after_ms, reason } => {
                write!(
                    f,
                    "tenant {tenant:?} rejected: {reason} (retry after {retry_after_ms} ms)"
                )
            }
            PartixError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for PartixError {}

/// Result of a distributed query: the composed items plus the timing
/// breakdown.
#[derive(Debug, Clone)]
pub struct DistributedResult {
    pub items: Sequence,
    pub report: QueryReport,
}

/// How sub-queries reach their nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Execute sub-queries sequentially and *model* parallelism: the
    /// parallel elapsed time is the slowest site. This is exactly the
    /// paper's measurement methodology (Sec. 5) and gives clean numbers
    /// on shared hardware. The composed *results* are identical to
    /// threaded dispatch.
    #[default]
    Simulated,
    /// One thread per sub-query — real wall-clock parallelism when the
    /// host has cores to spare.
    Threads,
    /// Persistent per-node worker pools ([`crate::runtime::WorkerPool`]):
    /// sub-queries are enqueued on their node's bounded task queue and
    /// served by long-lived workers. Unlike [`DispatchMode::Threads`]
    /// this bounds thread count under many concurrent
    /// [`PartiX::execute`] callers — the throughput configuration.
    Pool,
}

/// Retry/deadline policy applied to every dispatched sub-query.
///
/// Each sub-query gets up to `max_attempts` tries. A try that fails with
/// [`DriverError::Unavailable`], fails at the DBMS, or exceeds `timeout`
/// is retried — on the *next* replica of the fragment when one exists
/// (mid-flight failover), after an exponential backoff capped at
/// `backoff_max`. Nodes that crashed or timed out are marked *suspect*
/// for `suspect_cooldown` so replica selection routes around them until
/// they recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per sub-query (1 = no retries).
    pub max_attempts: usize,
    /// Per-attempt deadline. `None` waits forever — the default, so the
    /// paper-figure measurements never discard slow-but-correct answers.
    /// With [`DispatchMode::Simulated`] the attempt runs inline and the
    /// deadline is enforced after the fact (the result is discarded);
    /// threaded and pooled dispatch abandon the attempt mid-flight.
    pub timeout: Option<Duration>,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Upper bound on the backoff.
    pub backoff_max: Duration,
    /// How long a crashed/timed-out node stays out of replica rotation.
    pub suspect_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            timeout: None,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(100),
            suspect_cooldown: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based), doubling each time.
    fn backoff(&self, retry: usize) -> Duration {
        let factor = 1u32 << retry.min(16) as u32;
        self.backoff_base.saturating_mul(factor).min(self.backoff_max)
    }
}

/// Per-call execution options (see [`PartiX::execute_with`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecOptions {
    /// Degraded mode: when a fragment's every replica is down (or every
    /// dispatch attempt fails), answer from the fragments that *did*
    /// respond instead of failing the query. The report flags the answer
    /// with [`QueryReport::partial`] and lists the missing fragments in
    /// [`QueryReport::skipped`]. Reconstruction-fallback queries stay
    /// all-or-nothing: a rebuilt document set missing a fragment would be
    /// silently wrong, not partial.
    pub allow_partial: bool,
    /// The tenant this query runs as, when the coordinator has a
    /// [`Tenancy`] attached: admission quotas apply at entry, the
    /// tenant's priority class rides along on every pooled sub-query
    /// job, and per-tenant metrics are recorded. `None` (or no tenancy
    /// attached) preserves the anonymous single-tenant behavior.
    pub tenant: Option<partix_tenant::TenantId>,
}

/// Multi-tenant serving state attached to a coordinator: the tenant
/// registry plus the admission controller applying its quotas at query
/// entry. One `Tenancy` is typically shared (via the `Arc`ed registry)
/// between the engine and the network servers fronting it.
pub struct Tenancy {
    pub registry: Arc<partix_tenant::TenantRegistry>,
    pub controller: partix_tenant::AdmissionController,
}

impl Tenancy {
    pub fn new(registry: Arc<partix_tenant::TenantRegistry>) -> Tenancy {
        Tenancy {
            registry,
            controller: partix_tenant::AdmissionController::default(),
        }
    }
}

/// The PartiX middleware instance.
pub struct PartiX {
    catalog: RwLock<Catalog>,
    cluster: Cluster,
    network: NetworkModel,
    dispatch: DispatchMode,
    localization: std::sync::atomic::AtomicBool,
    /// Lazily-built worker pool (first [`DispatchMode::Pool`] dispatch).
    pool: OnceLock<WorkerPool>,
    pool_config: PoolConfig,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    plan_cache_enabled: std::sync::atomic::AtomicBool,
    result_cache_enabled: std::sync::atomic::AtomicBool,
    retry: RwLock<RetryPolicy>,
    /// Per-fragment round-robin counters driving replica rotation.
    rotation: Mutex<HashMap<String, usize>>,
    /// Gates per-query span collection ([`QueryReport::spans`]). Stage
    /// wall times in [`QueryReport::stages`] are always measured — they
    /// cost a handful of `Instant::now()` reads; spans allocate.
    tracing: std::sync::atomic::AtomicBool,
    /// The replicated-catalog meta service this coordinator follows
    /// (none = standalone coordinator owning its catalog).
    meta: OnceLock<Arc<crate::meta::MetaService>>,
    /// Last meta epoch this coordinator synced its catalog at.
    meta_seen: std::sync::atomic::AtomicU64,
    /// Multi-tenant admission + scheduling state (none = anonymous
    /// single-tenant serving, the historical behavior).
    tenancy: OnceLock<Tenancy>,
}

impl PartiX {
    /// A middleware over `nodes` fresh DBMS nodes.
    pub fn new(nodes: usize, network: NetworkModel) -> PartiX {
        PartiX::with_cluster(Cluster::new(nodes), network)
    }

    /// A middleware over an existing set of nodes — the replicated-
    /// coordinator constructor: several `PartiX` instances built over
    /// [`Cluster::share`]d views coordinate the same DBMS nodes.
    pub fn with_cluster(cluster: Cluster, network: NetworkModel) -> PartiX {
        PartiX {
            catalog: RwLock::new(Catalog::new()),
            cluster,
            network,
            dispatch: DispatchMode::default(),
            localization: std::sync::atomic::AtomicBool::new(true),
            pool: OnceLock::new(),
            pool_config: PoolConfig::default(),
            plan_cache: PlanCache::new(1024),
            result_cache: ResultCache::new(4096),
            // parsing happens outside the reported query timing, so plan
            // caching is free for the paper figures and defaults on
            plan_cache_enabled: std::sync::atomic::AtomicBool::new(true),
            // result caching changes what a "query execution" measures,
            // so it is strictly opt-in
            result_cache_enabled: std::sync::atomic::AtomicBool::new(false),
            retry: RwLock::new(RetryPolicy::default()),
            rotation: Mutex::new(HashMap::new()),
            tracing: std::sync::atomic::AtomicBool::new(true),
            meta: OnceLock::new(),
            meta_seen: std::sync::atomic::AtomicU64::new(0),
            tenancy: OnceLock::new(),
        }
    }

    /// Attach multi-tenant serving state. From here on, queries whose
    /// [`ExecOptions::tenant`] is set pass admission control and are
    /// scheduled under their tenant's priority class. Can only be
    /// attached once.
    pub fn attach_tenancy(&self, tenancy: Tenancy) {
        if self.tenancy.set(tenancy).is_err() {
            panic!("a coordinator can attach tenancy only once");
        }
    }

    /// The attached tenancy, if any.
    pub fn tenancy(&self) -> Option<&Tenancy> {
        self.tenancy.get()
    }

    /// Resolve a tenant name through the attached registry into the id
    /// [`ExecOptions::tenant`] wants. `Err` carries a typed
    /// [`PartixError::AdmissionRejected`] for unknown names, so network
    /// front-ends can forward it directly.
    pub fn resolve_tenant(
        &self,
        name: &str,
    ) -> Result<partix_tenant::TenantId, PartixError> {
        let Some(tenancy) = self.tenancy.get() else {
            return Err(PartixError::AdmissionRejected {
                tenant: name.to_string(),
                retry_after_ms: 0,
                reason: "server has no tenancy configured".to_string(),
            });
        };
        match tenancy.registry.by_name(name) {
            Some(tenant) => Ok(tenant.id),
            None => Err(PartixError::AdmissionRejected {
                tenant: name.to_string(),
                retry_after_ms: 0,
                reason: "unknown tenant".to_string(),
            }),
        }
    }

    /// The priority class this query's sub-queries are pooled under:
    /// the tenant's class when resolvable, else
    /// [`partix_tenant::PriorityClass::Standard`].
    fn class_for(&self, options: ExecOptions) -> partix_tenant::PriorityClass {
        options
            .tenant
            .and_then(|id| self.tenancy.get()?.registry.by_id(id))
            .map(|t| t.class)
            .unwrap_or_default()
    }

    /// Apply admission control for this query, returning the permit to
    /// hold for its whole execution. `Ok(None)` when the query is
    /// anonymous or no tenancy is attached. Records the per-tenant
    /// `queries` / `admitted` / `rejected` / `queued_ms` metrics.
    fn admit(
        &self,
        options: ExecOptions,
        query_bytes: usize,
    ) -> Result<Option<partix_tenant::Permit>, PartixError> {
        let (Some(id), Some(tenancy)) = (options.tenant, self.tenancy.get()) else {
            return Ok(None);
        };
        let Some(tenant) = tenancy.registry.by_id(id) else {
            return Err(PartixError::AdmissionRejected {
                tenant: id.to_string(),
                retry_after_ms: 0,
                reason: "unknown tenant id".to_string(),
            });
        };
        let reg = metrics::global();
        reg.counter(&format!("tenant.{}.queries", tenant.name)).inc();
        match tenancy.controller.admit(&tenant, query_bytes) {
            Ok(permit) => {
                reg.counter(&format!("tenant.{}.admitted", tenant.name)).inc();
                reg.histogram(&format!("tenant.{}.queued_ms", tenant.name))
                    .record_secs(permit.queued().as_secs_f64());
                Ok(Some(permit))
            }
            Err(rejection) => {
                reg.counter(&format!("tenant.{}.rejected", tenant.name)).inc();
                Err(PartixError::AdmissionRejected {
                    tenant: rejection.tenant,
                    retry_after_ms: rejection.retry_after_ms,
                    reason: rejection.reason,
                })
            }
        }
    }

    /// Observe one finished (admitted) query into the tenant's latency
    /// histogram — `tenant.<name>.latency` p99 is the isolation bench's
    /// headline number.
    fn record_tenant_latency(&self, permit: &Option<partix_tenant::Permit>, started: Instant) {
        if let Some(permit) = permit {
            metrics::global()
                .histogram(&format!("tenant.{}.latency", permit.tenant().name))
                .record_secs(started.elapsed().as_secs_f64());
        }
    }

    /// Attach this coordinator to a replicated-catalog meta service and
    /// pull its current snapshot. From here on the coordinator is
    /// *stateless*: catalog mutations route through the meta service
    /// (epoch bump), and every query entry point re-syncs when the epoch
    /// moved. Can only be attached once.
    pub fn attach_meta(&self, meta: Arc<crate::meta::MetaService>) {
        if self.meta.set(meta).is_err() {
            panic!("a coordinator can attach to a meta service only once");
        }
        self.sync_with_meta();
    }

    /// The attached meta service, if any.
    pub fn meta(&self) -> Option<&Arc<crate::meta::MetaService>> {
        self.meta.get()
    }

    /// The meta epoch this coordinator last synced at (0 = standalone or
    /// never synced). The failover differential asserts all coordinators
    /// converge to the same epoch after a rebalance.
    pub fn meta_epoch_seen(&self) -> u64 {
        self.meta_seen.load(std::sync::atomic::Ordering::Acquire)
    }

    /// A deep-enough copy of the current catalog (values are `Arc`s) for
    /// seeding a [`crate::meta::MetaService`] from a standalone
    /// coordinator's state.
    pub fn catalog_snapshot(&self) -> Catalog {
        self.catalog.read().clone()
    }

    /// When the meta epoch moved since the last sync, replace the local
    /// catalog with the meta snapshot and drop the result cache (the
    /// sub-query results may have been computed against retired
    /// placements or pre-write data). Cheap when nothing changed: one
    /// atomic load against the meta epoch.
    pub fn sync_with_meta(&self) {
        let Some(meta) = self.meta.get() else { return };
        let seen = self.meta_seen.load(std::sync::atomic::Ordering::Acquire);
        if meta.epoch() == seen {
            return;
        }
        let (epoch, catalog) = meta.snapshot();
        *self.catalog.write() = catalog;
        self.result_cache.clear();
        metrics::global().counter("partix.meta.syncs").inc();
        self.meta_seen.store(epoch, std::sync::atomic::Ordering::Release);
    }

    /// Bump the meta epoch after a data write so sibling coordinators
    /// invalidate, then follow it ourselves.
    pub(crate) fn notify_meta_of_write(&self) {
        if let Some(meta) = self.meta.get() {
            meta.bump();
            self.sync_with_meta();
        }
    }

    /// Enable/disable per-query span collection (on by default; see
    /// [`QueryReport::spans`]). Stage totals keep being measured either
    /// way — only the span list is gated.
    pub fn set_tracing_enabled(&self, enabled: bool) {
        self.tracing.store(enabled, std::sync::atomic::Ordering::Release);
    }

    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(std::sync::atomic::Ordering::Acquire)
    }

    fn new_trace(&self) -> Trace {
        if self.tracing_enabled() {
            Trace::new()
        } else {
            Trace::disabled()
        }
    }

    /// Install a dispatch [`RetryPolicy`] (applies to queries started
    /// after the call).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.write() = policy;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.read()
    }

    /// Enable/disable data localization (fragment pruning). With it off,
    /// every fragment receives a sub-query — the ablation quantifying the
    /// paper's localization claim ("sub-queries are issued only to the
    /// corresponding fragments").
    pub fn set_localization_enabled(&self, enabled: bool) {
        self.localization
            .store(enabled, std::sync::atomic::Ordering::Release);
    }

    /// Whether data localization is enabled.
    pub fn localization_enabled(&self) -> bool {
        self.localization.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Select threaded or simulated dispatch (see [`DispatchMode`]).
    pub fn set_dispatch(&mut self, dispatch: DispatchMode) {
        self.dispatch = dispatch;
    }

    pub fn dispatch_mode(&self) -> DispatchMode {
        self.dispatch
    }

    /// Size the [`DispatchMode::Pool`] worker pools. Must be called
    /// before the first Pool-mode dispatch: the pool is built lazily,
    /// once, and keeps the configuration it was built with.
    pub fn set_pool_config(&mut self, config: PoolConfig) {
        self.pool_config = config;
    }

    pub fn pool_config(&self) -> PoolConfig {
        self.pool_config
    }

    /// Enable/disable the parsed-plan cache consulted by
    /// [`PartiX::execute`] (on by default — parsing is outside the
    /// reported query timing, so caching it never skews the figures).
    pub fn set_plan_cache_enabled(&self, enabled: bool) {
        self.plan_cache_enabled
            .store(enabled, std::sync::atomic::Ordering::Release);
    }

    pub fn plan_cache_enabled(&self) -> bool {
        self.plan_cache_enabled
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Enable/disable the sub-query result cache (off by default: a hit
    /// bypasses the node entirely, which is exactly what a throughput
    /// workload wants and exactly what a paper-figure measurement does
    /// not). Entries are invalidated by the per-collection write epochs
    /// ([`Node::collection_epoch`]) baked into every cache key.
    pub fn set_result_cache_enabled(&self, enabled: bool) {
        self.result_cache_enabled
            .store(enabled, std::sync::atomic::Ordering::Release);
    }

    pub fn result_cache_enabled(&self) -> bool {
        self.result_cache_enabled
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Cumulative hit/miss counters across both coordinator caches.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            plan_hits: self.plan_cache.hits(),
            plan_misses: self.plan_cache.misses(),
            result_hits: self.result_cache.hits(),
            result_misses: self.result_cache.misses(),
        }
    }

    /// Drop every cached plan and result (counters are kept).
    pub fn clear_caches(&self) {
        self.plan_cache.clear();
        self.result_cache.clear();
    }

    /// Recompute the per-node placement gauges in the global metrics
    /// registry: `node.N.fragments` (distinct distributed fragment
    /// placements mapped to node N by the catalog) and
    /// `node.N.resident_bytes` (approximate bytes resident on the node
    /// across all collections its active driver holds). Called after
    /// every publish and rebalance move; the workload advisor and
    /// `partix stats` read them.
    pub fn refresh_node_gauges(&self) {
        let mut frag_counts = vec![0i64; self.cluster.len()];
        {
            let catalog = self.catalog.read();
            for coll in catalog.distributed_collections() {
                if let Some(dist) = catalog.distribution(&coll) {
                    for frag in &dist.design.fragments {
                        for node_id in dist.nodes_of(&frag.name) {
                            if let Some(count) = frag_counts.get_mut(node_id) {
                                *count += 1;
                            }
                        }
                    }
                }
            }
        }
        let registry = metrics::global();
        for node in self.cluster.nodes() {
            let driver = node.active_driver();
            let bytes: usize = driver
                .collections()
                .iter()
                .map(|c| {
                    driver
                        .fetch_collection(c)
                        .iter()
                        .map(|d| d.approx_size())
                        .sum::<usize>()
                })
                .sum();
            registry
                .gauge(&format!("node.{}.fragments", node.id))
                .set(frag_counts[node.id]);
            registry
                .gauge(&format!("node.{}.resident_bytes", node.id))
                .set(bytes as i64);
        }
    }

    fn pool(&self) -> &WorkerPool {
        self.pool
            .get_or_init(|| WorkerPool::new(&self.cluster, self.pool_config))
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Change the network model (e.g. [`NetworkModel::instantaneous`] to
    /// report times "without transmission" as the paper's -NT series).
    pub fn set_network(&mut self, network: NetworkModel) {
        self.network = network;
    }

    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.catalog.read()
    }

    pub fn register_schema(&self, schema: Arc<partix_schema::Schema>) {
        if let Some(meta) = self.meta.get() {
            meta.register_schema(schema);
            self.sync_with_meta();
        } else {
            self.catalog.write().register_schema(schema);
        }
    }

    /// Register (or atomically replace) a collection's distribution.
    /// Placements are validated against the design *and* the cluster
    /// size: an unknown fragment name or out-of-range node index is a
    /// typed [`PartixError::InvalidDistribution`] instead of a silent
    /// mis-dispatch. Queries in flight keep the `Arc` they planned with
    /// and finish against the old placements.
    pub fn register_distribution(&self, dist: Distribution) -> Result<(), PartixError> {
        if let Some(meta) = self.meta.get() {
            meta.register_distribution_on(dist, self.cluster.len())
                .map_err(PartixError::InvalidDistribution)?;
            self.sync_with_meta();
            Ok(())
        } else {
            self.catalog
                .write()
                .register_distribution_on(dist, self.cluster.len())
                .map_err(PartixError::InvalidDistribution)
        }
    }

    /// The distribution the coordinator would plan `query` against right
    /// now (the first of the query's collections with one registered).
    /// Holding the returned `Arc` pins the allocation, so a later
    /// [`Arc::ptr_eq`] against a fresh lookup reliably detects a
    /// concurrent catalog swap (no ABA through address reuse).
    fn target_distribution(&self, query: &Query) -> Option<Arc<Distribution>> {
        let catalog = self.catalog.read();
        query
            .collections()
            .into_iter()
            .find_map(|c| catalog.distribution(&c).cloned())
    }

    /// Run the pipeline, replanning when a live rebalance swapped the
    /// collection's distribution mid-flight. The window that matters: a
    /// migration retires a source replica (catalog swap) and then drops
    /// the fragment's collection from the source node; a query planned
    /// against the old placements could reach the source *after* the
    /// drop and read an empty fragment. The swap is detectable — every
    /// registration installs a fresh `Arc` — so re-executing against the
    /// new placements restores correctness. Bounded: after
    /// `MAX_REPLANS` unstable rounds the last answer is returned (the
    /// catalog would have to be swapped faster than queries run).
    fn execute_replanned(
        &self,
        query: &Query,
        options: ExecOptions,
        trace: &Trace,
        parse_s: f64,
    ) -> Result<DistributedResult, PartixError> {
        const MAX_REPLANS: usize = 3;
        let mut last = None;
        for _ in 0..=MAX_REPLANS {
            let before = self.target_distribution(query);
            let result = self.execute_traced(query, options, trace, parse_s, None)?;
            let after = self.target_distribution(query);
            let stable = match (&before, &after) {
                (None, None) => true,
                (Some(b), Some(a)) => Arc::ptr_eq(b, a),
                _ => false,
            };
            if stable {
                return Ok(result);
            }
            metrics::global().counter("partix.replans").inc();
            last = Some(result);
        }
        Ok(last.expect("at least one execution"))
    }

    /// Execute an XQuery over the distributed repository. Repeated query
    /// texts reuse their parsed plan (see [`PartiX::set_plan_cache_enabled`]).
    pub fn execute(&self, text: &str) -> Result<DistributedResult, PartixError> {
        self.execute_with(text, ExecOptions::default())
    }

    /// [`PartiX::execute`] with explicit [`ExecOptions`].
    pub fn execute_with(
        &self,
        text: &str,
        options: ExecOptions,
    ) -> Result<DistributedResult, PartixError> {
        self.sync_with_meta();
        // Admission gates the query before any planning work; the permit
        // is the tenant's concurrency slot, held until return.
        let permit = self.admit(options, text.len())?;
        let started = Instant::now();
        let trace = self.new_trace();
        let parse_start = Instant::now();
        let result = count_failure((|| {
            if self.plan_cache_enabled() {
                let (query, hit) = self
                    .plan_cache
                    .get_or_parse(text)
                    .map_err(PartixError::Parse)?;
                let parse_s = parse_start.elapsed().as_secs_f64();
                trace.record("parse", 0, parse_start);
                let mut result = self.execute_replanned(&query, options, &trace, parse_s)?;
                result.report.plan_cache_hit = hit;
                Ok(result)
            } else {
                let query = parse_query(text).map_err(PartixError::Parse)?;
                let parse_s = parse_start.elapsed().as_secs_f64();
                trace.record("parse", 0, parse_start);
                self.execute_replanned(&query, options, &trace, parse_s)
            }
        })());
        self.record_tenant_latency(&permit, started);
        result
    }

    /// Execute the centralized baseline: the query as-is against one
    /// node's database (which must hold the unfragmented collection).
    pub fn execute_centralized(
        &self,
        node: usize,
        text: &str,
    ) -> Result<QueryOutput, PartixError> {
        let node = self
            .cluster
            .node(node)
            .ok_or_else(|| PartixError::Internal(format!("node {node} missing")))?;
        node.db.execute(text).map_err(|e| PartixError::SubQuery {
            node: node.id,
            fragment: "<centralized>".into(),
            error: e.to_string(),
        })
    }

    /// Execute a parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<DistributedResult, PartixError> {
        self.execute_query_with(query, ExecOptions::default())
    }

    /// [`PartiX::execute_query`] with explicit [`ExecOptions`].
    pub fn execute_query_with(
        &self,
        query: &Query,
        options: ExecOptions,
    ) -> Result<DistributedResult, PartixError> {
        self.sync_with_meta();
        let permit = self.admit(options, 0)?;
        let started = Instant::now();
        let trace = self.new_trace();
        // pre-parsed entry: there was no parse stage to time
        let result = count_failure(self.execute_replanned(query, options, &trace, 0.0));
        self.record_tenant_latency(&permit, started);
        result
    }

    /// Stream an answer: `emit` receives consecutive slices of the result
    /// sequence — in exactly the order [`PartiX::execute`] would return
    /// them — as sub-queries complete, instead of one buffered answer at
    /// the end. Returning `false` from `emit` cancels the stream
    /// (in-flight sub-queries finish; their output is discarded).
    ///
    /// Plain concatenations stream site-by-site. Compositions that need
    /// every partial before the first item exists (aggregates,
    /// reconstruction joins, centralized passthrough) buffer internally
    /// and emit the finished answer as one slice, so every caller sees
    /// one uniform contract. The returned [`DistributedResult`] carries
    /// the report only — its `items` have already been emitted.
    ///
    /// Streams never replan: a rebalance swapping the collection's
    /// distribution mid-stream surfaces as
    /// [`PartixError::CatalogSwapped`] (discard the emitted prefix and
    /// retry), because silently re-executing a stream would duplicate
    /// its prefix.
    pub fn execute_streamed_with(
        &self,
        text: &str,
        options: ExecOptions,
        emit: &mut dyn FnMut(Sequence) -> bool,
    ) -> Result<DistributedResult, PartixError> {
        self.sync_with_meta();
        let permit = self.admit(options, text.len())?;
        let started = Instant::now();
        let trace = self.new_trace();
        let parse_start = Instant::now();
        let result = count_failure((|| {
            let (query, hit) = if self.plan_cache_enabled() {
                self.plan_cache
                    .get_or_parse(text)
                    .map_err(PartixError::Parse)?
            } else {
                (
                    Arc::new(parse_query(text).map_err(PartixError::Parse)?),
                    false,
                )
            };
            let parse_s = parse_start.elapsed().as_secs_f64();
            trace.record("parse", 0, parse_start);
            let before = self.target_distribution(&query);
            let mut result =
                self.execute_traced(&query, options, &trace, parse_s, Some(&mut *emit))?;
            let after = self.target_distribution(&query);
            let stable = match (&before, &after) {
                (None, None) => true,
                (Some(b), Some(a)) => Arc::ptr_eq(b, a),
                _ => false,
            };
            if !stable {
                metrics::global().counter("partix.stream.catalog_swaps").inc();
                return Err(PartixError::CatalogSwapped);
            }
            result.report.plan_cache_hit = hit;
            // buffered fallbacks return the whole answer: deliver it as
            // the stream's single slice
            let items = std::mem::take(&mut result.items);
            if !items.is_empty() && !emit(items) {
                return Err(stream_cancelled());
            }
            Ok(result)
        })());
        self.record_tenant_latency(&permit, started);
        result
    }

    /// The decomposition/dispatch/composition pipeline, with stage
    /// attribution recorded into `trace` and the report's
    /// [`StageBreakdown`].
    fn execute_traced(
        &self,
        query: &Query,
        options: ExecOptions,
        trace: &Trace,
        parse_s: f64,
        mut streamer: Option<&mut dyn FnMut(Sequence) -> bool>,
    ) -> Result<DistributedResult, PartixError> {
        let query_start = Instant::now();
        let localize_start = Instant::now();
        let catalog = self.catalog.read();
        // the first collection with a registered distribution drives
        // decomposition
        let target = query
            .collections()
            .into_iter()
            .find(|c| catalog.distribution(c).is_some());
        let Some(collection) = target else {
            drop(catalog);
            return self.passthrough(query, trace, parse_s);
        };
        // refcount bump, not a deep copy of the design + placements
        let dist = Arc::clone(catalog.distribution(&collection).expect("checked above"));
        drop(catalog);

        let analysis = pushdown::analyze(query);
        let relevant = if self.localization_enabled() {
            localize::relevant_fragments(&dist.design, analysis.as_ref())
        } else {
            (0..dist.design.fragments.len()).collect()
        };
        let pruned = dist.design.fragments.len() - relevant.len();

        // build one sub-query per relevant fragment
        let mut tasks: Vec<SubQuery> = Vec::with_capacity(relevant.len());
        let mut skipped: Vec<SkippedFragment> = Vec::new();
        let mut needs_reconstruction = false;
        for &idx in &relevant {
            let frag = &dist.design.fragments[idx];
            let node = match self.pick_replica(&dist, &frag.name) {
                Ok(node) => node,
                Err(err) if options.allow_partial => {
                    // every replica is down already at planning time:
                    // degraded mode drops the fragment instead of failing
                    skipped.push(SkippedFragment {
                        fragment: frag.name.clone(),
                        error: err.to_string(),
                    });
                    continue;
                }
                Err(err) => return Err(err),
            };
            match build_subquery(query, &collection, frag, analysis.as_ref()) {
                Some(sub) => tasks.push(SubQuery {
                    node,
                    fragment: frag.name.clone(),
                    replicas: dist.nodes_of(&frag.name),
                    query: Arc::new(sub),
                }),
                None => {
                    needs_reconstruction = true;
                    break;
                }
            }
        }
        let localize_s = localize_start.elapsed().as_secs_f64();
        trace.record("localize", 0, localize_start);
        if needs_reconstruction {
            // all-or-nothing: a reconstruction missing a fragment would
            // produce wrong documents, not a partial answer
            return self.reconstruct_and_evaluate(
                query,
                &collection,
                &dist,
                pruned,
                trace,
                parse_s,
                localize_s,
            );
        }

        let composition = compose::classify(query);
        // avg decomposes into (sum, count) per site
        let avg_mode = composition == Composition::Avg;

        // serve sub-queries from the result cache where possible; only
        // the remainder is dispatched to nodes
        let dispatch_start = Instant::now();
        let use_cache = self.result_cache_enabled();
        let mut slots: Vec<Option<SiteSlot>> = (0..tasks.len()).map(|_| None).collect();
        // pending tasks carry the pre-dispatch write epoch of *every*
        // replica: a failover may land on any of them, and the insert key
        // must use an epoch read before execution (a concurrent write
        // then leaves the entry under a stale key instead of poisoning
        // the current one)
        let mut pending: Vec<(usize, Vec<(usize, u64)>)> = Vec::new();
        let mut cache_hits = 0usize;
        for (i, task) in tasks.iter().enumerate() {
            let mut epochs = Vec::new();
            if use_cache {
                epochs = task
                    .replicas
                    .iter()
                    .map(|&id| {
                        let epoch = self
                            .cluster
                            .node(id)
                            .map(|n| n.collection_epoch(&task.fragment))
                            .unwrap_or(0);
                        (id, epoch)
                    })
                    .collect();
                let epoch = epochs
                    .iter()
                    .find(|&&(id, _)| id == task.node)
                    .map(|&(_, e)| e)
                    .unwrap_or(0);
                let key =
                    ResultKey::new(task.node, &task.fragment, epoch, avg_mode, &task.query);
                if let Some(hit) = self.result_cache.get(&key) {
                    cache_hits += 1;
                    slots[i] = Some(SiteSlot {
                        run: SiteRun {
                            output: SiteOutput {
                                items: hit.items,
                                elapsed: 0.0,
                                result_bytes: hit.result_bytes,
                                docs_scanned: hit.docs_scanned,
                                index_used: hit.index_used,
                                morsels: hit.morsels,
                                ..SiteOutput::empty()
                            },
                            node: task.node,
                            retries: 0,
                            failovers: 0,
                            timeouts: 0,
                            // cache hits never dispatch: no stage entry
                            stage: SubQueryStage::default(),
                        },
                        cached: true,
                    });
                    continue;
                }
            }
            pending.push((i, epochs));
        }

        let mut report = QueryReport {
            fragments_pruned: pruned,
            result_cache_hits: cache_hits,
            result_cache_misses: tasks.len() - cache_hits,
            skipped,
            ..Default::default()
        };

        let dispatched_any = !pending.is_empty();
        let mut sub_stages: Vec<SubQueryStage> = Vec::new();
        // inline streaming applies to plain concatenation only: aggregate
        // compositions need every partial before a single item exists, and
        // simulated dispatch is sequential anyway (the buffered answer is
        // emitted as one slice by the streaming entry point)
        let stream_inline = streamer.is_some()
            && composition == Composition::Concat
            && !matches!(self.dispatch, DispatchMode::Simulated);
        if dispatched_any && stream_inline {
            let emit = streamer.take().expect("stream_inline implies a streamer");
            let mut resolved: Vec<bool> = slots.iter().map(Option::is_some).collect();
            let mut cursor = 0usize;
            let mut cancelled = false;
            let mut fatal: Option<PartixError> = None;
            // the cache-hit prefix is ready before any sub-query lands
            emit_ready_prefix(&mut slots, &resolved, &mut cursor, &mut cancelled, &mut *emit);
            std::thread::scope(|scope| {
                let (tx, rx) = crossbeam::channel::unbounded();
                for (lane, (i, epochs)) in pending.into_iter().enumerate() {
                    let tx = tx.clone();
                    let task = &tasks[i];
                    scope.spawn(move || {
                        let run = self.run_subquery_guarded(
                            task,
                            avg_mode,
                            self.class_for(options),
                            trace,
                            lane + 1,
                        );
                        let _ = tx.send((i, epochs, run));
                    });
                }
                drop(tx);
                // completion order: a fast site's slice goes out the moment
                // every earlier slice has, however slow later sites are
                while let Ok((i, epochs, run)) = rx.recv() {
                    let absorbed = self.absorb_run(
                        i,
                        &epochs,
                        run,
                        &tasks[i],
                        avg_mode,
                        use_cache,
                        options.allow_partial,
                        &mut slots,
                        &mut sub_stages,
                        &mut report,
                    );
                    if let Err(err) = absorbed {
                        // dropping rx fails the remaining sends harmlessly;
                        // the scope still joins every worker
                        fatal = Some(err);
                        break;
                    }
                    resolved[i] = true;
                    if !cancelled {
                        emit_ready_prefix(
                            &mut slots,
                            &resolved,
                            &mut cursor,
                            &mut cancelled,
                            &mut *emit,
                        );
                    }
                }
            });
            if let Some(err) = fatal {
                return Err(err);
            }
            if cancelled {
                return Err(stream_cancelled());
            }
        } else if dispatched_any {
            let todo: Vec<SubQuery> =
                pending.iter().map(|&(i, _)| tasks[i].clone()).collect();
            let runs = self.dispatch(&todo, avg_mode, self.class_for(options), trace);
            for ((i, epochs), run) in pending.into_iter().zip(runs) {
                self.absorb_run(
                    i,
                    &epochs,
                    run,
                    &tasks[i],
                    avg_mode,
                    use_cache,
                    options.allow_partial,
                    &mut slots,
                    &mut sub_stages,
                    &mut report,
                )?;
            }
        }
        report.partial = !report.skipped.is_empty();
        let dispatch_s = dispatch_start.elapsed().as_secs_f64();
        trace.record("dispatch", 0, dispatch_start);

        let mut total_bytes = 0usize;
        // modeled bytes only: sites served by a wire-counting driver
        // (partix-net) already put their genuine byte counts into
        // `net.bytes_shipped` as the frames moved
        let mut metered_bytes = 0usize;
        let mut partials: Vec<Sequence> = Vec::with_capacity(tasks.len());
        for (task, slot) in tasks.iter().zip(slots) {
            let Some(SiteSlot { run, cached }) = slot else {
                continue; // fragment dropped in degraded mode
            };
            report.sites.push(SiteReport {
                node: run.node,
                fragment: task.fragment.clone(),
                elapsed: run.output.elapsed,
                result_bytes: run.output.result_bytes,
                docs_scanned: run.output.docs_scanned,
                index_used: run.output.index_used,
                morsels: run.output.morsels,
                from_cache: cached,
                retries: run.retries,
                failovers: run.failovers,
                timeouts: run.timeouts,
            });
            report.retries += run.retries;
            report.failovers += run.failovers;
            report.timeouts += run.timeouts;
            report.parallel_elapsed = report.parallel_elapsed.max(run.output.elapsed);
            report.serial_elapsed += run.output.elapsed;
            if !cached {
                // cached answers never cross the wire again
                total_bytes += run.output.result_bytes;
                if !run.output.wire_counted {
                    metered_bytes += run.output.result_bytes;
                }
            }
            // move the partial sequence out instead of deep-cloning it
            partials.push(run.output.items);
        }

        let compose_start = Instant::now();
        let items = compose::combine(composition, partials);
        report.composition = compose_start.elapsed().as_secs_f64();
        trace.record("compose", 0, compose_start);

        // one overlapped request/response round trip; partial results
        // serialize on the coordinator's link — charged only when at
        // least one sub-query actually reached a node
        if dispatched_any {
            report.transmission = 2.0 * self.network.latency_secs
                + total_bytes as f64 / self.network.bandwidth_bytes_per_sec;
        }
        report.stages = StageBreakdown {
            parse_s,
            localize_s,
            dispatch_s,
            compose_s: report.composition,
            subqueries: sub_stages,
        };
        report.spans = trace.finish();
        record_query_metrics(&report, metered_bytes, parse_s + query_start.elapsed().as_secs_f64());
        Ok(DistributedResult { items, report })
    }

    /// Fold one sub-query outcome into the query's accounting: cache the
    /// answer under the replica that actually produced it (it may not be
    /// the planner's pick after a failover), fill the site slot, or — in
    /// degraded mode — record the skip. A hard failure becomes the
    /// query's error. Shared by barrier dispatch (task order) and inline
    /// streaming (completion order).
    #[allow(clippy::too_many_arguments)]
    fn absorb_run(
        &self,
        i: usize,
        epochs: &[(usize, u64)],
        run: Result<SiteRun, RunFailure>,
        task: &SubQuery,
        avg_mode: bool,
        use_cache: bool,
        allow_partial: bool,
        slots: &mut [Option<SiteSlot>],
        sub_stages: &mut Vec<SubQueryStage>,
        report: &mut QueryReport,
    ) -> Result<(), PartixError> {
        match run {
            Ok(mut run) => {
                sub_stages.push(std::mem::take(&mut run.stage));
                if use_cache {
                    let epoch = epochs
                        .iter()
                        .find(|&&(id, _)| id == run.node)
                        .map(|&(_, e)| e)
                        .unwrap_or(0);
                    let key =
                        ResultKey::new(run.node, &task.fragment, epoch, avg_mode, &task.query);
                    self.result_cache.insert(
                        key,
                        CachedSite {
                            items: run.output.items.clone(),
                            result_bytes: run.output.result_bytes,
                            docs_scanned: run.output.docs_scanned,
                            index_used: run.output.index_used,
                            morsels: run.output.morsels,
                        },
                    );
                }
                slots[i] = Some(SiteSlot { run, cached: false });
                Ok(())
            }
            Err(failure) if allow_partial => {
                sub_stages.push(*failure.stage);
                report.retries += failure.retries;
                report.failovers += failure.failovers;
                report.timeouts += failure.timeouts;
                report.skipped.push(SkippedFragment {
                    fragment: task.fragment.clone(),
                    error: failure.error.to_string(),
                });
                Ok(())
            }
            Err(failure) => Err(failure.error),
        }
    }

    /// Choose an *available* replica node of a fragment, rotating
    /// round-robin across the replicas so repeated queries spread their
    /// load instead of hammering the first placement. Replicas inside a
    /// suspect cooldown ([`Node::mark_suspect`]) are used only when no
    /// clean replica is up; errors if every replica is down (a fragment
    /// replicated on several nodes survives node failures transparently).
    fn pick_replica(
        &self,
        dist: &Distribution,
        fragment: &str,
    ) -> Result<usize, PartixError> {
        let nodes = dist.nodes_of(fragment);
        if nodes.is_empty() {
            return Err(PartixError::Internal(format!("{fragment} unplaced")));
        }
        let start = {
            let mut rotation = self.rotation.lock();
            let counter = rotation.entry(fragment.to_owned()).or_insert(0);
            let start = *counter;
            *counter = counter.wrapping_add(1);
            start
        };
        // wrapping: `start` comes from an ever-incrementing counter that
        // eventually wraps to near usize::MAX, where `start + k` would
        // overflow-panic in debug builds on long runs
        let at = |k: usize| nodes[start.wrapping_add(k) % nodes.len()];
        for k in 0..nodes.len() {
            let id = at(k);
            if self
                .cluster
                .node(id)
                .is_some_and(|n| n.is_available() && !n.is_suspect())
            {
                return Ok(id);
            }
        }
        // every live replica is suspect: pick one anyway (last resort)
        for k in 0..nodes.len() {
            let id = at(k);
            if self.cluster.node(id).is_some_and(|n| n.is_available()) {
                return Ok(id);
            }
        }
        Err(PartixError::NodeUnavailable {
            node: nodes[0],
            fragment: fragment.to_owned(),
        })
    }

    /// Run a query that references no distributed collection directly on
    /// node 0 (centralized passthrough).
    fn passthrough(
        &self,
        query: &Query,
        trace: &Trace,
        parse_s: f64,
    ) -> Result<DistributedResult, PartixError> {
        let node = self.cluster.node(0).expect("cluster non-empty");
        let dispatch_start = Instant::now();
        // the driver runs inline here — a panicking driver must surface
        // as a typed error, not unwind into the caller
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_on_node(node, query, false)
        }))
        .unwrap_or_else(|payload| Err(DispatchError::Failed(panic_message(payload))));
        let dispatch_s = dispatch_start.elapsed().as_secs_f64();
        trace.record("exec:<passthrough>@n0", 1, dispatch_start);
        trace.record("dispatch", 0, dispatch_start);
        let out = out.map_err(|e| match e {
            DispatchError::Down | DispatchError::Timeout => PartixError::NodeUnavailable {
                node: 0,
                fragment: "<passthrough>".into(),
            },
            DispatchError::Failed(msg) => PartixError::SubQuery {
                node: 0,
                fragment: "<passthrough>".into(),
                error: msg,
            },
        })?;
        let mut report = QueryReport {
            sites: vec![SiteReport {
                node: 0,
                fragment: "<passthrough>".into(),
                elapsed: out.elapsed,
                result_bytes: out.result_bytes,
                docs_scanned: out.docs_scanned,
                index_used: out.index_used,
                morsels: out.morsels,
                from_cache: false,
                retries: 0,
                failovers: 0,
                timeouts: 0,
            }],
            parallel_elapsed: out.elapsed,
            serial_elapsed: out.elapsed,
            transmission: self.network.transmission_time(out.result_bytes),
            ..Default::default()
        };
        report.stages = StageBreakdown {
            parse_s,
            dispatch_s,
            subqueries: vec![SubQueryStage {
                fragment: "<passthrough>".into(),
                node: 0,
                attempts: 1,
                execute_s: dispatch_s,
                send_s: out.send_s,
                recv_s: out.recv_s,
                ..Default::default()
            }],
            ..Default::default()
        };
        report.spans = trace.finish();
        let metered = if out.wire_counted { 0 } else { out.result_bytes };
        record_query_metrics(&report, metered, parse_s + dispatch_s);
        Ok(DistributedResult { items: out.items, report })
    }

    /// Fan the sub-queries out to their nodes in parallel and gather the
    /// outcomes in task order. Each task runs its own retry/failover loop
    /// ([`PartiX::run_subquery`]); with threaded or pooled dispatch the
    /// loops themselves run concurrently on per-task coordinator threads
    /// (bounded by the fragment count).
    fn dispatch(
        &self,
        tasks: &[SubQuery],
        avg_mode: bool,
        class: partix_tenant::PriorityClass,
        trace: &Trace,
    ) -> Vec<Result<SiteRun, RunFailure>> {
        match self.dispatch {
            DispatchMode::Simulated => tasks
                .iter()
                .enumerate()
                .map(|(i, task)| self.run_subquery_guarded(task, avg_mode, class, trace, i + 1))
                .collect(),
            DispatchMode::Threads | DispatchMode::Pool => std::thread::scope(|scope| {
                let handles: Vec<_> = tasks
                    .iter()
                    .enumerate()
                    .map(|(i, task)| {
                        let h = scope.spawn(move || {
                            self.run_subquery_guarded(task, avg_mode, class, trace, i + 1)
                        });
                        (task, h)
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(task, h)| {
                        // the guard already catches panics inside the
                        // coordinator task; a join error would re-raise
                        // the panic into *every* concurrent query, so
                        // fold it into a per-task failure instead
                        h.join().unwrap_or_else(|payload| Err(panic_failure(task, payload)))
                    })
                    .collect()
            }),
        }
    }

    /// [`PartiX::run_subquery`] with a panic firewall: a panicking
    /// driver (or a bug in the retry loop itself) becomes this one
    /// task's [`RunFailure`], never a process-wide unwind.
    fn run_subquery_guarded(
        &self,
        task: &SubQuery,
        avg_mode: bool,
        class: partix_tenant::PriorityClass,
        trace: &Trace,
        lane: usize,
    ) -> Result<SiteRun, RunFailure> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.run_subquery(task, avg_mode, class, trace, lane)
        }))
        .unwrap_or_else(|payload| Err(panic_failure(task, payload)))
    }

    /// Run one sub-query to completion under the [`RetryPolicy`]: up to
    /// `max_attempts` tries, each against the best replica *currently*
    /// live and not suspect, walking the replica ring on every failure
    /// (mid-flight failover). Crashes and deadline expiries mark the
    /// node suspect; a successful answer clears the flag.
    fn run_subquery(
        &self,
        task: &SubQuery,
        avg_mode: bool,
        class: partix_tenant::PriorityClass,
        trace: &Trace,
        lane: usize,
    ) -> Result<SiteRun, RunFailure> {
        let policy = self.retry_policy();
        // walk the replica ring starting at the planner's pick
        let ring = &task.replicas;
        let start = ring.iter().position(|&id| id == task.node).unwrap_or(0);
        let mut retries = 0usize;
        let mut failovers = 0usize;
        let mut timeouts = 0usize;
        let mut last_node: Option<usize> = None;
        let mut last_error: Option<DispatchError> = None;
        let mut stage = SubQueryStage {
            fragment: task.fragment.clone(),
            node: task.node,
            ..Default::default()
        };
        for attempt in 0..policy.max_attempts.max(1) {
            // each attempt starts one step further around the replica
            // ring, moving past whichever replica just failed
            let at = |k: usize| ring[start.wrapping_add(attempt).wrapping_add(k) % ring.len()];
            let pick = (0..ring.len())
                .map(at)
                .find(|&id| {
                    self.cluster
                        .node(id)
                        .is_some_and(|n| n.is_available() && !n.is_suspect())
                })
                .or_else(|| {
                    (0..ring.len()).map(at).find(|&id| {
                        self.cluster.node(id).is_some_and(|n| n.is_available())
                    })
                });
            let Some(node_id) = pick else {
                break; // every replica is down right now
            };
            if attempt > 0 {
                retries += 1;
                if last_node != Some(node_id) {
                    failovers += 1;
                }
                let backoff_start = Instant::now();
                std::thread::sleep(policy.backoff(attempt - 1));
                stage.backoff_s += backoff_start.elapsed().as_secs_f64();
                trace.record(&format!("backoff:{}", task.fragment), lane, backoff_start);
            }
            last_node = Some(node_id);
            stage.attempts += 1;
            let node = Arc::clone(self.cluster.node(node_id).expect("picked from cluster"));
            let exec_start = Instant::now();
            let outcome = self.attempt(&node, &task.query, avg_mode, class, policy.timeout);
            stage.execute_s += exec_start.elapsed().as_secs_f64();
            trace.record(
                &format!("exec:{}#{attempt}@n{node_id}", task.fragment),
                lane,
                exec_start,
            );
            match outcome {
                Ok((output, queue_wait)) => {
                    stage.queue_wait_s += queue_wait.as_secs_f64();
                    stage.send_s += output.send_s;
                    stage.recv_s += output.recv_s;
                    if output.send_s > 0.0 || output.recv_s > 0.0 {
                        // wire spans live inside the exec window; their
                        // durations were clocked on the worker thread
                        trace.record_window(
                            &format!("send:{}", task.fragment),
                            lane,
                            exec_start,
                            output.send_s,
                        );
                        trace.record_window(
                            &format!("recv:{}", task.fragment),
                            lane,
                            exec_start,
                            output.recv_s,
                        );
                    }
                    node.clear_suspect();
                    stage.node = node_id;
                    stage.retries = retries;
                    stage.failovers = failovers;
                    stage.timeouts = timeouts;
                    let reg = metrics::global();
                    reg.histogram("subquery.execute").record_secs(output.elapsed);
                    reg.histogram("subquery.queue_wait").record_secs(queue_wait.as_secs_f64());
                    return Ok(SiteRun {
                        output,
                        node: node_id,
                        retries,
                        failovers,
                        timeouts,
                        stage,
                    });
                }
                Err(DispatchError::Timeout) => {
                    timeouts += 1;
                    node.mark_suspect(policy.suspect_cooldown);
                    last_error = Some(DispatchError::Timeout);
                }
                Err(DispatchError::Down) => {
                    node.mark_suspect(policy.suspect_cooldown);
                    last_error = Some(DispatchError::Down);
                }
                Err(DispatchError::Failed(msg)) => {
                    // the DBMS processed and rejected the attempt: the
                    // node is healthy, but another replica may still
                    // answer (e.g. a fault injected on this one only)
                    last_error = Some(DispatchError::Failed(msg));
                }
            }
        }
        let node = last_node.unwrap_or(task.node);
        stage.node = node;
        stage.retries = retries;
        stage.failovers = failovers;
        stage.timeouts = timeouts;
        let error = match last_error {
            Some(DispatchError::Failed(msg)) => PartixError::SubQuery {
                node,
                fragment: task.fragment.clone(),
                error: msg,
            },
            _ => PartixError::NodeUnavailable { node, fragment: task.fragment.clone() },
        };
        Err(RunFailure { error, retries, failovers, timeouts, stage: Box::new(stage) })
    }

    /// One dispatch attempt against one node, honouring the per-attempt
    /// deadline. Threaded/pooled attempts run on another thread and are
    /// abandoned on expiry (a late answer is discarded — the channel's
    /// receiver is gone); simulated attempts run inline, so the deadline
    /// is checked after the fact.
    /// On success the attempt's answer is paired with the time it spent
    /// queued before a worker picked it up (zero outside
    /// [`DispatchMode::Pool`]).
    fn attempt(
        &self,
        node: &Arc<Node>,
        query: &Arc<Query>,
        avg_mode: bool,
        class: partix_tenant::PriorityClass,
        timeout: Option<Duration>,
    ) -> Result<(SiteOutput, Duration), DispatchError> {
        let inline = |node: &Node| {
            let begun = Instant::now();
            let result = run_on_node(node, query, avg_mode);
            match timeout {
                Some(limit) if begun.elapsed() > limit => Err(DispatchError::Timeout),
                _ => result.map(|out| (out, Duration::ZERO)),
            }
        };
        match self.dispatch {
            DispatchMode::Simulated => inline(node),
            DispatchMode::Threads => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                let node = Arc::clone(node);
                let query = Arc::clone(query);
                std::thread::spawn(move || {
                    let _ = tx.send((Duration::ZERO, run_on_node(&node, &query, avg_mode)));
                });
                recv_attempt(&rx, timeout)
            }
            DispatchMode::Pool => {
                let (tx, rx) = crossbeam::channel::bounded(1);
                let job_node = Arc::clone(node);
                let query = Arc::clone(query);
                let submitted_at = Instant::now();
                let submitted = self.pool().submit(
                    node.id,
                    class,
                    Box::new(move || {
                        // measured at job start: how long the sub-query
                        // sat in the node's bounded queue
                        let wait = submitted_at.elapsed();
                        let _ = tx.send((wait, run_on_node(&job_node, &query, avg_mode)));
                    }),
                );
                if !submitted {
                    // node index outside the pool (cluster changed after
                    // pool construction): run inline
                    return inline(node);
                }
                recv_attempt(&rx, timeout)
            }
        }
    }

    /// Multi-fragment fallback: fetch every fragment, rebuild the source
    /// documents at the coordinator, evaluate the original query locally.
    #[allow(clippy::too_many_arguments)]
    fn reconstruct_and_evaluate(
        &self,
        query: &Query,
        collection: &str,
        dist: &Distribution,
        pruned: usize,
        trace: &Trace,
        parse_s: f64,
        localize_s: f64,
    ) -> Result<DistributedResult, PartixError> {
        let mut report = QueryReport {
            fragments_pruned: pruned,
            reconstructed: true,
            ..Default::default()
        };
        let dispatch_start = Instant::now();
        let mut sub_stages: Vec<SubQueryStage> = Vec::new();
        // fetch all fragments (reconstruction needs complete coverage);
        // the fetched documents stay behind their `Arc`s — no deep copy
        // at the fetch boundary
        let mut fetched: Vec<(String, Vec<Arc<Document>>)> = Vec::new();
        let mut total_bytes = 0usize;
        let mut metered_bytes = 0usize;
        for frag in &dist.design.fragments {
            let node_id = self.pick_replica(dist, &frag.name)?;
            let node = self.cluster.node(node_id).expect("placement validated");
            let wire_counted = node.active_driver().counts_wire_bytes();
            let start = Instant::now();
            let docs = node.fetch_docs(&frag.name);
            let elapsed = start.elapsed().as_secs_f64();
            trace.record(&format!("fetch:{}@n{node_id}", frag.name), 0, start);
            sub_stages.push(SubQueryStage {
                fragment: frag.name.clone(),
                node: node_id,
                attempts: 1,
                execute_s: elapsed,
                ..Default::default()
            });
            let bytes: usize = docs.iter().map(|d| d.approx_size()).sum();
            report.sites.push(SiteReport {
                node: node_id,
                fragment: frag.name.clone(),
                elapsed,
                result_bytes: bytes,
                docs_scanned: docs.len(),
                index_used: false,
                morsels: 0,
                from_cache: false,
                retries: 0,
                failovers: 0,
                timeouts: 0,
            });
            report.parallel_elapsed = report.parallel_elapsed.max(elapsed);
            report.serial_elapsed += elapsed;
            total_bytes += bytes;
            if !wire_counted {
                metered_bytes += bytes;
            }
            fetched.push((frag.name.clone(), docs));
        }
        report.transmission = 2.0 * self.network.latency_secs
            + total_bytes as f64 / self.network.bandwidth_bytes_per_sec;
        let dispatch_s = dispatch_start.elapsed().as_secs_f64();
        trace.record("dispatch", 0, dispatch_start);
        // rebuild and evaluate locally
        let compose_start = Instant::now();
        let rebuilt =
            partix_frag::correctness::reconstruct_any_shared(&dist.design, &fetched)
                .map_err(PartixError::Reconstruction)?;
        let scratch = Database::new();
        scratch.store_all_shared(collection, rebuilt);
        let out = scratch.execute_parsed(query).map_err(|e| PartixError::SubQuery {
            node: usize::MAX,
            fragment: "<coordinator>".into(),
            error: e.to_string(),
        })?;
        report.composition = compose_start.elapsed().as_secs_f64();
        trace.record("compose", 0, compose_start);
        report.stages = StageBreakdown {
            parse_s,
            localize_s,
            dispatch_s,
            compose_s: report.composition,
            subqueries: sub_stages,
        };
        report.spans = trace.finish();
        record_query_metrics(&report, metered_bytes, parse_s + localize_s + dispatch_s + report.composition);
        Ok(DistributedResult { items: out.items, report })
    }
}

/// One sub-query bound for one node. Cloning is cheap (the plan is
/// shared) — pool dispatch moves clones into `'static` jobs.
#[derive(Clone)]
struct SubQuery {
    /// The planner's replica pick — the retry loop starts here.
    node: usize,
    fragment: String,
    /// Every replica holding the fragment, in placement order: the
    /// failover ring.
    replicas: Vec<usize>,
    query: Arc<Query>,
}

/// Outcome of a sub-query that eventually succeeded.
struct SiteRun {
    output: SiteOutput,
    /// The replica that answered (after failovers, not necessarily the
    /// planner's pick).
    node: usize,
    retries: usize,
    failovers: usize,
    timeouts: usize,
    /// Dispatch-stage attribution of this sub-query's retry loop.
    stage: SubQueryStage,
}

/// A filled result slot: a dispatched (or cache-served) sub-query.
struct SiteSlot {
    run: SiteRun,
    cached: bool,
}

/// Outcome of a sub-query whose every attempt failed.
struct RunFailure {
    error: PartixError,
    retries: usize,
    failovers: usize,
    timeouts: usize,
    /// What the failed loop cost — kept so degraded (`allow_partial`)
    /// answers still attribute the time they burned. Boxed to keep the
    /// `Err` variant of the dispatch results small (clippy
    /// `result_large_err`).
    stage: Box<SubQueryStage>,
}

/// Flattened per-site output.
struct SiteOutput {
    items: Sequence,
    elapsed: f64,
    result_bytes: usize,
    docs_scanned: usize,
    index_used: bool,
    /// Morsels the node's scan split into (0 = sequential evaluation).
    morsels: usize,
    /// Wire time spent writing request frames (0 in-process).
    send_s: f64,
    /// Wire time spent waiting for / reading response frames.
    recv_s: f64,
    /// The serving driver already counted genuine wire bytes into
    /// `net.bytes_shipped` ([`PartixDriver::counts_wire_bytes`]) — the
    /// coordinator must not add its modeled count on top.
    wire_counted: bool,
}

impl SiteOutput {
    fn empty() -> SiteOutput {
        SiteOutput {
            items: Vec::new(),
            elapsed: 0.0,
            result_bytes: 0,
            docs_scanned: 0,
            index_used: false,
            morsels: 0,
            send_s: 0.0,
            recv_s: 0.0,
            wire_counted: false,
        }
    }
}

enum DispatchError {
    /// The node (or its DBMS) is unreachable — retryable elsewhere.
    Down,
    /// The attempt outlived the per-attempt deadline.
    Timeout,
    /// The DBMS processed the request and failed it.
    Failed(String),
}

/// Wait for a threaded/pooled attempt's answer, bounded by the deadline.
/// The sender pairs every answer with the attempt's queue wait. A
/// disconnected channel means the attempt's thread died without
/// answering (including a panic unwinding it) — treated like an
/// unreachable node.
fn recv_attempt(
    rx: &crossbeam::channel::Receiver<(Duration, Result<SiteOutput, DispatchError>)>,
    timeout: Option<Duration>,
) -> Result<(SiteOutput, Duration), DispatchError> {
    let (wait, result) = match timeout {
        Some(limit) => match rx.recv_timeout(limit) {
            Ok(msg) => msg,
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                return Err(DispatchError::Timeout)
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                return Err(DispatchError::Down)
            }
        },
        None => match rx.recv() {
            Ok(msg) => msg,
            Err(_) => return Err(DispatchError::Down),
        },
    };
    result.map(|out| (out, wait))
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// Fold a coordinator-task panic into the task's own failure so it
/// cannot cascade into concurrent queries.
fn panic_failure(task: &SubQuery, payload: Box<dyn std::any::Any + Send>) -> RunFailure {
    RunFailure {
        error: PartixError::SubQuery {
            node: task.node,
            fragment: task.fragment.clone(),
            error: format!("sub-query panicked: {}", panic_message(payload)),
        },
        retries: 0,
        failovers: 0,
        timeouts: 0,
        stage: Box::new(SubQueryStage {
            fragment: task.fragment.clone(),
            node: task.node,
            attempts: 1,
            ..Default::default()
        }),
    }
}

/// Advance the streaming cursor over the contiguous prefix of resolved
/// site slots, emitting each slot's items (moved out, not cloned) in
/// task order — the order [`compose::combine`] would concatenate them.
/// Slots left `None` by degraded-mode skips resolve without emitting.
fn emit_ready_prefix(
    slots: &mut [Option<SiteSlot>],
    resolved: &[bool],
    cursor: &mut usize,
    cancelled: &mut bool,
    emit: &mut dyn FnMut(Sequence) -> bool,
) {
    while *cursor < resolved.len() && resolved[*cursor] {
        if let Some(slot) = slots[*cursor].as_mut() {
            let items = std::mem::take(&mut slot.run.output.items);
            if !items.is_empty() && !*cancelled && !emit(items) {
                *cancelled = true;
            }
        }
        *cursor += 1;
    }
}

/// The typed error for a consumer that returned `false` from its emit
/// callback: the stream stops and in-flight sub-queries are discarded.
fn stream_cancelled() -> PartixError {
    PartixError::Internal("stream consumer cancelled".into())
}

/// Count a failed execution into the registry (successes are counted by
/// [`record_query_metrics`] with their stage detail).
fn count_failure<T>(result: Result<T, PartixError>) -> Result<T, PartixError> {
    if result.is_err() {
        metrics::global().counter("partix.queries.failed").inc();
    }
    result
}

/// Fold one finished query into the process-wide registry.
fn record_query_metrics(report: &QueryReport, bytes_shipped: usize, total_s: f64) {
    let reg = metrics::global();
    reg.counter("partix.queries").inc();
    if report.partial {
        reg.counter("partix.queries.partial").inc();
    }
    reg.counter("dispatch.subqueries").add(report.stages.subqueries.len() as u64);
    reg.counter("dispatch.retries").add(report.retries as u64);
    reg.counter("dispatch.failovers").add(report.failovers as u64);
    reg.counter("dispatch.timeouts").add(report.timeouts as u64);
    reg.counter("net.bytes_shipped").add(bytes_shipped as u64);
    let morsel_sites = report.sites.iter().filter(|s| s.morsels > 0).count();
    if morsel_sites > 0 {
        reg.counter("morsel.subqueries").add(morsel_sites as u64);
        reg.counter("morsel.batches")
            .add(report.sites.iter().map(|s| s.morsels as u64).sum());
    }
    reg.histogram("stage.parse").record_secs(report.stages.parse_s);
    reg.histogram("stage.localize").record_secs(report.stages.localize_s);
    reg.histogram("stage.dispatch").record_secs(report.stages.dispatch_s);
    reg.histogram("stage.compose").record_secs(report.stages.compose_s);
    reg.histogram("query.total").record_secs(total_s);
}

fn run_on_node(node: &Node, query: &Query, avg_mode: bool) -> Result<SiteOutput, DispatchError> {
    if !node.is_available() {
        return Err(DispatchError::Down);
    }
    let wire_counted = node.active_driver().counts_wire_bytes();
    // clear any stale wire timing left on this worker thread, then run
    // and collect what this call's driver recorded
    let _ = wirespan::take();
    let result = run_on_node_inner(node, query, avg_mode);
    let (send_s, recv_s) = wirespan::take();
    result.map(|mut out| {
        out.send_s = send_s;
        out.recv_s = recv_s;
        out.wire_counted = wire_counted;
        out
    })
}

fn run_on_node_inner(
    node: &Node,
    query: &Query,
    avg_mode: bool,
) -> Result<SiteOutput, DispatchError> {
    if avg_mode {
        // ship (sum, count) and return the pair [sum, count]
        let (sum_q, count_q) = compose::avg_decomposition(query)
            .ok_or_else(|| DispatchError::Failed("avg decomposition failed".into()))?;
        let (Some(sum_out), Some(count_out)) = (exec(node, &sum_q)?, exec(node, &count_q)?)
        else {
            return Ok(SiteOutput::empty());
        };
        let mut items = sum_out.items;
        items.extend(count_out.items);
        // both partial answers ship back and both evaluator passes cost:
        // merge the stats of the two sub-queries rather than reporting
        // only the sum half
        Ok(SiteOutput {
            items,
            elapsed: sum_out.stats.elapsed + count_out.stats.elapsed,
            result_bytes: sum_out.stats.result_bytes + count_out.stats.result_bytes,
            docs_scanned: sum_out.stats.docs_scanned + count_out.stats.docs_scanned,
            index_used: sum_out.stats.index_used || count_out.stats.index_used,
            morsels: sum_out.stats.morsels.max(count_out.stats.morsels),
            ..SiteOutput::empty()
        })
    } else {
        let Some(out) = exec(node, query)? else {
            return Ok(SiteOutput::empty());
        };
        Ok(SiteOutput {
            items: out.items,
            elapsed: out.stats.elapsed,
            result_bytes: out.stats.result_bytes,
            docs_scanned: out.stats.docs_scanned,
            index_used: out.stats.index_used,
            morsels: out.stats.morsels,
            ..SiteOutput::empty()
        })
    }
}

/// Execute on a node through its active driver. `Ok(None)` means the
/// fragment's collection does not exist there — a legitimately *empty*
/// fragment (the publisher stores nothing when a fragment selects
/// nothing), answered with an empty result.
fn exec(node: &Node, query: &Query) -> Result<Option<QueryOutput>, DispatchError> {
    node.execute_query(query).map_err(|e| match e {
        DriverError::Unavailable(_) => DispatchError::Down,
        DriverError::Failed(msg) => DispatchError::Failed(msg),
    })
}

/// Build the sub-query shipped to `frag`; `None` = this fragment cannot
/// answer the query alone (triggers the reconstruction fallback).
fn build_subquery(
    query: &Query,
    collection: &str,
    frag: &partix_frag::FragmentDef,
    analysis: Option<&pushdown::QueryAnalysis>,
) -> Option<Query> {
    match &frag.op {
        FragOp::Horizontal { .. } => {
            Some(rewrite_collection_name(query, collection, &frag.name))
        }
        FragOp::Hybrid { unit_path, mode, .. } => match mode {
            // FragMode2 keeps the source document shape
            FragMode::SingleDoc => {
                Some(rewrite_collection_name(query, collection, &frag.name))
            }
            FragMode::ManySmallDocs => {
                if !serves_all_footprint(unit_path, &[], analysis) {
                    return None;
                }
                rewrite_for_vertical(query, collection, unit_path, &frag.name).ok()
            }
        },
        FragOp::Vertical { projection } => {
            if !serves_all_footprint(&projection.path, &projection.prune, analysis) {
                return None;
            }
            rewrite_for_vertical(query, collection, &projection.path, &frag.name).ok()
        }
    }
}

/// Can a node-level fragment (projection `path` minus `prune`) serve
/// *every* path the query touches? A syntactically successful rewrite is
/// not enough: a path extending into a pruned subtree would evaluate to
/// a silently empty — i.e. wrong — partial result. Each footprint path
/// must either reach into the fragment's retained subtree or be an
/// ancestor binding on the spine above it.
fn serves_all_footprint(
    path: &partix_path::PathExpr,
    prune: &[partix_path::PathExpr],
    analysis: Option<&pushdown::QueryAnalysis>,
) -> bool {
    use partix_path::analysis::path_may_reach_into;
    let Some(analysis) = analysis else {
        return false; // nothing known: force the safe reconstruction path
    };
    analysis.footprint.iter().all(|q| {
        path_may_reach_into(path, q) && !crate::localize::strictly_inside_any(q, prune)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Placement;
    use partix_frag::{FragmentDef, FragmentationSchema};
    use partix_path::{PathExpr, Predicate};
    use partix_query::Item;
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};
    use partix_xml::parse;

    fn items(n: usize) -> Vec<Document> {
        (0..n)
            .map(|i| {
                let section = ["CD", "DVD", "BOOK"][i % 3];
                let quality = if i % 2 == 0 { "good" } else { "poor" };
                let mut d = parse(&format!(
                    "<Item><Code>{i}</Code><Name>item {i}</Name><Section>{section}</Section>\
                     <Price>{}</Price>\
                     <Characteristics><Description>a {quality} product</Description></Characteristics></Item>",
                    5 + i
                ))
                .unwrap();
                d.name = Some(format!("i{i:04}"));
                d
            })
            .collect()
    }

    fn horizontal_px(nodes: usize) -> PartiX {
        let px = PartiX::new(nodes, NetworkModel::default());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_dvd",
                    Predicate::parse(r#"/Item/Section = "DVD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(r#"/Item/Section != "CD" and /Item/Section != "DVD""#)
                        .unwrap(),
                ),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_dvd".into(), node: 1 % nodes },
                Placement { fragment: "f_rest".into(), node: 2 % nodes },
            ],
        })
        .unwrap();
        px.publish("items", &items(30)).unwrap();
        px.publish_centralized(0, "items_central", &items(30)).unwrap();
        px
    }

    #[test]
    fn distributed_equals_centralized_selection() {
        let px = horizontal_px(3);
        let q = |coll: &str| {
            format!(
                r#"for $i in collection("{coll}")/Item
                   where contains($i//Description, "good")
                   return $i/Code"#
            )
        };
        let distributed = px.execute(&q("items")).unwrap();
        let centralized = px.execute_centralized(0, &q("items_central")).unwrap();
        let mut a: Vec<String> =
            distributed.items.iter().map(Item::serialize).collect();
        let mut b: Vec<String> =
            centralized.items.iter().map(Item::serialize).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(distributed.report.sites.len(), 3);
    }

    #[test]
    fn localization_prunes_to_single_fragment() {
        let px = horizontal_px(3);
        let result = px
            .execute(
                r#"for $i in collection("items")/Item
                   where $i/Section = "CD" return $i/Code"#,
            )
            .unwrap();
        assert_eq!(result.report.sites.len(), 1);
        assert_eq!(result.report.fragments_pruned, 2);
        assert_eq!(result.report.sites[0].fragment, "f_cd");
        assert_eq!(result.items.len(), 10);
    }

    #[test]
    fn count_combines_partials() {
        let px = horizontal_px(3);
        let result = px
            .execute(r#"count(for $i in collection("items")/Item return $i)"#)
            .unwrap();
        assert_eq!(result.items, vec![Item::Num(30.0)]);
        assert_eq!(result.report.sites.len(), 3);
    }

    #[test]
    fn sum_min_max_combine() {
        let px = horizontal_px(3);
        // prices are 5..34 → sum = 585, min 5, max 34
        let sum = px
            .execute(r#"sum(for $i in collection("items")/Item return number($i/Price))"#)
            .unwrap();
        assert_eq!(sum.items, vec![Item::Num(585.0)]);
        let min = px
            .execute(r#"min(for $i in collection("items")/Item return number($i/Price))"#)
            .unwrap();
        assert_eq!(min.items, vec![Item::Num(5.0)]);
        let max = px
            .execute(r#"max(for $i in collection("items")/Item return number($i/Price))"#)
            .unwrap();
        assert_eq!(max.items, vec![Item::Num(34.0)]);
    }

    #[test]
    fn avg_weighted_combination() {
        let px = horizontal_px(3);
        let avg = px
            .execute(r#"avg(for $i in collection("items")/Item return number($i/Price))"#)
            .unwrap();
        assert_eq!(avg.items, vec![Item::Num(585.0 / 30.0)]);
    }

    #[test]
    fn node_failure_reported() {
        let px = horizontal_px(3);
        px.cluster().node(1).unwrap().set_available(false);
        let err = px
            .execute(r#"count(for $i in collection("items")/Item return $i)"#)
            .unwrap_err();
        assert!(matches!(err, PartixError::NodeUnavailable { node: 1, .. }));
        // queries localized away from node 1 still work
        let ok = px
            .execute(
                r#"count(for $i in collection("items")/Item
                         where $i/Section = "CD" return $i)"#,
            )
            .unwrap();
        assert_eq!(ok.items, vec![Item::Num(10.0)]);
    }

    #[test]
    fn passthrough_for_undistributed_collections() {
        let px = horizontal_px(2);
        let result = px
            .execute(r#"count(for $i in collection("items_central")/Item return $i)"#)
            .unwrap();
        assert_eq!(result.items, vec![Item::Num(30.0)]);
        assert_eq!(result.report.sites[0].fragment, "<passthrough>");
    }

    /// f_cd replicated on nodes 0 and 2; f_rest on node 1.
    fn replicated_px() -> PartiX {
        let px = PartiX::new(3, NetworkModel::default());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(r#"not(/Item/Section = "CD")"#).unwrap(),
                ),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_cd".into(), node: 2 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        })
        .unwrap();
        px.publish("items", &items(30)).unwrap();
        px
    }

    #[test]
    fn replicated_fragment_fails_over() {
        let px = replicated_px();
        // replica copies landed on both nodes
        assert_eq!(px.cluster().node(0).unwrap().db.collection_len("f_cd").unwrap(), 10);
        assert_eq!(px.cluster().node(2).unwrap().db.collection_len("f_cd").unwrap(), 10);
        let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        // primary up: node 0 answers
        let result = px.execute(q).unwrap();
        assert_eq!(result.items, vec![Item::Num(10.0)]);
        assert_eq!(result.report.sites[0].node, 0);
        // primary down: the query fails over to node 2
        px.cluster().node(0).unwrap().set_available(false);
        let result = px.execute(q).unwrap();
        assert_eq!(result.items, vec![Item::Num(10.0)]);
        assert_eq!(result.report.sites[0].node, 2);
        // both replicas down: the error is reported
        px.cluster().node(2).unwrap().set_available(false);
        assert!(matches!(
            px.execute(q),
            Err(PartixError::NodeUnavailable { .. })
        ));
    }

    #[test]
    fn round_robin_rotates_across_replicas() {
        let px = replicated_px();
        let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        let served: Vec<usize> = (0..4)
            .map(|_| {
                let result = px.execute(q).unwrap();
                assert_eq!(result.items, vec![Item::Num(10.0)]);
                result.report.sites[0].node
            })
            .collect();
        // consecutive queries alternate between the two replicas instead
        // of hammering the first placement
        assert_eq!(served, vec![0, 2, 0, 2]);
    }

    #[test]
    fn retry_recovers_from_transient_driver_failures() {
        use crate::faults::{Fault, FaultInjector};
        let px = horizontal_px(3);
        // node 1's DBMS alternates: one call up, one call down
        let node = px.cluster().node(1).unwrap();
        FaultInjector::install(node, vec![Fault::FlipFlop { up: 1, down: 1 }]);
        let q = r#"count(for $i in collection("items")/Item return $i)"#;
        // call 0 on node 1 is served cleanly
        let first = px.execute(q).unwrap();
        assert_eq!(first.items, vec![Item::Num(30.0)]);
        assert_eq!(first.report.retries, 0);
        // call 1 fails, the retry (call 2) lands in the up-phase
        let second = px.execute(q).unwrap();
        assert_eq!(second.items, vec![Item::Num(30.0)]);
        assert_eq!(second.report.retries, 1);
        assert_eq!(second.report.failovers, 0); // sole replica: same node
        let faulty_site =
            second.report.sites.iter().find(|s| s.fragment == "f_dvd").unwrap();
        assert_eq!(faulty_site.retries, 1);
    }

    #[test]
    fn deadline_expiry_fails_over_to_replica() {
        use crate::faults::{Fault, FaultInjector};
        let mut px = replicated_px();
        px.set_dispatch(DispatchMode::Threads);
        px.set_retry_policy(RetryPolicy {
            timeout: Some(Duration::from_millis(40)),
            ..RetryPolicy::default()
        });
        // node 0's replica of f_cd answers far too slowly; node 2 is fast
        let slow = px.cluster().node(0).unwrap();
        FaultInjector::install(slow, vec![Fault::Latency { millis: 400 }]);
        let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        let result = px.execute(q).unwrap();
        assert_eq!(result.items, vec![Item::Num(10.0)]);
        assert_eq!(result.report.sites[0].node, 2, "{}", result.report);
        assert_eq!(result.report.timeouts, 1);
        assert_eq!(result.report.failovers, 1);
        // the slow node is left suspect, so the next query (whose
        // round-robin turn would be node 0's) routes around it
        assert!(px.cluster().node(0).unwrap().is_suspect());
        let again = px.execute(q).unwrap();
        assert_eq!(again.report.sites[0].node, 2);
        assert_eq!(again.report.timeouts, 0);
    }

    #[test]
    fn allow_partial_degrades_instead_of_failing() {
        let px = horizontal_px(3);
        px.cluster().node(1).unwrap().set_available(false);
        let q = r#"count(for $i in collection("items")/Item return $i)"#;
        // strict mode still fails
        assert!(px.execute(q).is_err());
        // degraded mode answers from the two live fragments
        let result = px
            .execute_with(q, ExecOptions { allow_partial: true, ..ExecOptions::default() })
            .unwrap();
        assert_eq!(result.items, vec![Item::Num(20.0)]);
        assert!(result.report.partial);
        assert_eq!(result.report.sites.len(), 2);
        assert_eq!(result.report.skipped.len(), 1);
        assert_eq!(result.report.skipped[0].fragment, "f_dvd");
        // with every node down the answer is empty but typed
        px.cluster().node(0).unwrap().set_available(false);
        px.cluster().node(2).unwrap().set_available(false);
        let empty = px
            .execute_with(q, ExecOptions { allow_partial: true, ..ExecOptions::default() })
            .unwrap();
        assert!(empty.report.partial);
        assert_eq!(empty.report.skipped.len(), 3);
        assert!(empty.report.sites.is_empty());
    }

    #[test]
    fn parse_error_surfaces() {
        let px = horizontal_px(2);
        assert!(matches!(px.execute("for $"), Err(PartixError::Parse(_))));
    }

    fn vertical_px() -> PartiX {
        let px = PartiX::new(3, NetworkModel::default());
        let articles = CollectionDef::new(
            "articles",
            Arc::new(partix_schema::builtin::xbench_article()),
            PathExpr::parse("/article").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let p = |s: &str| PathExpr::parse(s).unwrap();
        let design = FragmentationSchema::new(
            articles,
            vec![
                FragmentDef::vertical(
                    "f_spine",
                    p("/article"),
                    vec![p("/article/prolog"), p("/article/body"), p("/article/epilog")],
                ),
                FragmentDef::vertical("f_prolog", p("/article/prolog"), vec![]),
                FragmentDef::vertical("f_body", p("/article/body"), vec![]),
                FragmentDef::vertical("f_epilog", p("/article/epilog"), vec![]),
            ],
        )
        .unwrap();
        px.register_distribution(Distribution {
            design,
            placements: vec![
                Placement { fragment: "f_spine".into(), node: 0 },
                Placement { fragment: "f_prolog".into(), node: 0 },
                Placement { fragment: "f_body".into(), node: 1 },
                Placement { fragment: "f_epilog".into(), node: 2 },
            ],
        })
        .unwrap();
        let docs: Vec<Document> = (0..6)
            .map(|i| {
                let mut d = parse(&format!(
                    r#"<article id="a{i}"><prolog><title>Title {i}</title>
                       <authors><author><name>Author {i}</name></author></authors>
                       <genre>g{}</genre><pub_date>2005-0{}-01</pub_date></prolog>
                       <body><abstract>xml data {i}</abstract>
                       <section><heading>h</heading><p>body text {i}</p></section></body>
                       <epilog><references><reference><ref_title>r</ref_title><year>1999</year></reference></references>
                       <country>BR</country><word_count>{}</word_count></epilog></article>"#,
                    i % 3,
                    (i % 9) + 1,
                    100 + i
                ))
                .unwrap();
                d.name = Some(format!("a{i}"));
                d
            })
            .collect();
        px.publish("articles", &docs).unwrap();
        px.publish_centralized(0, "articles_central", &docs).unwrap();
        px
    }

    #[test]
    fn vertical_single_fragment_query() {
        let px = vertical_px();
        let result = px
            .execute(r#"for $t in collection("articles")/article/prolog/title return $t"#)
            .unwrap();
        assert_eq!(result.items.len(), 6);
        // only the prolog fragment is consulted
        assert_eq!(result.report.sites.len(), 1);
        assert_eq!(result.report.sites[0].fragment, "f_prolog");
        assert!(!result.report.reconstructed);
    }

    #[test]
    fn vertical_multi_fragment_reconstructs() {
        let px = vertical_px();
        let q = r#"for $a in collection("articles")/article
                   where contains($a/body/abstract, "xml")
                   return $a/prolog/title"#;
        let result = px.execute(q).unwrap();
        assert!(result.report.reconstructed);
        assert_eq!(result.items.len(), 6);
        // same answer as centralized
        let centralized = px
            .execute_centralized(
                0,
                &q.replace("collection(\"articles\")", "collection(\"articles_central\")"),
            )
            .unwrap();
        let a: Vec<String> = result.items.iter().map(Item::serialize).collect();
        let b: Vec<String> = centralized.items.iter().map(Item::serialize).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn vertical_aggregate_on_one_fragment() {
        let px = vertical_px();
        let result = px
            .execute(r#"count(collection("articles")/article/epilog/references/reference)"#)
            .unwrap();
        assert_eq!(result.items, vec![Item::Num(6.0)]);
        assert_eq!(result.report.sites.len(), 1);
        assert_eq!(result.report.sites[0].fragment, "f_epilog");
    }

    /// Regression for the round-robin replica index arithmetic: the
    /// per-fragment rotation counter wraps around usize::MAX on long
    /// runs, and `nodes[(start + k) % len]` then overflow-panics in
    /// debug builds. Seed the counter at the edge and step across it.
    #[test]
    fn replica_rotation_survives_counter_wraparound() {
        let px = replicated_px();
        *px.rotation.lock().entry("f_cd".to_owned()).or_insert(0) = usize::MAX - 1;
        let q = r#"count(for $i in collection("items")/Item where $i/Section = "CD" return $i)"#;
        // crosses usize::MAX - 1 → MAX → 0 without panicking, and keeps
        // alternating between the two replicas
        let served: Vec<usize> = (0..4)
            .map(|_| {
                let result = px.execute(q).unwrap();
                assert_eq!(result.items, vec![Item::Num(10.0)]);
                result.report.sites[0].node
            })
            .collect();
        let alternated = served == vec![0, 2, 0, 2] || served == vec![2, 0, 2, 0];
        assert!(alternated, "served: {served:?}");
        assert_eq!(*px.rotation.lock().get("f_cd").unwrap(), 2);
    }

    #[test]
    fn invalid_distributions_are_typed_errors() {
        use crate::catalog::DistributionError;
        let px = PartiX::new(2, NetworkModel::default());
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let design = FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(r#"not(/Item/Section = "CD")"#).unwrap(),
                ),
            ],
        )
        .unwrap();
        // out-of-range node index: the cluster has 2 nodes
        let err = px
            .register_distribution(Distribution {
                design: design.clone(),
                placements: vec![
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_rest".into(), node: 5 },
                ],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PartixError::InvalidDistribution(DistributionError::NodeOutOfRange {
                node: 5,
                nodes: 2,
                ..
            })
        ));
        // placement naming a fragment the design does not define
        let err = px
            .register_distribution(Distribution {
                design: design.clone(),
                placements: vec![
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_rest".into(), node: 1 },
                    Placement { fragment: "f_ghost".into(), node: 1 },
                ],
            })
            .unwrap_err();
        assert!(matches!(
            err,
            PartixError::InvalidDistribution(DistributionError::UnknownFragment { .. })
        ));
        // nothing was registered by the failed attempts
        assert!(px.catalog().distribution("items").is_none());
    }

    /// Swapping a collection's placements while queries are in flight
    /// must never produce a wrong answer: in-flight queries either
    /// finish against the old placements or are replanned against the
    /// new ones (`execute_replanned`), and both hold the full data.
    #[test]
    fn placement_swap_under_concurrent_queries() {
        let px = horizontal_px(3);
        let q = r#"count(for $i in collection("items")/Item return $i)"#;
        let swapped = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let px = &px;
            for _ in 0..4 {
                let swapped = Arc::clone(&swapped);
                scope.spawn(move || {
                    for _ in 0..40 {
                        let result = px.execute(q).unwrap();
                        assert_eq!(result.items, vec![Item::Num(30.0)]);
                        if swapped.load(std::sync::atomic::Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            scope.spawn(|| {
                // move every fragment onto different nodes, repeatedly,
                // while the query threads hammer the collection; data is
                // already resident everywhere it needs to be only for
                // the *original* placements, so replicate first
                let dist = Arc::clone(px.catalog().distribution("items").unwrap());
                for round in 0..6usize {
                    let rotate = round % 3;
                    let placements: Vec<Placement> = dist
                        .placements
                        .iter()
                        .map(|p| {
                            let node = (p.node + rotate) % 3;
                            // keep the data available on the new node
                            let docs: Vec<Document> = px
                                .cluster()
                                .node(p.node)
                                .unwrap()
                                .fetch_docs(&p.fragment)
                                .iter()
                                .map(|d| (**d).clone())
                                .collect();
                            let target = px.cluster().node(node).unwrap();
                            if target.fetch_docs(&p.fragment).is_empty() && !docs.is_empty() {
                                target.store_docs(&p.fragment, docs);
                            }
                            Placement { fragment: p.fragment.clone(), node }
                        })
                        .collect();
                    px.register_distribution(Distribution {
                        design: dist.design.clone(),
                        placements,
                    })
                    .unwrap();
                    swapped.store(true, std::sync::atomic::Ordering::Release);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        });
    }
}
