//! The catalog services: schemas, collections, distributions.

use partix_frag::FragmentationSchema;
use partix_schema::Schema;
use std::collections::HashMap;
use std::sync::Arc;

/// Where one fragment lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Fragment name (as in the [`FragmentationSchema`]).
    pub fragment: String,
    /// Cluster node index.
    pub node: usize,
}

/// A registered distribution: the fragmentation design of one collection
/// plus the allocation of its fragments to nodes.
#[derive(Debug, Clone)]
pub struct Distribution {
    pub design: FragmentationSchema,
    pub placements: Vec<Placement>,
}

impl Distribution {
    /// Primary node hosting `fragment`, if placed (first placement).
    pub fn node_of(&self, fragment: &str) -> Option<usize> {
        self.placements
            .iter()
            .find(|p| p.fragment == fragment)
            .map(|p| p.node)
    }

    /// Every node hosting a replica of `fragment`, in placement order.
    pub fn nodes_of(&self, fragment: &str) -> Vec<usize> {
        self.placements
            .iter()
            .filter(|p| p.fragment == fragment)
            .map(|p| p.node)
            .collect()
    }

    /// Every fragment must be placed on at least one node; replicas (the
    /// same fragment on several nodes) are allowed but must not repeat a
    /// node.
    pub fn validate(&self) -> Result<(), String> {
        for frag in &self.design.fragments {
            let nodes = self.nodes_of(&frag.name);
            if nodes.is_empty() {
                return Err(format!(
                    "fragment {} has no placement, expected at least 1",
                    frag.name
                ));
            }
            let distinct: std::collections::HashSet<usize> = nodes.iter().copied().collect();
            if distinct.len() != nodes.len() {
                return Err(format!(
                    "fragment {} is placed twice on the same node",
                    frag.name
                ));
            }
        }
        Ok(())
    }
}

/// The XML Schema Catalog Service and XML Distribution Catalog Service
/// (paper Sec. 4), merged into one registry.
#[derive(Debug, Default)]
pub struct Catalog {
    schemas: HashMap<String, Arc<Schema>>,
    // Arc'd so per-query lookups can take a reference-count bump instead
    // of deep-cloning the whole design + placement list.
    distributions: HashMap<String, Arc<Distribution>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a data-type schema.
    pub fn register_schema(&mut self, schema: Arc<Schema>) {
        self.schemas.insert(schema.name.clone(), schema);
    }

    pub fn schema(&self, name: &str) -> Option<&Arc<Schema>> {
        self.schemas.get(name)
    }

    /// Register a collection's fragmentation design + allocation. The
    /// design is validated (fragment rules and placement completeness).
    pub fn register_distribution(
        &mut self,
        distribution: Distribution,
    ) -> Result<(), String> {
        distribution.design.validate().map_err(|e| e.to_string())?;
        distribution.validate()?;
        let name = distribution.design.collection.name.clone();
        self.distributions.insert(name, Arc::new(distribution));
        Ok(())
    }

    /// Distribution of a collection, if fragmented.
    pub fn distribution(&self, collection: &str) -> Option<&Arc<Distribution>> {
        self.distributions.get(collection)
    }

    /// Names of all distributed collections.
    pub fn distributed_collections(&self) -> Vec<String> {
        let mut names: Vec<String> = self.distributions.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_frag::FragmentDef;
    use partix_path::{PathExpr, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};

    fn design() -> FragmentationSchema {
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(r#"not(/Item/Section = "CD")"#).unwrap(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register_schema(Arc::new(virtual_store()));
        assert!(cat.schema("virtual_store").is_some());
        cat.register_distribution(Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        })
        .unwrap();
        let dist = cat.distribution("items").unwrap();
        assert_eq!(dist.node_of("f_cd"), Some(0));
        assert_eq!(dist.node_of("f_rest"), Some(1));
        assert_eq!(dist.node_of("zzz"), None);
        assert_eq!(cat.distributed_collections(), ["items"]);
    }

    #[test]
    fn missing_placement_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution {
                design: design(),
                placements: vec![Placement { fragment: "f_cd".into(), node: 0 }],
            })
            .unwrap_err();
        assert!(err.contains("f_rest"));
    }

    #[test]
    fn replicas_allowed_on_distinct_nodes() {
        let mut cat = Catalog::new();
        cat.register_distribution(Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_cd".into(), node: 1 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        })
        .unwrap();
        let dist = cat.distribution("items").unwrap();
        assert_eq!(dist.nodes_of("f_cd"), [0, 1]);
        assert_eq!(dist.node_of("f_cd"), Some(0));
    }

    #[test]
    fn duplicate_replica_on_same_node_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution {
                design: design(),
                placements: vec![
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_rest".into(), node: 1 },
                ],
            })
            .unwrap_err();
        assert!(err.contains("f_cd"));
    }
}
