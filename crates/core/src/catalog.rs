//! The catalog services: schemas, collections, distributions.

use partix_frag::FragmentationSchema;
use partix_schema::Schema;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Where one fragment lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// Fragment name (as in the [`FragmentationSchema`]).
    pub fragment: String,
    /// Cluster node index.
    pub node: usize,
}

/// Why a [`Distribution`] was rejected at registration. Typed (rather
/// than a bare string) so callers — the CLI, the rebalancer, tests — can
/// react to the specific defect instead of pattern-matching messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributionError {
    /// The fragmentation design itself failed its rules.
    Design(String),
    /// A fragment of the design has no placement at all.
    Unplaced { fragment: String },
    /// The same fragment is placed twice on the same node.
    DuplicateReplica { fragment: String, node: usize },
    /// A placement names a fragment that is not in the design — queries
    /// would silently never reach the data stored under it.
    UnknownFragment { fragment: String },
    /// A placement targets a node index outside the cluster — dispatch
    /// would silently skip the fragment (`Cluster::node` returns `None`).
    NodeOutOfRange { fragment: String, node: usize, nodes: usize },
}

impl fmt::Display for DistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributionError::Design(msg) => write!(f, "invalid design: {msg}"),
            DistributionError::Unplaced { fragment } => {
                write!(f, "fragment {fragment} has no placement, expected at least 1")
            }
            DistributionError::DuplicateReplica { fragment, node } => {
                write!(f, "fragment {fragment} is placed twice on node {node}")
            }
            DistributionError::UnknownFragment { fragment } => {
                write!(f, "placement names unknown fragment {fragment}")
            }
            DistributionError::NodeOutOfRange { fragment, node, nodes } => write!(
                f,
                "fragment {fragment} is placed on node {node}, but the cluster has only {nodes} node(s)"
            ),
        }
    }
}

impl std::error::Error for DistributionError {}

/// A registered distribution: the fragmentation design of one collection
/// plus the allocation of its fragments to nodes.
#[derive(Debug, Clone)]
pub struct Distribution {
    pub design: FragmentationSchema,
    pub placements: Vec<Placement>,
}

impl Distribution {
    /// Primary node hosting `fragment`, if placed (first placement).
    pub fn node_of(&self, fragment: &str) -> Option<usize> {
        self.placements
            .iter()
            .find(|p| p.fragment == fragment)
            .map(|p| p.node)
    }

    /// Every node hosting a replica of `fragment`, in placement order.
    /// Duplicate placements of the same fragment on the same node are
    /// collapsed to one entry (first occurrence wins), so replica rings
    /// never visit a node twice even if a caller slipped a duplicate
    /// past validation.
    pub fn nodes_of(&self, fragment: &str) -> Vec<usize> {
        let mut nodes = Vec::new();
        for p in &self.placements {
            if p.fragment == fragment && !nodes.contains(&p.node) {
                nodes.push(p.node);
            }
        }
        nodes
    }

    /// Validate the placement list against the design: every fragment
    /// must be placed on at least one node; replicas (the same fragment
    /// on several nodes) are allowed but must not repeat a node; every
    /// placement must name a fragment the design actually defines.
    pub fn validate(&self) -> Result<(), DistributionError> {
        for frag in &self.design.fragments {
            let mut seen: Vec<usize> = Vec::new();
            for p in self.placements.iter().filter(|p| p.fragment == frag.name) {
                if seen.contains(&p.node) {
                    return Err(DistributionError::DuplicateReplica {
                        fragment: frag.name.clone(),
                        node: p.node,
                    });
                }
                seen.push(p.node);
            }
            if seen.is_empty() {
                return Err(DistributionError::Unplaced { fragment: frag.name.clone() });
            }
        }
        for p in &self.placements {
            if !self.design.fragments.iter().any(|f| f.name == p.fragment) {
                return Err(DistributionError::UnknownFragment {
                    fragment: p.fragment.clone(),
                });
            }
        }
        Ok(())
    }

    /// [`Distribution::validate`] plus a node-range check against a
    /// cluster of `nodes` nodes — the full registration-time gate.
    pub fn validate_against(&self, nodes: usize) -> Result<(), DistributionError> {
        self.validate()?;
        for p in &self.placements {
            if p.node >= nodes {
                return Err(DistributionError::NodeOutOfRange {
                    fragment: p.fragment.clone(),
                    node: p.node,
                    nodes,
                });
            }
        }
        Ok(())
    }
}

/// The XML Schema Catalog Service and XML Distribution Catalog Service
/// (paper Sec. 4), merged into one registry.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    schemas: HashMap<String, Arc<Schema>>,
    // Arc'd so per-query lookups can take a reference-count bump instead
    // of deep-cloning the whole design + placement list.
    distributions: HashMap<String, Arc<Distribution>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a data-type schema.
    pub fn register_schema(&mut self, schema: Arc<Schema>) {
        self.schemas.insert(schema.name.clone(), schema);
    }

    pub fn schema(&self, name: &str) -> Option<&Arc<Schema>> {
        self.schemas.get(name)
    }

    /// Register a collection's fragmentation design + allocation. The
    /// design is validated (fragment rules and placement completeness).
    /// Replaces any previous distribution of the collection atomically:
    /// queries holding the old `Arc` finish against the old placements.
    ///
    /// Node indices cannot be range-checked here (the catalog does not
    /// know the cluster size) — use [`Catalog::register_distribution_on`]
    /// or go through `PartiX::register_distribution`, which does.
    pub fn register_distribution(
        &mut self,
        distribution: Distribution,
    ) -> Result<(), DistributionError> {
        distribution
            .design
            .validate()
            .map_err(|e| DistributionError::Design(e.to_string()))?;
        distribution.validate()?;
        let name = distribution.design.collection.name.clone();
        self.distributions.insert(name, Arc::new(distribution));
        Ok(())
    }

    /// [`Catalog::register_distribution`] with the placement node indices
    /// checked against a cluster of `nodes` nodes.
    pub fn register_distribution_on(
        &mut self,
        distribution: Distribution,
        nodes: usize,
    ) -> Result<(), DistributionError> {
        distribution.validate_against(nodes)?;
        self.register_distribution(distribution)
    }

    /// Distribution of a collection, if fragmented.
    pub fn distribution(&self, collection: &str) -> Option<&Arc<Distribution>> {
        self.distributions.get(collection)
    }

    /// Names of all distributed collections.
    pub fn distributed_collections(&self) -> Vec<String> {
        let mut names: Vec<String> = self.distributions.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_frag::FragmentDef;
    use partix_path::{PathExpr, Predicate};
    use partix_schema::builtin::virtual_store;
    use partix_schema::{CollectionDef, RepoKind};

    fn design() -> FragmentationSchema {
        let citems = CollectionDef::new(
            "items",
            Arc::new(virtual_store()),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        FragmentationSchema::new(
            citems,
            vec![
                FragmentDef::horizontal(
                    "f_cd",
                    Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
                ),
                FragmentDef::horizontal(
                    "f_rest",
                    Predicate::parse(r#"not(/Item/Section = "CD")"#).unwrap(),
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = Catalog::new();
        cat.register_schema(Arc::new(virtual_store()));
        assert!(cat.schema("virtual_store").is_some());
        cat.register_distribution(Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        })
        .unwrap();
        let dist = cat.distribution("items").unwrap();
        assert_eq!(dist.node_of("f_cd"), Some(0));
        assert_eq!(dist.node_of("f_rest"), Some(1));
        assert_eq!(dist.node_of("zzz"), None);
        assert_eq!(cat.distributed_collections(), ["items"]);
    }

    #[test]
    fn missing_placement_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution {
                design: design(),
                placements: vec![Placement { fragment: "f_cd".into(), node: 0 }],
            })
            .unwrap_err();
        assert_eq!(err, DistributionError::Unplaced { fragment: "f_rest".into() });
        assert!(err.to_string().contains("f_rest"));
    }

    #[test]
    fn empty_distribution_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution { design: design(), placements: vec![] })
            .unwrap_err();
        // the first fragment of the design is reported unplaced
        assert_eq!(err, DistributionError::Unplaced { fragment: "f_cd".into() });
        assert!(cat.distribution("items").is_none());
    }

    #[test]
    fn unknown_fragment_placement_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution {
                design: design(),
                placements: vec![
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_rest".into(), node: 1 },
                    Placement { fragment: "f_typo".into(), node: 0 },
                ],
            })
            .unwrap_err();
        assert_eq!(err, DistributionError::UnknownFragment { fragment: "f_typo".into() });
    }

    #[test]
    fn out_of_range_node_rejected_with_cluster_size() {
        let mut cat = Catalog::new();
        let dist = Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_rest".into(), node: 7 },
            ],
        };
        // without a cluster size the placement passes structural checks…
        assert!(dist.validate().is_ok());
        // …but the node-range gate rejects it
        let err = cat.register_distribution_on(dist, 2).unwrap_err();
        assert_eq!(
            err,
            DistributionError::NodeOutOfRange { fragment: "f_rest".into(), node: 7, nodes: 2 }
        );
        assert!(cat.distribution("items").is_none());
    }

    #[test]
    fn replicas_allowed_on_distinct_nodes() {
        let mut cat = Catalog::new();
        cat.register_distribution(Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_cd".into(), node: 1 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        })
        .unwrap();
        let dist = cat.distribution("items").unwrap();
        assert_eq!(dist.nodes_of("f_cd"), [0, 1]);
        assert_eq!(dist.node_of("f_cd"), Some(0));
    }

    #[test]
    fn duplicate_replica_on_same_node_rejected() {
        let mut cat = Catalog::new();
        let err = cat
            .register_distribution(Distribution {
                design: design(),
                placements: vec![
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_cd".into(), node: 0 },
                    Placement { fragment: "f_rest".into(), node: 1 },
                ],
            })
            .unwrap_err();
        assert_eq!(err, DistributionError::DuplicateReplica { fragment: "f_cd".into(), node: 0 });
    }

    #[test]
    fn nodes_of_dedups_but_preserves_replica_order() {
        // construct the duplicate directly (bypassing validation) to pin
        // the dedup behaviour: first occurrence wins, order is stable
        let dist = Distribution {
            design: design(),
            placements: vec![
                Placement { fragment: "f_cd".into(), node: 2 },
                Placement { fragment: "f_cd".into(), node: 0 },
                Placement { fragment: "f_cd".into(), node: 2 },
                Placement { fragment: "f_cd".into(), node: 1 },
                Placement { fragment: "f_rest".into(), node: 1 },
            ],
        };
        assert_eq!(dist.nodes_of("f_cd"), [2, 0, 1]);
        assert_eq!(dist.node_of("f_cd"), Some(2));
        // repeated calls are stable (ordering stability for replica rings)
        assert_eq!(dist.nodes_of("f_cd"), dist.nodes_of("f_cd"));
    }
}
