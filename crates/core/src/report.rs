//! Query execution reports: the numbers the paper's figures plot.

use crate::trace::{SpanRecord, StageBreakdown};
use std::fmt;

/// Execution record of one sub-query at one site.
#[derive(Debug, Clone)]
pub struct SiteReport {
    pub node: usize,
    pub fragment: String,
    /// DBMS-side execution time (seconds).
    pub elapsed: f64,
    /// Result size shipped back to the coordinator (bytes).
    pub result_bytes: usize,
    /// Documents fed to the node's evaluator.
    pub docs_scanned: usize,
    /// Whether the node used an index to pre-filter.
    pub index_used: bool,
    /// Morsels the node's scan split into for intra-fragment parallel
    /// execution (0 = the node evaluated sequentially).
    pub morsels: usize,
    /// True when this site's answer was served from the coordinator's
    /// result cache — the node was never contacted and `elapsed` is 0.
    pub from_cache: bool,
    /// Dispatch attempts beyond the first that this sub-query needed
    /// (failed/timed-out attempts, on any replica).
    pub retries: usize,
    /// Retries that moved the sub-query to a *different* replica node
    /// (mid-flight failover). `node` is the replica that answered.
    pub failovers: usize,
    /// Attempts abandoned because they exceeded the per-attempt deadline.
    pub timeouts: usize,
}

/// Full timing breakdown of one distributed query, following the paper's
/// measurement methodology (Sec. 5): sub-queries run in parallel at their
/// sites; the parallel elapsed time is the slowest site; transmission
/// time covers sending sub-queries and shipping partial results; result
/// composition happens at the coordinator.
#[derive(Debug, Clone, Default)]
pub struct QueryReport {
    pub sites: Vec<SiteReport>,
    /// max over sites of the DBMS execution time.
    pub parallel_elapsed: f64,
    /// Σ over sites — what a serial execution of the sub-queries would
    /// cost (used to sanity-check superlinear speedups).
    pub serial_elapsed: f64,
    /// Modelled network time (sub-query dispatch + result shipping).
    pub transmission: f64,
    /// Coordinator-side composition (union / aggregation / join).
    pub composition: f64,
    /// Number of fragments the localization step pruned away.
    pub fragments_pruned: usize,
    /// True when the query was answered by reconstructing fragments at
    /// the coordinator (multi-fragment vertical fallback).
    pub reconstructed: bool,
    /// True when the plan came from the coordinator's parsed-query cache
    /// (only set by [`PartiX::execute`](crate::PartiX::execute); queries
    /// entering as pre-parsed ASTs never consult the plan cache).
    pub plan_cache_hit: bool,
    /// Sub-queries answered from the coordinator's result cache.
    pub result_cache_hits: usize,
    /// Sub-queries that had to run on their nodes (cache disabled counts
    /// here too: every dispatched sub-query is a miss).
    pub result_cache_misses: usize,
    /// Σ over sites of dispatch retries (see [`SiteReport::retries`]).
    pub retries: usize,
    /// Σ over sites of replica failovers.
    pub failovers: usize,
    /// Σ over sites of per-attempt deadline expiries.
    pub timeouts: usize,
    /// True when the answer is missing at least one fragment — only
    /// possible with `ExecOptions::allow_partial`; the missing fragments
    /// are listed in `skipped`.
    pub partial: bool,
    /// Fragments that contributed nothing because every dispatch attempt
    /// on every replica failed (degraded mode).
    pub skipped: Vec<SkippedFragment>,
    /// Coordinator-stage attribution (parse / localize / dispatch /
    /// compose and per-sub-query dispatch detail). Always measured — the
    /// cost is a few monotonic-clock reads per query.
    pub stages: StageBreakdown,
    /// Raw spans behind `stages`, exportable via
    /// [`trace::chrome_trace`](crate::trace::chrome_trace). Collected
    /// only while the service's tracing flag is on
    /// ([`PartiX::set_tracing_enabled`](crate::PartiX::set_tracing_enabled)).
    pub spans: Vec<SpanRecord>,
}

/// One fragment dropped from a degraded (`allow_partial`) answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedFragment {
    pub fragment: String,
    /// The last error observed while trying this fragment's replicas.
    pub error: String,
}

impl QueryReport {
    /// The paper's reported response time: parallel execution + network +
    /// composition.
    pub fn total(&self) -> f64 {
        self.parallel_elapsed + self.transmission + self.composition
    }

    /// Total bytes shipped from sites to the coordinator.
    pub fn total_result_bytes(&self) -> usize {
        self.sites.iter().map(|s| s.result_bytes).sum()
    }
}

impl fmt::Display for QueryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total {:.6}s = parallel {:.6}s + net {:.6}s + compose {:.6}s ({} site(s), {} pruned{})",
            self.total(),
            self.parallel_elapsed,
            self.transmission,
            self.composition,
            self.sites.len(),
            self.fragments_pruned,
            if self.reconstructed { ", reconstructed" } else { "" },
        )?;
        if self.retries > 0 || self.timeouts > 0 || self.partial {
            writeln!(
                f,
                "  faults: {} retr{}, {} failover(s), {} timeout(s){}",
                self.retries,
                if self.retries == 1 { "y" } else { "ies" },
                self.failovers,
                self.timeouts,
                if self.partial { " — PARTIAL result" } else { "" },
            )?;
            for skipped in &self.skipped {
                writeln!(f, "  skipped [{}]: {}", skipped.fragment, skipped.error)?;
            }
        }
        if self.result_cache_hits > 0 || self.plan_cache_hit {
            writeln!(
                f,
                "  cache: plan {}, results {}/{} hit",
                if self.plan_cache_hit { "hit" } else { "miss" },
                self.result_cache_hits,
                self.result_cache_hits + self.result_cache_misses,
            )?;
        }
        for site in &self.sites {
            writeln!(
                f,
                "  node{} [{}]: {:.6}s, {} docs, {} B{}{}{}",
                site.node,
                site.fragment,
                site.elapsed,
                site.docs_scanned,
                site.result_bytes,
                if site.index_used { ", index" } else { "" },
                if site.morsels > 0 {
                    format!(", {} morsels", site.morsels)
                } else {
                    String::new()
                },
                if site.from_cache { ", cached" } else { "" },
            )?;
        }
        if self.stages.is_measured() {
            writeln!(f, "  stage        time(ms)")?;
            for (name, secs) in [
                ("parse", self.stages.parse_s),
                ("localize", self.stages.localize_s),
                ("dispatch", self.stages.dispatch_s),
                ("compose", self.stages.compose_s),
            ] {
                writeln!(f, "  {name:<12} {:>8.3}", secs * 1e3)?;
            }
            for sub in &self.stages.subqueries {
                write!(
                    f,
                    "    [{}]@n{}: {} attempt(s), wait {:.3}ms, exec {:.3}ms, backoff {:.3}ms",
                    sub.fragment,
                    sub.node,
                    sub.attempts,
                    sub.queue_wait_s * 1e3,
                    sub.execute_s * 1e3,
                    sub.backoff_s * 1e3,
                )?;
                if sub.send_s > 0.0 || sub.recv_s > 0.0 {
                    // only network-backed sub-queries have wire time
                    write!(
                        f,
                        ", send {:.3}ms, recv {:.3}ms",
                        sub.send_s * 1e3,
                        sub.recv_s * 1e3,
                    )?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(node: usize, elapsed: f64, bytes: usize) -> SiteReport {
        SiteReport {
            node,
            fragment: format!("f{node}"),
            elapsed,
            result_bytes: bytes,
            docs_scanned: 10,
            index_used: false,
            morsels: 0,
            from_cache: false,
            retries: 0,
            failovers: 0,
            timeouts: 0,
        }
    }

    #[test]
    fn totals_add_up() {
        let report = QueryReport {
            sites: vec![site(0, 0.5, 100), site(1, 0.2, 50)],
            parallel_elapsed: 0.5,
            serial_elapsed: 0.7,
            transmission: 0.1,
            composition: 0.05,
            fragments_pruned: 1,
            ..Default::default()
        };
        assert!((report.total() - 0.65).abs() < 1e-12);
        assert_eq!(report.total_result_bytes(), 150);
    }

    #[test]
    fn display_is_informative() {
        let report = QueryReport {
            sites: vec![site(0, 0.5, 100)],
            parallel_elapsed: 0.5,
            serial_elapsed: 0.5,
            fragments_pruned: 2,
            reconstructed: true,
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("node0"));
        assert!(text.contains("reconstructed"));
        assert!(text.contains("2 pruned"));
    }

    #[test]
    fn display_shows_fault_line_and_skips() {
        let report = QueryReport {
            sites: vec![site(0, 0.1, 10)],
            retries: 2,
            failovers: 1,
            timeouts: 1,
            partial: true,
            skipped: vec![SkippedFragment {
                fragment: "f_dvd".into(),
                error: "every replica down".into(),
            }],
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("2 retries, 1 failover(s), 1 timeout(s)"), "{text}");
        assert!(text.contains("PARTIAL"), "{text}");
        assert!(text.contains("skipped [f_dvd]: every replica down"), "{text}");
        // and stays silent on a clean run
        assert!(!QueryReport::default().to_string().contains("faults:"));
    }

    #[test]
    fn display_shows_stage_table_when_measured() {
        use crate::trace::SubQueryStage;
        let report = QueryReport {
            sites: vec![site(0, 0.1, 10)],
            stages: StageBreakdown {
                parse_s: 0.0001,
                localize_s: 0.0002,
                dispatch_s: 0.1,
                compose_s: 0.001,
                subqueries: vec![SubQueryStage {
                    fragment: "f0".into(),
                    node: 0,
                    attempts: 2,
                    execute_s: 0.09,
                    backoff_s: 0.005,
                    retries: 1,
                    ..Default::default()
                }],
            },
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("stage        time(ms)"), "{text}");
        assert!(text.contains("dispatch"), "{text}");
        assert!(text.contains("[f0]@n0: 2 attempt(s)"), "{text}");
        // silent when tracing was off
        assert!(!QueryReport::default().to_string().contains("stage"));
    }

    #[test]
    fn display_shows_cache_line_when_hit() {
        let mut cached_site = site(0, 0.0, 100);
        cached_site.from_cache = true;
        let report = QueryReport {
            sites: vec![cached_site],
            plan_cache_hit: true,
            result_cache_hits: 1,
            ..Default::default()
        };
        let text = report.to_string();
        assert!(text.contains("cache: plan hit, results 1/1 hit"));
        assert!(text.contains(", cached"));
        // and stays silent without cache activity
        let quiet = QueryReport::default().to_string();
        assert!(!quiet.contains("cache:"));
    }
}
