//! Coordinator-side caches for the execution runtime.
//!
//! Two layers sit in front of the dispatch path:
//!
//! * [`PlanCache`] — parsed-query plans keyed by the raw query text, so
//!   repeated queries skip the parser entirely;
//! * [`ResultCache`] — per-site sub-query results keyed by
//!   `(node, fragment, epoch, normalized sub-query)`. The epoch is the
//!   node's per-collection write counter
//!   ([`Node::collection_epoch`](crate::Node::collection_epoch)), bumped
//!   on every `store_docs`/`drop_collection`: a write makes every older
//!   key unreachable, so stale entries can never be served — they simply
//!   age out of the FIFO.
//!
//! Both caches are capacity-bounded with FIFO eviction (no LRU juggling
//! on the hot path) and keep cumulative hit/miss counters, surfaced
//! per-query in [`QueryReport`](crate::QueryReport) and cumulatively via
//! [`PartiX::cache_stats`](crate::PartiX::cache_stats).

use parking_lot::Mutex;
use partix_query::{parse_query, Query, QueryParseError, Sequence};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative counters across both coordinator caches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
}

/// Capacity-bounded map with FIFO eviction.
struct BoundedMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> BoundedMap<K, V> {
    fn new(capacity: usize) -> BoundedMap<K, V> {
        BoundedMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(oldest) = self.order.pop_front() {
                    self.map.remove(&oldest);
                } else {
                    break;
                }
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

// ---------------------------------------------------------- plan cache --

/// Parsed-plan cache keyed by query text.
pub struct PlanCache {
    plans: Mutex<BoundedMap<String, Arc<Query>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            plans: Mutex::new(BoundedMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cached plan for `text`, parsing (and caching) on miss. The flag
    /// is `true` on a hit.
    pub fn get_or_parse(&self, text: &str) -> Result<(Arc<Query>, bool), QueryParseError> {
        if let Some(plan) = self.plans.lock().get(&text.to_owned()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            crate::metrics::global().counter("cache.plan.hits").inc();
            return Ok((Arc::clone(plan), true));
        }
        let plan = Arc::new(parse_query(text)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        crate::metrics::global().counter("cache.plan.misses").inc();
        self.plans.lock().insert(text.to_owned(), Arc::clone(&plan));
        Ok((plan, false))
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

// -------------------------------------------------------- result cache --

/// Identity of one cacheable sub-query execution. The `epoch` component
/// makes invalidation free: any write to the fragment's collection bumps
/// the node epoch, so subsequent lookups hash to a different key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    pub node: usize,
    pub fragment: String,
    pub epoch: u64,
    pub avg_mode: bool,
    /// Normalized sub-query: the debug rendering of the rewritten AST
    /// (stable for a given expression, independent of source whitespace
    /// or the original collection name).
    pub fingerprint: String,
}

impl ResultKey {
    pub fn new(
        node: usize,
        fragment: &str,
        epoch: u64,
        avg_mode: bool,
        query: &Query,
    ) -> ResultKey {
        ResultKey {
            node,
            fragment: fragment.to_owned(),
            epoch,
            avg_mode,
            fingerprint: format!("{:?}", query.expr),
        }
    }
}

/// A cached site result: everything needed to replay the sub-query
/// answer without touching the node. Elapsed time is deliberately not
/// kept — a hit costs (approximately) nothing and is reported as such.
#[derive(Debug, Clone)]
pub struct CachedSite {
    pub items: Sequence,
    pub result_bytes: usize,
    pub docs_scanned: usize,
    pub index_used: bool,
    /// Morsels the original (uncached) execution split into — replayed
    /// on hits so reports stay honest about how the answer was computed.
    pub morsels: usize,
}

/// Sub-query result cache (see module docs for the invalidation story).
pub struct ResultCache {
    entries: Mutex<BoundedMap<ResultKey, CachedSite>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            entries: Mutex::new(BoundedMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn get(&self, key: &ResultKey) -> Option<CachedSite> {
        match self.entries.lock().get(key) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                crate::metrics::global().counter("cache.result.hits").inc();
                Some(entry.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                crate::metrics::global().counter("cache.result.misses").inc();
                None
            }
        }
    }

    pub fn insert(&self, key: ResultKey, site: CachedSite) {
        self.entries.lock().insert(key, site);
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_cache_hits_on_repeat() {
        let cache = PlanCache::new(8);
        let (a, hit_a) = cache.get_or_parse(r#"count(collection("c")/Item)"#).unwrap();
        let (b, hit_b) = cache.get_or_parse(r#"count(collection("c")/Item)"#).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn plan_cache_propagates_parse_errors() {
        let cache = PlanCache::new(8);
        assert!(cache.get_or_parse("for $").is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn plan_cache_evicts_fifo() {
        let cache = PlanCache::new(2);
        for q in [
            r#"count(collection("a")/X)"#,
            r#"count(collection("b")/X)"#,
            r#"count(collection("c")/X)"#,
        ] {
            cache.get_or_parse(q).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // oldest entry was evicted: re-requesting it is a miss
        let (_, hit) = cache.get_or_parse(r#"count(collection("a")/X)"#).unwrap();
        assert!(!hit);
    }

    fn key(fragment: &str, epoch: u64) -> ResultKey {
        let q = parse_query(r#"count(collection("f")/Item)"#).unwrap();
        ResultKey::new(0, fragment, epoch, false, &q)
    }

    fn site(bytes: usize) -> CachedSite {
        CachedSite {
            items: Vec::new(),
            result_bytes: bytes,
            docs_scanned: 1,
            index_used: false,
            morsels: 0,
        }
    }

    #[test]
    fn result_cache_roundtrip_and_epoch_isolation() {
        let cache = ResultCache::new(8);
        assert!(cache.get(&key("f1", 0)).is_none());
        cache.insert(key("f1", 0), site(10));
        assert_eq!(cache.get(&key("f1", 0)).unwrap().result_bytes, 10);
        // a bumped epoch reaches a different key: no stale hit possible
        assert!(cache.get(&key("f1", 1)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn result_key_distinguishes_queries_and_fragments() {
        let q1 = parse_query(r#"count(collection("f")/Item)"#).unwrap();
        let q2 = parse_query(r#"sum(for $i in collection("f")/Item return number($i/P))"#)
            .unwrap();
        assert_ne!(
            ResultKey::new(0, "f1", 0, false, &q1),
            ResultKey::new(0, "f1", 0, false, &q2)
        );
        assert_ne!(key("f1", 0), key("f2", 0));
        // identical expressions fingerprint identically
        let q1b = parse_query(r#"count(collection("f")/Item)"#).unwrap();
        assert_eq!(
            ResultKey::new(0, "f1", 0, false, &q1),
            ResultKey::new(0, "f1", 0, false, &q1b)
        );
    }

    #[test]
    fn result_cache_evicts_at_capacity() {
        let cache = ResultCache::new(2);
        cache.insert(key("f1", 0), site(1));
        cache.insert(key("f2", 0), site(2));
        cache.insert(key("f3", 0), site(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("f1", 0)).is_none());
        assert!(cache.get(&key("f3", 0)).is_some());
    }
}
