//! Result composition: combining per-fragment partial results.
//!
//! Non-aggregate queries concatenate partials in fragment-definition
//! order (the horizontal reconstruction `∪`). Distributive aggregates are
//! evaluated *locally on each node* and combined here — the paper
//! highlights `count` as "entirely evaluated in parallel, not requiring
//! additional time for reconstructing the global result".

use partix_query::ast::{Expr, Query};
use partix_query::{Item, Sequence};

/// How a query's result decomposes over fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Composition {
    /// Concatenate partial sequences (σ/π queries).
    Concat,
    /// `count` partials are summed.
    CountSum,
    /// `sum` partials are summed.
    SumSum,
    /// `min`/`max` partials are reduced with the same function.
    MinMin,
    MaxMax,
    /// `avg` is computed from per-fragment `sum` and `count` partials.
    Avg,
}

/// Classify the top-level expression of a query.
pub fn classify(query: &Query) -> Composition {
    match &query.expr {
        Expr::Call { name, args } if args.len() == 1 => match name.as_str() {
            "count" => Composition::CountSum,
            "sum" => Composition::SumSum,
            "min" => Composition::MinMin,
            "max" => Composition::MaxMax,
            "avg" => Composition::Avg,
            _ => Composition::Concat,
        },
        _ => Composition::Concat,
    }
}

/// For [`Composition::Avg`], the two sub-queries sent to every node in
/// place of the original: `(sum-query, count-query)`.
pub fn avg_decomposition(query: &Query) -> Option<(Query, Query)> {
    let Expr::Call { name, args } = &query.expr else {
        return None;
    };
    if name != "avg" || args.len() != 1 {
        return None;
    }
    let inner = args[0].clone();
    let sum_q = Query {
        expr: Expr::Call { name: "sum".into(), args: vec![inner.clone()] },
    };
    let count_q = Query { expr: Expr::Call { name: "count".into(), args: vec![inner] } };
    Some((sum_q, count_q))
}

/// Combine partial sequences according to the composition rule.
///
/// For [`Composition::Avg`], `partials` must hold, per site, the pair
/// `[sum, count]` produced by [`avg_decomposition`].
pub fn combine(composition: Composition, partials: Vec<Sequence>) -> Sequence {
    match composition {
        Composition::Concat => partials.into_iter().flatten().collect(),
        Composition::CountSum | Composition::SumSum => {
            let total: f64 = partials
                .iter()
                .filter_map(|p| p.first())
                .filter_map(Item::number_value)
                .sum();
            vec![Item::Num(total)]
        }
        Composition::MinMin => reduce_numeric(partials, f64::min),
        Composition::MaxMax => reduce_numeric(partials, f64::max),
        Composition::Avg => {
            let mut total = 0.0;
            let mut count = 0.0;
            for pair in &partials {
                let s = pair.first().and_then(Item::number_value).unwrap_or(0.0);
                let c = pair.get(1).and_then(Item::number_value).unwrap_or(0.0);
                total += s;
                count += c;
            }
            if count == 0.0 {
                vec![]
            } else {
                vec![Item::Num(total / count)]
            }
        }
    }
}

fn reduce_numeric(partials: Vec<Sequence>, f: fn(f64, f64) -> f64) -> Sequence {
    let values: Vec<f64> = partials
        .iter()
        .filter_map(|p| p.first())
        .filter_map(Item::number_value)
        .collect();
    match values.into_iter().reduce(f) {
        Some(v) => vec![Item::Num(v)],
        None => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;

    #[test]
    fn classification() {
        let cases = [
            (r#"for $i in collection("c")/a return $i"#, Composition::Concat),
            (r#"count(for $i in collection("c")/a return $i)"#, Composition::CountSum),
            (r#"sum(collection("c")/a/v)"#, Composition::SumSum),
            (r#"min(collection("c")/a/v)"#, Composition::MinMin),
            (r#"max(collection("c")/a/v)"#, Composition::MaxMax),
            (r#"avg(collection("c")/a/v)"#, Composition::Avg),
            (r#"string(collection("c")/a)"#, Composition::Concat),
        ];
        for (src, expected) in cases {
            assert_eq!(classify(&parse_query(src).unwrap()), expected, "{src}");
        }
    }

    #[test]
    fn count_partials_sum() {
        let out = combine(
            Composition::CountSum,
            vec![vec![Item::Num(2.0)], vec![Item::Num(5.0)], vec![Item::Num(0.0)]],
        );
        assert_eq!(out, vec![Item::Num(7.0)]);
    }

    #[test]
    fn min_max_reduce() {
        let parts = vec![vec![Item::Num(4.0)], vec![], vec![Item::Num(9.0)]];
        assert_eq!(combine(Composition::MinMin, parts.clone()), vec![Item::Num(4.0)]);
        assert_eq!(combine(Composition::MaxMax, parts), vec![Item::Num(9.0)]);
        assert_eq!(combine(Composition::MinMin, vec![vec![], vec![]]), vec![]);
    }

    #[test]
    fn avg_weighted_by_counts() {
        // site A: sum 10 over 2 items; site B: sum 50 over 3 items
        let out = combine(
            Composition::Avg,
            vec![
                vec![Item::Num(10.0), Item::Num(2.0)],
                vec![Item::Num(50.0), Item::Num(3.0)],
            ],
        );
        assert_eq!(out, vec![Item::Num(12.0)]);
        assert_eq!(combine(Composition::Avg, vec![]), vec![]);
    }

    #[test]
    fn avg_decomposes_into_sum_and_count() {
        let q = parse_query(r#"avg(collection("c")/a/v)"#).unwrap();
        let (s, c) = avg_decomposition(&q).unwrap();
        assert_eq!(classify(&s), Composition::SumSum);
        assert_eq!(classify(&c), Composition::CountSum);
        let non_avg = parse_query(r#"count(collection("c")/a)"#).unwrap();
        assert!(avg_decomposition(&non_avg).is_none());
    }

    #[test]
    fn concat_keeps_fragment_order() {
        let out = combine(
            Composition::Concat,
            vec![
                vec![Item::Str("a".into())],
                vec![],
                vec![Item::Str("b".into()), Item::Str("c".into())],
            ],
        );
        let strs: Vec<String> = out.iter().map(Item::string_value).collect();
        assert_eq!(strs, ["a", "b", "c"]);
    }
}
