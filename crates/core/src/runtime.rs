//! Persistent per-node worker pools for [`DispatchMode::Pool`](crate::DispatchMode).
//!
//! `DispatchMode::Threads` spawns one OS thread per sub-query per call —
//! fine for a single query, ruinous under concurrent clients. The pool
//! instead keeps a fixed set of worker threads *per node* (mirroring one
//! connection pool per remote site in a real deployment), each draining
//! a bounded task queue. Concurrent `PartiX::execute` calls share the
//! same workers; the bounded queues provide backpressure instead of
//! unbounded thread growth.
//!
//! Each node's queue is a [`DrrScheduler`]: one FIFO lane per
//! [`PriorityClass`], drained deficit-round-robin so an aggressive
//! tenant's class gets its weighted share of worker time and nothing
//! more — a backlogged class always drains within one rotation.
//!
//! Jobs are plain boxed closures; callers thread their own reply channel
//! through the closure, so the pool needs no knowledge of result types.

use crate::cluster::Cluster;
use crate::metrics;
use partix_tenant::{DrrScheduler, PriorityClass};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work routed to one node's workers.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Sizing knobs for the per-node worker pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads per node (≥ 1).
    pub workers_per_node: usize,
    /// Bounded depth of each node's task queue (across all priority
    /// classes); submissions beyond this block, providing backpressure
    /// (≥ 1).
    pub queue_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig { workers_per_node: 4, queue_capacity: 128 }
    }
}

/// Per-class queue-depth gauge name — fairness must be observable, so
/// each class exposes its own depth next to the `pool.queue.depth`
/// total.
pub fn class_depth_gauge(class: PriorityClass) -> &'static str {
    match class {
        PriorityClass::Interactive => "pool.queue.depth.interactive",
        PriorityClass::Standard => "pool.queue.depth.standard",
        PriorityClass::Batch => "pool.queue.depth.batch",
    }
}

/// Decrements the queue-depth gauges exactly once, whichever way the
/// job ends: run to completion, panic mid-run (the unwind drops the
/// closure's captures inside the worker's `catch_unwind` firewall), or
/// dropped unrun at pool teardown.
struct DepthGuard {
    total: Arc<metrics::Gauge>,
    class: Arc<metrics::Gauge>,
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.total.dec();
        self.class.dec();
    }
}

struct QueueState {
    jobs: DrrScheduler<Job>,
    /// Cleared at shutdown; workers then drain what is queued and exit.
    open: bool,
}

struct NodeShared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Fixed per-node worker threads draining bounded, weighted-fair task
/// queues.
pub struct WorkerPool {
    nodes: Vec<Arc<NodeShared>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `config.workers_per_node` threads for each node of
    /// `cluster`. Queue index i serves cluster node index i.
    pub fn new(cluster: &Cluster, config: PoolConfig) -> WorkerPool {
        let workers_per_node = config.workers_per_node.max(1);
        let capacity = config.queue_capacity.max(1);
        let nodes: Vec<Arc<NodeShared>> = cluster
            .nodes()
            .iter()
            .map(|_| {
                Arc::new(NodeShared {
                    state: Mutex::new(QueueState {
                        jobs: DrrScheduler::new(),
                        open: true,
                    }),
                    not_empty: Condvar::new(),
                    not_full: Condvar::new(),
                    capacity,
                })
            })
            .collect();
        let mut workers = Vec::with_capacity(nodes.len() * workers_per_node);
        for (shared, node) in nodes.iter().zip(cluster.nodes()) {
            for w in 0..workers_per_node {
                let shared = Arc::clone(shared);
                workers.push(
                    std::thread::Builder::new()
                        .name(format!("partix-pool-n{}w{}", node.id, w))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn pool worker"),
                );
            }
        }
        WorkerPool { nodes, workers }
    }

    /// Number of node queues (== cluster size at construction).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Enqueue `job` on `node`'s queue under `class`, blocking while the
    /// queue is at capacity. Returns `false` if `node` is out of range
    /// (cluster grew after the pool was built) or the pool is shutting
    /// down — caller should fall back to inline execution.
    pub fn submit(&self, node: usize, class: PriorityClass, job: Job) -> bool {
        let Some(shared) = self.nodes.get(node) else { return false };
        let reg = metrics::global();
        let completed = reg.counter("pool.jobs.completed");
        let guard = DepthGuard {
            total: reg.gauge("pool.queue.depth"),
            class: reg.gauge(class_depth_gauge(class)),
        };
        guard.total.inc();
        guard.class.inc();
        let job: Job = Box::new(move || {
            job();
            completed.inc();
            drop(guard); // depth released after the run — or by unwind/teardown
        });
        let mut state = shared.state.lock().expect("pool queue lock");
        while state.open && state.jobs.len() >= shared.capacity {
            state = shared.not_full.wait(state).expect("pool queue lock");
        }
        if !state.open {
            return false; // guard drop unwinds the gauges
        }
        state.jobs.push(class, job);
        drop(state);
        shared.not_empty.notify_one();
        reg.counter("pool.jobs.submitted").inc();
        true
    }
}

fn worker_loop(shared: &NodeShared) {
    let mut state = shared.state.lock().expect("pool queue lock");
    loop {
        if let Some((_, job)) = state.jobs.pop() {
            drop(state);
            shared.not_full.notify_one();
            // A panicking job must not take the worker down with it —
            // the node would silently shed capacity until its queue
            // wedged. The unwind still drops the job's captures, so the
            // depth gauges stay balanced.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            state = shared.state.lock().expect("pool queue lock");
            continue;
        }
        if !state.open {
            return; // drained after shutdown
        }
        state = shared.not_empty.wait(state).expect("pool queue lock");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every queue; workers drain whatever is queued and exit
        // their loops, blocked submitters give up with `false`.
        for shared in &self.nodes {
            shared.state.lock().expect("pool queue lock").open = false;
            shared.not_empty.notify_all();
            shared.not_full.notify_all();
        }
        for worker in std::mem::take(&mut self.workers) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crossbeam::channel::unbounded;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const STD: PriorityClass = PriorityClass::Standard;

    #[test]
    fn jobs_run_on_their_node_queue() {
        let cluster = Cluster::new(3);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        assert_eq!(pool.nodes(), 3);
        let (tx, rx) = unbounded();
        for node in 0..3 {
            for k in 0..4 {
                let tx = tx.clone();
                assert!(pool.submit(
                    node,
                    STD,
                    Box::new(move || {
                        tx.send(node * 10 + k).unwrap();
                    })
                ));
            }
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        let mut expected: Vec<usize> =
            (0..3).flat_map(|n| (0..4).map(move |k| n * 10 + k)).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(
            &cluster,
            PoolConfig { workers_per_node: 1, queue_capacity: 8 },
        );
        // silence the expected panic's default backtrace print
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        assert!(pool.submit(0, STD, Box::new(|| panic!("injected job panic"))));
        // the sole worker survived and keeps serving jobs
        let (tx, rx) = unbounded();
        for k in 0..4 {
            let tx = tx.clone();
            assert!(pool.submit(0, STD, Box::new(move || tx.send(k).unwrap())));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        std::panic::set_hook(prior);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn panicking_job_still_releases_the_depth_gauges() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(
            &cluster,
            PoolConfig { workers_per_node: 1, queue_capacity: 8 },
        );
        let reg = metrics::global();
        let total_before = reg.gauge("pool.queue.depth").get();
        let class_before = reg.gauge(class_depth_gauge(PriorityClass::Batch)).get();
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (tx, rx) = unbounded();
        assert!(pool.submit(
            0,
            PriorityClass::Batch,
            Box::new(move || {
                tx.send(()).unwrap();
                panic!("injected after-send panic");
            })
        ));
        rx.recv().unwrap();
        // wait for the unwind to finish dropping the job's captures
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while reg.gauge("pool.queue.depth").get() > total_before {
            assert!(std::time::Instant::now() < deadline, "gauge leaked by panic");
            std::thread::yield_now();
        }
        std::panic::set_hook(prior);
        assert_eq!(reg.gauge("pool.queue.depth").get(), total_before);
        assert_eq!(
            reg.gauge(class_depth_gauge(PriorityClass::Batch)).get(),
            class_before
        );
    }

    #[test]
    fn out_of_range_node_is_rejected() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        assert!(!pool.submit(5, STD, Box::new(|| {})));
    }

    #[test]
    fn submissions_feed_pool_metrics() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        let reg = metrics::global();
        let before = reg.counter("pool.jobs.submitted").get();
        let (tx, rx) = unbounded();
        for _ in 0..3 {
            let tx = tx.clone();
            assert!(pool.submit(0, STD, Box::new(move || tx.send(()).unwrap())));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 3);
        // the registry is process-global, so assert deltas, not totals
        assert!(reg.counter("pool.jobs.submitted").get() >= before + 3);
        assert!(reg.counter("pool.jobs.completed").get() >= 3);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let cluster = Cluster::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(
                &cluster,
                PoolConfig { workers_per_node: 1, queue_capacity: 64 },
            );
            for _ in 0..32 {
                for node in 0..2 {
                    let counter = Arc::clone(&counter);
                    pool.submit(
                        node,
                        STD,
                        Box::new(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                }
            }
        } // drop: workers must finish everything already queued
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn interactive_backlog_cannot_starve_batch() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(
            &cluster,
            PoolConfig { workers_per_node: 1, queue_capacity: 256 },
        );
        // Stall the single worker so every later submission queues, then
        // fill interactive far deeper than batch.
        let (gate_tx, gate_rx) = unbounded::<()>();
        assert!(pool.submit(0, STD, Box::new(move || gate_rx.recv().unwrap())));
        let (tx, rx) = unbounded::<&'static str>();
        for _ in 0..100 {
            let tx = tx.clone();
            assert!(pool.submit(0, PriorityClass::Interactive, Box::new(move || {
                tx.send("i").unwrap();
            })));
        }
        {
            let tx = tx.clone();
            assert!(pool.submit(0, PriorityClass::Batch, Box::new(move || {
                tx.send("b").unwrap();
            })));
        }
        drop(tx);
        gate_tx.send(()).unwrap();
        let drained: Vec<&str> = rx.iter().collect();
        assert_eq!(drained.len(), 101);
        let batch_at = drained.iter().position(|s| *s == "b").expect("batch ran");
        // DRR: the lone batch job surfaces within one interactive
        // quantum, not after the 100-deep interactive backlog.
        assert!(
            batch_at as u64 <= PriorityClass::Interactive.weight(),
            "batch starved until position {batch_at}"
        );
    }
}
