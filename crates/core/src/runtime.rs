//! Persistent per-node worker pools for [`DispatchMode::Pool`](crate::DispatchMode).
//!
//! `DispatchMode::Threads` spawns one OS thread per sub-query per call —
//! fine for a single query, ruinous under concurrent clients. The pool
//! instead keeps a fixed set of worker threads *per node* (mirroring one
//! connection pool per remote site in a real deployment), each draining
//! a bounded task queue. Concurrent `PartiX::execute` calls share the
//! same workers; the bounded queues provide backpressure instead of
//! unbounded thread growth.
//!
//! Jobs are plain boxed closures; callers thread their own reply channel
//! through the closure, so the pool needs no knowledge of result types.

use crate::cluster::Cluster;
use crate::metrics;
use crossbeam::channel::{bounded, Sender};
use std::thread::JoinHandle;

/// A unit of work routed to one node's workers.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Sizing knobs for the per-node worker pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads per node (≥ 1).
    pub workers_per_node: usize,
    /// Bounded depth of each node's task queue; submissions beyond this
    /// block, providing backpressure (≥ 1).
    pub queue_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig { workers_per_node: 4, queue_capacity: 128 }
    }
}

struct NodeQueue {
    sender: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

/// Fixed per-node worker threads draining bounded task queues.
pub struct WorkerPool {
    queues: Vec<NodeQueue>,
}

impl WorkerPool {
    /// Spawn `config.workers_per_node` threads for each node of
    /// `cluster`. Queue index i serves cluster node index i.
    pub fn new(cluster: &Cluster, config: PoolConfig) -> WorkerPool {
        let workers_per_node = config.workers_per_node.max(1);
        let capacity = config.queue_capacity.max(1);
        let queues = cluster
            .nodes()
            .iter()
            .map(|node| {
                let (sender, receiver) = bounded::<Job>(capacity);
                let workers = (0..workers_per_node)
                    .map(|w| {
                        let receiver = receiver.clone();
                        std::thread::Builder::new()
                            .name(format!("partix-pool-n{}w{}", node.id, w))
                            .spawn(move || {
                                // Iteration ends when every sender is gone.
                                for job in receiver.iter() {
                                    // A panicking job must not take the
                                    // worker down with it — the node
                                    // would silently shed capacity until
                                    // its queue wedged.
                                    let _ = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(job),
                                    );
                                }
                            })
                            .expect("spawn pool worker")
                    })
                    .collect();
                NodeQueue { sender, workers }
            })
            .collect();
        WorkerPool { queues }
    }

    /// Number of node queues (== cluster size at construction).
    pub fn nodes(&self) -> usize {
        self.queues.len()
    }

    /// Enqueue `job` on `node`'s queue, blocking while the queue is
    /// full. Returns `false` if `node` is out of range (cluster grew
    /// after the pool was built) — caller should fall back to inline
    /// execution.
    pub fn submit(&self, node: usize, job: Job) -> bool {
        let Some(queue) = self.queues.get(node) else { return false };
        let reg = metrics::global();
        let depth = reg.gauge("pool.queue.depth");
        let completed = reg.counter("pool.jobs.completed");
        depth.inc();
        let job: Job = Box::new(move || {
            depth.dec();
            job();
            completed.inc();
        });
        if queue.sender.send(job).is_ok() {
            reg.counter("pool.jobs.submitted").inc();
            true
        } else {
            reg.gauge("pool.queue.depth").dec();
            false
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Dropping senders disconnects the channels; workers drain
        // whatever is queued and exit their receive loops.
        let queues = std::mem::take(&mut self.queues);
        let mut all_workers = Vec::new();
        for queue in queues {
            drop(queue.sender);
            all_workers.extend(queue.workers);
        }
        for worker in all_workers {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crossbeam::channel::unbounded;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn jobs_run_on_their_node_queue() {
        let cluster = Cluster::new(3);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        assert_eq!(pool.nodes(), 3);
        let (tx, rx) = unbounded();
        for node in 0..3 {
            for k in 0..4 {
                let tx = tx.clone();
                assert!(pool.submit(
                    node,
                    Box::new(move || {
                        tx.send(node * 10 + k).unwrap();
                    })
                ));
            }
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        let mut expected: Vec<usize> =
            (0..3).flat_map(|n| (0..4).map(move |k| n * 10 + k)).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(
            &cluster,
            PoolConfig { workers_per_node: 1, queue_capacity: 8 },
        );
        // silence the expected panic's default backtrace print
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        assert!(pool.submit(0, Box::new(|| panic!("injected job panic"))));
        // the sole worker survived and keeps serving jobs
        let (tx, rx) = unbounded();
        for k in 0..4 {
            let tx = tx.clone();
            assert!(pool.submit(0, Box::new(move || tx.send(k).unwrap())));
        }
        drop(tx);
        let mut seen: Vec<usize> = rx.iter().collect();
        std::panic::set_hook(prior);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn out_of_range_node_is_rejected() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        assert!(!pool.submit(5, Box::new(|| {})));
    }

    #[test]
    fn submissions_feed_pool_metrics() {
        let cluster = Cluster::new(1);
        let pool = WorkerPool::new(&cluster, PoolConfig::default());
        let reg = metrics::global();
        let before = reg.counter("pool.jobs.submitted").get();
        let (tx, rx) = unbounded();
        for _ in 0..3 {
            let tx = tx.clone();
            assert!(pool.submit(0, Box::new(move || tx.send(()).unwrap())));
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 3);
        // the registry is process-global, so assert deltas, not totals
        assert!(reg.counter("pool.jobs.submitted").get() >= before + 3);
        assert!(reg.counter("pool.jobs.completed").get() >= 3);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let cluster = Cluster::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(
                &cluster,
                PoolConfig { workers_per_node: 1, queue_capacity: 64 },
            );
            for _ in 0..32 {
                for node in 0..2 {
                    let counter = Arc::clone(&counter);
                    pool.submit(
                        node,
                        Box::new(move || {
                            counter.fetch_add(1, Ordering::Relaxed);
                        }),
                    );
                }
            }
        } // drop: workers must finish everything already queued
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }
}
