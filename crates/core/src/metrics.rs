//! Process-wide metrics: named counters, gauges, and log-bucket latency
//! histograms, all updated lock-free through atomics.
//!
//! Instruments are registered on first use (`registry.counter("x")`
//! get-or-creates) and live for the life of the process, so hot paths
//! hold an `Arc<Counter>` and pay a single `fetch_add` per event. The
//! [`MetricsRegistry`] lock guards only the name→instrument map, never
//! the instrument values.
//!
//! Histograms use 48 fixed power-of-two buckets over microseconds
//! (1 µs … ~2^47 µs ≈ 4.5 years), giving ≤ 2× relative quantile error
//! with zero allocation and no locking — the same shape HdrHistogram-
//! style recorders use, simplified for an offline, dependency-free
//! build.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (queue depths, in-flight work). May go negative
/// transiently when decrements race ahead of increments.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds, bucket 0 also absorbs sub-µs samples.
const BUCKETS: usize = 48;

/// Lock-free latency histogram over fixed log-2 microsecond buckets.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(us: u64) -> usize {
        // floor(log2(us)) clamped to the table; 0 and 1 µs share bucket 0.
        (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Representative (upper-bound) value of a bucket, in seconds.
    fn bucket_upper_secs(i: usize) -> f64 {
        (1u64 << (i + 1).min(63)) as f64 / 1e6
    }

    pub fn record_secs(&self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        let us = (secs * 1e6) as u64;
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean_secs(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / 1e6 / n as f64
    }

    /// Approximate quantile (`p` in 0..=100) as the upper bound of the
    /// bucket holding the p-th sample; 0.0 when empty. Error is bounded
    /// by the 2× bucket width.
    pub fn percentile_secs(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().clamp(1.0, n as f64) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_upper_secs(i);
            }
        }
        Self::bucket_upper_secs(BUCKETS - 1)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean_secs", &self.mean_secs())
            .finish()
    }
}

/// One instrument's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// (count, mean seconds, p50 seconds, p99 seconds)
    Histogram(u64, f64, f64, f64),
}

/// A point-in-time, name-sorted view of every registered instrument.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience for counters: the value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return writeln!(f, "(no metrics recorded)");
        }
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => writeln!(f, "{name:<28} {v}")?,
                MetricValue::Gauge(v) => writeln!(f, "{name:<28} {v}")?,
                MetricValue::Histogram(n, mean, p50, p99) => writeln!(
                    f,
                    "{name:<28} n={n} mean={:.3}ms p50={:.3}ms p99={:.3}ms",
                    mean * 1e3,
                    p50 * 1e3,
                    p99 * 1e3,
                )?,
            }
        }
        Ok(())
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named-instrument registry. The lock covers only registration and
/// snapshotting; recording goes straight to the shared atomics.
#[derive(Default)]
pub struct MetricsRegistry {
    instruments: RwLock<BTreeMap<String, Instrument>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Instrument::Counter(c)) = self.instruments.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.instruments.write();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Instrument::Gauge(g)) = self.instruments.read().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.instruments.write();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Instrument::Histogram(h)) = self.instruments.read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.instruments.write();
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let entries = self
            .instruments
            .read()
            .iter()
            .map(|(name, inst)| {
                let value = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(
                        h.count(),
                        h.mean_secs(),
                        h.percentile_secs(50.0),
                        h.percentile_secs(99.0),
                    ),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }
}

/// The process-wide registry every PartiX component records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("queries");
        c.inc();
        c.add(4);
        // second lookup returns the same instrument
        assert_eq!(reg.counter("queries").get(), 5);

        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(reg.gauge("depth").get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::default();
        for ms in [1.0, 2.0, 4.0, 8.0, 100.0] {
            h.record_secs(ms / 1e3);
        }
        assert_eq!(h.count(), 5);
        // p50 bucket upper bound must cover the 4ms sample but is at
        // most 2x above it
        let p50 = h.percentile_secs(50.0);
        assert!((0.004..=0.008).contains(&p50), "p50={p50}");
        let p99 = h.percentile_secs(99.0);
        assert!(p99 >= 0.1, "p99={p99}");
        assert!((h.mean_secs() - 0.023).abs() < 0.001);
    }

    #[test]
    fn histogram_ignores_junk_and_handles_empty() {
        let h = Histogram::default();
        assert_eq!(h.percentile_secs(99.0), 0.0);
        assert_eq!(h.mean_secs(), 0.0);
        h.record_secs(f64::NAN);
        h.record_secs(f64::INFINITY);
        h.record_secs(-1.0);
        assert_eq!(h.count(), 0);
        h.record_secs(0.0); // sub-µs lands in bucket 0
        assert_eq!(h.count(), 1);
        assert!(h.percentile_secs(50.0) > 0.0);
    }

    #[test]
    fn bucket_index_is_monotonic_and_clamped() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        let mut last = 0;
        for us in [1u64, 5, 50, 500, 5_000, 50_000, 500_000] {
            let i = Histogram::bucket_index(us);
            assert!(i >= last);
            last = i;
        }
    }

    #[test]
    fn snapshot_lists_sorted_and_displays() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(2);
        reg.histogram("m.lat").record_secs(0.002);
        let snap = reg.snapshot();
        assert_eq!(snap.entries.len(), 3);
        assert_eq!(snap.entries[0].0, "a.first");
        assert_eq!(snap.counter("a.first"), 2);
        assert_eq!(snap.counter("missing"), 0);
        let text = snap.to_string();
        assert!(text.contains("z.last"));
        assert!(text.contains("p99="));
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let c = reg.counter("hits");
                    let h = reg.histogram("lat");
                    for _ in 0..1000 {
                        c.inc();
                        h.record_secs(0.001);
                    }
                });
            }
        });
        assert_eq!(reg.counter("hits").get(), 8000);
        assert_eq!(reg.histogram("lat").count(), 8000);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.probe").inc();
        assert!(global().snapshot().counter("test.global.probe") >= 1);
    }
}
