//! Cluster nodes and the network model.

use crate::driver::{DriverError, PartixDriver};
use partix_storage::Database;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One cluster node: a sequential XML DBMS plus availability state.
///
/// By default the node's data path goes to its embedded
/// [`Database`]; installing a [`PartixDriver`] with [`Node::set_driver`]
/// reroutes queries, stores and fetches through it instead — the paper's
/// pluggable-DBMS architecture.
pub struct Node {
    pub id: usize,
    pub name: String,
    pub db: Arc<Database>,
    driver: parking_lot::RwLock<Option<Arc<dyn PartixDriver>>>,
    available: AtomicBool,
    /// When set, the node recently failed a dispatch (timeout or crash):
    /// replica selection avoids it until `marked_at.elapsed() ≥ cooldown`
    /// so repeated queries stop paying the failure's latency. Stored as
    /// (mark time, cooldown) rather than a deadline `Instant` because
    /// `Instant + Duration` panics on overflow for huge cooldowns, while
    /// `elapsed() < cooldown` is saturating and total.
    suspect: parking_lot::Mutex<Option<(Instant, Duration)>>,
    /// Per-collection write epochs: bumped on every `store_docs` /
    /// `drop_collection`, whichever driver is active. The coordinator's
    /// result cache embeds the epoch in its keys, so a bump silently
    /// invalidates every cached sub-query over that collection.
    epochs: parking_lot::RwLock<HashMap<String, u64>>,
}

impl Node {
    pub fn new(id: usize) -> Node {
        Node {
            id,
            name: format!("node{id}"),
            db: Arc::new(Database::new()),
            driver: parking_lot::RwLock::new(None),
            available: AtomicBool::new(true),
            suspect: parking_lot::Mutex::new(None),
            epochs: parking_lot::RwLock::new(HashMap::new()),
        }
    }

    /// Install a custom DBMS driver on this node (replacing the embedded
    /// [`Database`] for queries, stores and fetches).
    pub fn set_driver(&self, driver: Arc<dyn PartixDriver>) {
        *self.driver.write() = Some(driver);
    }

    /// Remove a custom driver, returning to the embedded database.
    pub fn clear_driver(&self) {
        *self.driver.write() = None;
    }

    /// The driver currently serving this node's data path: the installed
    /// one, or the embedded database. Used to *wrap* the active driver
    /// (e.g. [`crate::faults::FaultInjector::install`] decorates whatever
    /// is already there).
    pub fn active_driver(&self) -> Arc<dyn PartixDriver> {
        match &*self.driver.read() {
            Some(driver) => Arc::clone(driver),
            None => Arc::clone(&self.db) as Arc<dyn PartixDriver>,
        }
    }

    /// Execute a query through the active driver.
    pub fn execute_query(
        &self,
        query: &partix_query::Query,
    ) -> Result<Option<partix_storage::QueryOutput>, DriverError> {
        match &*self.driver.read() {
            Some(driver) => driver.execute(query),
            None => PartixDriver::execute(&*self.db, query),
        }
    }

    /// Store documents through the active driver. Bumps the collection's
    /// write epoch, invalidating coordinator-cached sub-query results.
    pub fn store_docs(&self, collection: &str, docs: Vec<partix_xml::Document>) {
        match &*self.driver.read() {
            Some(driver) => driver.store(collection, docs),
            None => PartixDriver::store(&*self.db, collection, docs),
        }
        self.bump_epoch(collection);
    }

    /// Apply one online write through the active driver. Bumps the
    /// touched collection's write epoch — success or failure — so
    /// coordinator-cached sub-query results over it are invalidated even
    /// when the node died mid-pipeline (the write may still surface
    /// after recovery, so cached answers must not outlive the attempt).
    pub fn apply_write(
        &self,
        op: &partix_storage::WriteOp,
    ) -> Result<u32, DriverError> {
        let result = match &*self.driver.read() {
            Some(driver) => driver.write(op),
            None => PartixDriver::write(&*self.db, op),
        };
        self.bump_epoch(op.collection());
        result
    }

    /// Drop a collection through the active driver. Bumps the write
    /// epoch like any other mutation.
    pub fn drop_collection(&self, collection: &str) {
        match &*self.driver.read() {
            Some(driver) => driver.drop_collection(collection),
            None => PartixDriver::drop_collection(&*self.db, collection),
        }
        self.bump_epoch(collection);
    }

    /// Current write epoch of `collection` on this node (0 = never
    /// written since the node came up). When the embedded database is
    /// active, its own storage-level epoch is added in, so writes made
    /// directly through [`Node::db`] are visible too; a write through
    /// [`Node::store_docs`] may count twice, which is harmless — only
    /// monotonicity matters for invalidation.
    pub fn collection_epoch(&self, collection: &str) -> u64 {
        let local = self.epochs.read().get(collection).copied().unwrap_or(0);
        match &*self.driver.read() {
            Some(_) => local,
            None => local + self.db.collection_epoch(collection),
        }
    }

    fn bump_epoch(&self, collection: &str) {
        *self.epochs.write().entry(collection.to_owned()).or_insert(0) += 1;
    }

    /// Fetch a whole collection through the active driver.
    pub fn fetch_docs(&self, collection: &str) -> Vec<Arc<partix_xml::Document>> {
        match &*self.driver.read() {
            Some(driver) => driver.fetch_collection(collection),
            None => PartixDriver::fetch_collection(&*self.db, collection),
        }
    }

    /// Probe the active driver's health (a real ping for network-backed
    /// drivers) and fold the verdict into the availability/suspect
    /// machinery: a failed probe marks the node suspect for `cooldown`,
    /// a successful one clears any suspicion. Returns the probe verdict.
    pub fn probe_health(&self, cooldown: Duration) -> Result<(), DriverError> {
        match self.active_driver().health_check() {
            Ok(()) => {
                self.clear_suspect();
                Ok(())
            }
            Err(err) => {
                self.mark_suspect(cooldown);
                Err(err)
            }
        }
    }

    pub fn is_available(&self) -> bool {
        self.available.load(Ordering::Acquire)
    }

    /// Mark the node down/up — used for failure-injection tests.
    pub fn set_available(&self, up: bool) {
        self.available.store(up, Ordering::Release);
    }

    /// Flag the node as suspect for `cooldown`: replica selection skips
    /// it (when an alternative exists) until the cooldown expires, so a
    /// crashed or hanging node stops charging its timeout to every query.
    pub fn mark_suspect(&self, cooldown: Duration) {
        *self.suspect.lock() = Some((Instant::now(), cooldown));
    }

    /// Whether the node is inside a suspect cooldown window.
    pub fn is_suspect(&self) -> bool {
        match *self.suspect.lock() {
            Some((marked_at, cooldown)) => marked_at.elapsed() < cooldown,
            None => false,
        }
    }

    /// Clear the suspect flag — called after the node answers a dispatch
    /// successfully (it earned its way back into rotation).
    pub fn clear_suspect(&self) {
        *self.suspect.lock() = None;
    }
}

/// The set of nodes PartiX coordinates.
pub struct Cluster {
    nodes: Vec<Arc<Node>>,
}

impl Cluster {
    /// A cluster of `n` fresh nodes.
    pub fn new(n: usize) -> Cluster {
        assert!(n > 0, "a cluster needs at least one node");
        Cluster { nodes: (0..n).map(|i| Arc::new(Node::new(i))).collect() }
    }

    /// A cluster *view* over existing nodes — how replicated
    /// coordinators share one set of DBMS nodes: each coordinator owns
    /// its own `Cluster` wrapper, but the `Arc<Node>`s (databases,
    /// drivers, epochs, availability) are the same objects.
    pub fn from_nodes(nodes: Vec<Arc<Node>>) -> Cluster {
        assert!(!nodes.is_empty(), "a cluster needs at least one node");
        Cluster { nodes }
    }

    /// A new view sharing this cluster's nodes (see
    /// [`Cluster::from_nodes`]).
    pub fn share(&self) -> Cluster {
        Cluster { nodes: self.nodes.clone() }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: usize) -> Option<&Arc<Node>> {
        self.nodes.get(id)
    }

    pub fn nodes(&self) -> &[Arc<Node>] {
        &self.nodes
    }

    /// Apply the same morsel-parallelism knobs to every node's embedded
    /// database, so a single huge fragment parallelizes inside its node
    /// too. Network-backed drivers are unaffected — remote node servers
    /// read their knobs from the environment at startup.
    pub fn set_morsel_config(&self, config: partix_storage::MorselConfig) {
        for node in &self.nodes {
            node.db.set_morsel_config(config);
        }
    }
}

/// The simulated interconnect (paper Sec. 5: transmission time is the
/// result size divided by the Gigabit Ethernet speed; sub-query text is
/// charged one latency each way).
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency in seconds.
    pub latency_secs: f64,
}

impl Default for NetworkModel {
    /// Gigabit Ethernet: 1 Gbit/s ≈ 125 MB/s, 0.1 ms latency.
    fn default() -> NetworkModel {
        NetworkModel { bandwidth_bytes_per_sec: 125_000_000.0, latency_secs: 0.000_1 }
    }
}

impl NetworkModel {
    /// Time to move `bytes` across one link, including latency.
    pub fn transmission_time(&self, bytes: usize) -> f64 {
        self.latency_secs + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// An infinitely fast network — used to report results "without the
    /// transmission times" as the paper's FragModeX-NT series do.
    pub fn instantaneous() -> NetworkModel {
        NetworkModel { bandwidth_bytes_per_sec: f64::INFINITY, latency_secs: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_creation() {
        let c = Cluster::new(4);
        assert_eq!(c.len(), 4);
        assert_eq!(c.node(2).unwrap().name, "node2");
        assert!(c.node(4).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(0);
    }

    #[test]
    fn cluster_with_nodes_is_never_empty() {
        assert!(!Cluster::new(1).is_empty());
        assert_eq!(Cluster::new(2).len(), 2);
    }

    #[test]
    fn morsel_config_fans_out_to_every_node() {
        let c = Cluster::new(3);
        let config = partix_storage::MorselConfig { max_workers: 5, min_docs: 9 };
        c.set_morsel_config(config);
        for node in c.nodes() {
            assert_eq!(node.db.morsel_config(), config);
        }
    }

    #[test]
    fn epochs_bump_on_writes_and_drops() {
        let c = Cluster::new(1);
        let n = c.node(0).unwrap();
        assert_eq!(n.collection_epoch("f"), 0);
        n.store_docs("f", vec![partix_xml::parse("<a/>").unwrap()]);
        let e1 = n.collection_epoch("f");
        assert!(e1 >= 1);
        assert_eq!(n.collection_epoch("other"), 0);
        n.drop_collection("f");
        let e2 = n.collection_epoch("f");
        assert!(e2 > e1);
        assert!(n.fetch_docs("f").is_empty());
        // epochs survive the drop: a re-created collection keeps counting
        n.store_docs("f", vec![partix_xml::parse("<b/>").unwrap()]);
        let e3 = n.collection_epoch("f");
        assert!(e3 > e2);
        // writes bypassing the node (direct db access) are seen too
        n.db.store("f", partix_xml::parse("<c/>").unwrap());
        assert!(n.collection_epoch("f") > e3);
    }

    #[test]
    fn availability_toggles() {
        let c = Cluster::new(1);
        let n = c.node(0).unwrap();
        assert!(n.is_available());
        n.set_available(false);
        assert!(!n.is_available());
    }

    #[test]
    fn suspect_flag_expires_and_clears() {
        let c = Cluster::new(1);
        let n = c.node(0).unwrap();
        assert!(!n.is_suspect());
        n.mark_suspect(Duration::from_secs(60));
        assert!(n.is_suspect());
        n.clear_suspect();
        assert!(!n.is_suspect());
        // an already-expired cooldown is not suspect
        n.mark_suspect(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(!n.is_suspect());
    }

    #[test]
    fn extreme_cooldowns_never_panic() {
        let c = Cluster::new(1);
        let n = c.node(0).unwrap();
        // Duration::MAX would overflow `Instant::now() + cooldown`
        n.mark_suspect(Duration::MAX);
        assert!(n.is_suspect());
        n.clear_suspect();
        assert!(!n.is_suspect());
        // zero-width window is instantly expired, not underflowed
        n.mark_suspect(Duration::ZERO);
        assert!(!n.is_suspect());
    }

    #[test]
    fn gigabit_transmission_times() {
        let net = NetworkModel::default();
        // 125 MB at 125 MB/s ≈ 1 s (+latency)
        let t = net.transmission_time(125_000_000);
        assert!((t - 1.000_1).abs() < 1e-9);
        // small messages are latency-dominated
        assert!(net.transmission_time(100) < 0.001);
    }

    #[test]
    fn instantaneous_network_is_free() {
        let net = NetworkModel::instantaneous();
        assert_eq!(net.transmission_time(1_000_000_000), 0.0);
    }
}
