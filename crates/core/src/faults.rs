//! Deterministic fault injection for resilience tests and chaos runs.
//!
//! [`FaultInjector`] decorates any [`PartixDriver`] with a per-node
//! schedule of injected failures. Every fault is a pure function of the
//! injector's call counter, so a given schedule always fails the same
//! calls in the same way — re-running a chaos test with the same seed
//! replays the exact failure sequence ([`FaultPlan::from_seed`]).
//!
//! Fault kinds (mirroring how real deployments degrade):
//!
//! * [`Fault::ErrorAfter`] — the DBMS serves N queries then starts
//!   failing them ([`DriverError::Failed`]): a wedged engine that is
//!   still reachable.
//! * [`Fault::Latency`] — every call is slowed by a fixed real delay: a
//!   node with a saturated disk or link. Combined with the dispatcher's
//!   per-attempt deadline this produces *timeouts*, not errors.
//! * [`Fault::CrashAfter`] — the node serves N queries then becomes
//!   unreachable ([`DriverError::Unavailable`]) until
//!   [`FaultInjector::revive`] is called: a crash-until-revived outage.
//! * [`Fault::FlipFlop`] — availability cycles: `up` reachable calls,
//!   then `down` unreachable calls, repeating: a flapping node.
//!
//! The injector sits *below* the coordinator's availability check
//! (`Node::is_available` still reports `true`), which is exactly the
//! failure mode the plan-time check cannot see — the node dies or hangs
//! *after* the sub-query was dispatched to it. The retry/failover layer
//! in [`crate::service`] is what turns these injected faults back into
//! answered queries.

use crate::cluster::Node;
use crate::driver::{DriverError, PartixDriver};
use crate::service::PartiX;
use partix_query::Query;
use partix_storage::QueryOutput;
use partix_xml::Document;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injected failure behaviour. All kinds key off the injector's
/// per-node call counter, never wall-clock time, so schedules are
/// deterministic and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Serve `ok_calls` queries, then fail every later one with
    /// [`DriverError::Failed`] (DBMS wedged but reachable).
    ErrorAfter { ok_calls: usize },
    /// Delay every query by `millis` of real time (slow node). The
    /// delay also applies to calls that subsequently fail — a hanging
    /// node hangs before it errors.
    Latency { millis: u64 },
    /// Serve `ok_calls` queries, then answer [`DriverError::Unavailable`]
    /// until [`FaultInjector::revive`] is called (crash-until-revived).
    CrashAfter { ok_calls: usize },
    /// Cycle availability: `up` reachable calls, then `down` calls
    /// answering [`DriverError::Unavailable`], repeating.
    FlipFlop { up: usize, down: usize },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::ErrorAfter { ok_calls } => write!(f, "error-after-{ok_calls}"),
            Fault::Latency { millis } => write!(f, "latency-{millis}ms"),
            Fault::CrashAfter { ok_calls } => write!(f, "crash-after-{ok_calls}"),
            Fault::FlipFlop { up, down } => write!(f, "flipflop-{up}up{down}down"),
        }
    }
}

/// Cumulative injection counters of one [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectionStats {
    /// Queries that reached the injector.
    pub calls: usize,
    /// Calls answered with [`DriverError::Failed`].
    pub injected_errors: usize,
    /// Calls answered with [`DriverError::Unavailable`].
    pub injected_outages: usize,
    /// Calls slowed by an injected latency fault.
    pub delayed_calls: usize,
}

/// A [`PartixDriver`] decorator applying a fixed list of [`Fault`]s to
/// every query. Stores and fetches pass through unfaulted — publication
/// is not under test, query dispatch is.
pub struct FaultInjector {
    inner: Arc<dyn PartixDriver>,
    faults: Vec<Fault>,
    calls: AtomicUsize,
    revived: AtomicBool,
    injected_errors: AtomicUsize,
    injected_outages: AtomicUsize,
    delayed_calls: AtomicUsize,
}

impl FaultInjector {
    pub fn new(inner: Arc<dyn PartixDriver>, faults: Vec<Fault>) -> FaultInjector {
        FaultInjector {
            inner,
            faults,
            calls: AtomicUsize::new(0),
            revived: AtomicBool::new(false),
            injected_errors: AtomicUsize::new(0),
            injected_outages: AtomicUsize::new(0),
            delayed_calls: AtomicUsize::new(0),
        }
    }

    /// Wrap `node`'s active driver with `faults` and install the wrapper
    /// on the node. Returns a handle for [`FaultInjector::revive`] and
    /// [`FaultInjector::stats`].
    pub fn install(node: &Node, faults: Vec<Fault>) -> Arc<FaultInjector> {
        let injector = Arc::new(FaultInjector::new(node.active_driver(), faults));
        node.set_driver(Arc::clone(&injector) as Arc<dyn PartixDriver>);
        injector
    }

    /// End every [`Fault::CrashAfter`] outage: the node is reachable
    /// again (the crash-until-revived recovery).
    pub fn revive(&self) {
        self.revived.store(true, Ordering::Release);
    }

    /// The faults this injector applies.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    pub fn stats(&self) -> InjectionStats {
        InjectionStats {
            calls: self.calls.load(Ordering::Acquire),
            injected_errors: self.injected_errors.load(Ordering::Acquire),
            injected_outages: self.injected_outages.load(Ordering::Acquire),
            delayed_calls: self.delayed_calls.load(Ordering::Acquire),
        }
    }

    /// The fault verdict for call number `call` (0-based), ignoring
    /// latency faults. `None` = the call goes through to the inner
    /// driver.
    fn verdict(&self, call: usize) -> Option<DriverError> {
        for fault in &self.faults {
            match *fault {
                Fault::CrashAfter { ok_calls } => {
                    if call >= ok_calls && !self.revived.load(Ordering::Acquire) {
                        return Some(DriverError::Unavailable(format!(
                            "injected crash (call {call} >= {ok_calls})"
                        )));
                    }
                }
                Fault::FlipFlop { up, down } => {
                    let period = (up + down).max(1);
                    if call % period >= up {
                        return Some(DriverError::Unavailable(format!(
                            "injected flap (call {call}, {up}up/{down}down)"
                        )));
                    }
                }
                Fault::ErrorAfter { ok_calls } => {
                    if call >= ok_calls {
                        return Some(DriverError::Failed(format!(
                            "injected DBMS error (call {call} >= {ok_calls})"
                        )));
                    }
                }
                Fault::Latency { .. } => {}
            }
        }
        None
    }
}

impl PartixDriver for FaultInjector {
    fn execute(&self, query: &Query) -> Result<Option<QueryOutput>, DriverError> {
        let call = self.calls.fetch_add(1, Ordering::AcqRel);
        let delay: u64 = self
            .faults
            .iter()
            .map(|f| match f {
                Fault::Latency { millis } => *millis,
                _ => 0,
            })
            .sum();
        if delay > 0 {
            self.delayed_calls.fetch_add(1, Ordering::AcqRel);
            std::thread::sleep(Duration::from_millis(delay));
        }
        if let Some(err) = self.verdict(call) {
            match &err {
                DriverError::Unavailable(_) => {
                    self.injected_outages.fetch_add(1, Ordering::AcqRel)
                }
                DriverError::Failed(_) => {
                    self.injected_errors.fetch_add(1, Ordering::AcqRel)
                }
            };
            return Err(err);
        }
        self.inner.execute(query)
    }

    fn store(&self, collection: &str, docs: Vec<Document>) {
        self.inner.store(collection, docs);
    }

    fn fetch_collection(&self, collection: &str) -> Vec<Arc<Document>> {
        self.inner.fetch_collection(collection)
    }

    fn collections(&self) -> Vec<String> {
        self.inner.collections()
    }

    fn drop_collection(&self, collection: &str) {
        self.inner.drop_collection(collection);
    }

    fn health_check(&self) -> Result<(), DriverError> {
        self.inner.health_check()
    }

    fn counts_wire_bytes(&self) -> bool {
        self.inner.counts_wire_bytes()
    }

    /// Writes pass through unfaulted, like stores and fetches: the fault
    /// schedules target the query path, while write-path crash testing
    /// injects at the WAL stages ([`partix_storage::WalStage`]) where the
    /// recovery outcome is deterministic.
    fn write(&self, op: &partix_storage::WriteOp) -> Result<u32, DriverError> {
        self.inner.write(op)
    }
}

// ----------------------------------------------------- seeded schedules --

/// SplitMix64 step — a tiny deterministic generator so schedules do not
/// depend on any external RNG (and therefore reproduce bit-for-bit on
/// every platform).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `0..bound` (Lemire multiply-shift; the tiny bias is
/// irrelevant for fault scheduling).
fn draw(state: &mut u64, bound: u64) -> u64 {
    ((splitmix(state) as u128 * bound as u128) >> 64) as u64
}

/// A whole cluster's fault schedule, derived deterministically from a
/// seed: node `i` always receives the same faults for the same
/// `(seed, nodes, rate)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    /// Per-node probability of being faulty at all.
    pub rate: f64,
    /// `node_faults[i]` = faults injected on cluster node `i`.
    pub node_faults: Vec<Vec<Fault>>,
}

impl FaultPlan {
    /// Build the schedule for a `nodes`-node cluster. `rate` is the
    /// probability each node draws any fault; a faulty node receives one
    /// or two fault kinds with bounded parameters (latencies 20–120 ms,
    /// outages after 1–12 served calls, flaps of a few calls each way).
    pub fn from_seed(seed: u64, nodes: usize, rate: f64) -> FaultPlan {
        let mut node_faults = Vec::with_capacity(nodes);
        for node in 0..nodes {
            // decorrelate nodes while keeping each node's schedule a
            // function of (seed, node) only — independent of cluster size
            let mut state = seed ^ (node as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            let faulty = (draw(&mut state, 1_000_000) as f64 / 1e6) < rate;
            if !faulty {
                node_faults.push(Vec::new());
                continue;
            }
            let count = 1 + draw(&mut state, 2) as usize;
            let mut faults = Vec::with_capacity(count);
            for _ in 0..count {
                let fault = match draw(&mut state, 4) {
                    0 => Fault::ErrorAfter { ok_calls: 1 + draw(&mut state, 12) as usize },
                    1 => Fault::Latency { millis: 20 + draw(&mut state, 100) },
                    2 => Fault::CrashAfter { ok_calls: 1 + draw(&mut state, 12) as usize },
                    _ => Fault::FlipFlop {
                        up: 1 + draw(&mut state, 4) as usize,
                        down: 1 + draw(&mut state, 3) as usize,
                    },
                };
                // keep at most one fault of each discriminant per node
                if !faults
                    .iter()
                    .any(|f| std::mem::discriminant(f) == std::mem::discriminant(&fault))
                {
                    faults.push(fault);
                }
            }
            node_faults.push(faults);
        }
        FaultPlan { seed, rate, node_faults }
    }

    /// Install the plan on every node of `px`, wrapping each node's
    /// active driver. Fault-free nodes are left untouched. Returns the
    /// injector handles in node order (`None` for untouched nodes).
    pub fn install(&self, px: &PartiX) -> Vec<Option<Arc<FaultInjector>>> {
        let cluster = px.cluster();
        (0..cluster.len())
            .map(|i| {
                let faults = self.node_faults.get(i).cloned().unwrap_or_default();
                if faults.is_empty() {
                    return None;
                }
                let node = cluster.node(i).expect("node in range");
                Some(FaultInjector::install(node, faults))
            })
            .collect()
    }

    /// Stable one-line rendering of the schedule — two runs with the
    /// same seed must produce byte-identical descriptions (the
    /// reproducibility contract chaos tests assert on).
    pub fn describe(&self) -> String {
        let mut out = format!("seed={:#x} rate={:.2}", self.seed, self.rate);
        for (node, faults) in self.node_faults.iter().enumerate() {
            if faults.is_empty() {
                continue;
            }
            let list: Vec<String> = faults.iter().map(Fault::to_string).collect();
            out.push_str(&format!(" n{node}:[{}]", list.join(",")));
        }
        out
    }

    /// Nodes that drew at least one fault.
    pub fn faulty_nodes(&self) -> Vec<usize> {
        self.node_faults
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;
    use partix_storage::Database;
    use partix_xml::parse;

    fn db() -> Arc<Database> {
        let db = Database::new();
        let mut d = parse("<Item><Code>1</Code></Item>").unwrap();
        d.name = Some("i1".into());
        db.store("items", d);
        Arc::new(db)
    }

    fn count_query() -> Query {
        parse_query(r#"count(collection("items")/Item)"#).unwrap()
    }

    #[test]
    fn error_after_n_calls() {
        let inj = FaultInjector::new(db(), vec![Fault::ErrorAfter { ok_calls: 2 }]);
        let q = count_query();
        assert!(inj.execute(&q).is_ok());
        assert!(inj.execute(&q).is_ok());
        assert!(matches!(inj.execute(&q), Err(DriverError::Failed(_))));
        assert!(matches!(inj.execute(&q), Err(DriverError::Failed(_))));
        let stats = inj.stats();
        assert_eq!((stats.calls, stats.injected_errors), (4, 2));
    }

    #[test]
    fn crash_until_revived() {
        let inj = FaultInjector::new(db(), vec![Fault::CrashAfter { ok_calls: 1 }]);
        let q = count_query();
        assert!(inj.execute(&q).is_ok());
        assert!(matches!(inj.execute(&q), Err(DriverError::Unavailable(_))));
        inj.revive();
        assert!(inj.execute(&q).is_ok());
        assert_eq!(inj.stats().injected_outages, 1);
    }

    #[test]
    fn flip_flop_cycles_deterministically() {
        let inj = FaultInjector::new(db(), vec![Fault::FlipFlop { up: 2, down: 1 }]);
        let q = count_query();
        let pattern: Vec<bool> = (0..9).map(|_| inj.execute(&q).is_ok()).collect();
        assert_eq!(
            pattern,
            [true, true, false, true, true, false, true, true, false]
        );
    }

    #[test]
    fn latency_fault_delays_calls() {
        let inj = FaultInjector::new(db(), vec![Fault::Latency { millis: 30 }]);
        let q = count_query();
        let start = std::time::Instant::now();
        assert!(inj.execute(&q).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(inj.stats().delayed_calls, 1);
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let a = FaultPlan::from_seed(42, 8, 0.5);
        let b = FaultPlan::from_seed(42, 8, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.describe(), b.describe());
        // a node's schedule does not depend on cluster size
        let wider = FaultPlan::from_seed(42, 16, 0.5);
        assert_eq!(a.node_faults, wider.node_faults[..8]);
        // different seeds diverge (with 8 nodes the chance of an
        // identical schedule is negligible)
        let c = FaultPlan::from_seed(43, 8, 0.5);
        assert_ne!(a.describe(), c.describe());
    }

    #[test]
    fn plan_rate_bounds() {
        assert!(FaultPlan::from_seed(7, 32, 0.0).faulty_nodes().is_empty());
        assert_eq!(FaultPlan::from_seed(7, 32, 1.0).faulty_nodes().len(), 32);
    }

    #[test]
    fn install_wraps_only_faulty_nodes() {
        let px = PartiX::new(3, crate::cluster::NetworkModel::default());
        let mut plan = FaultPlan::from_seed(1, 3, 0.0);
        plan.node_faults[1] = vec![Fault::ErrorAfter { ok_calls: 0 }];
        let handles = plan.install(&px);
        assert!(handles[0].is_none());
        assert!(handles[1].is_some());
        assert!(handles[2].is_none());
        // the wrapped node now fails queries; others still work
        let q = count_query();
        assert!(px.cluster().node(0).unwrap().execute_query(&q).is_ok());
        assert!(px.cluster().node(1).unwrap().execute_query(&q).is_err());
    }
}
