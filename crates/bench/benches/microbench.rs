//! Criterion microbenchmarks over the hot paths: XML parsing and
//! serialization, binary pages, path evaluation, predicate evaluation,
//! index probes, fragmentation operators, and the reconstruction join.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use partix_algebra::Projection;
use partix_frag::{check_correctness, FragmentDef, Fragmenter, FragmentationSchema};
use partix_gen::{gen_items, ItemProfile};
use partix_path::{eval_path, PathExpr, Predicate};
use partix_schema::{builtin, CollectionDef, RepoKind};
use partix_storage::{Database, StorageMode};
use partix_xml::{binary, parse, to_string, Document};
use std::sync::Arc;

fn sample_xml() -> String {
    to_string(&gen_items(1, ItemProfile::Large, 7)[0])
}

fn bench_xml(c: &mut Criterion) {
    let xml = sample_xml();
    let doc = parse(&xml).unwrap();
    let pages = binary::encode(&doc);
    let mut group = c.benchmark_group("xml");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_80kb", |b| b.iter(|| parse(&xml).unwrap()));
    group.bench_function("serialize_80kb", |b| b.iter(|| to_string(&doc)));
    group.bench_function("binary_encode_80kb", |b| b.iter(|| binary::encode(&doc)));
    group.bench_function("binary_decode_80kb", |b| b.iter(|| binary::decode(&pages).unwrap()));
    group.finish();
}

fn bench_path(c: &mut Criterion) {
    let doc = gen_items(1, ItemProfile::Large, 7).remove(0);
    let child_path = PathExpr::parse("/Item/PictureList/Picture").unwrap();
    let descendant_path = PathExpr::parse("//OriginalPath").unwrap();
    let positional = PathExpr::parse("/Item/PictureList/Picture[30]/Name").unwrap();
    let pred = Predicate::parse(
        r#"/Item/Section = "CD" and contains(//Description, "good")"#,
    )
    .unwrap();
    let mut group = c.benchmark_group("path");
    group.bench_function("child_steps", |b| b.iter(|| eval_path(&doc, &child_path)));
    group.bench_function("descendant_steps", |b| {
        b.iter(|| eval_path(&doc, &descendant_path))
    });
    group.bench_function("positional_step", |b| b.iter(|| eval_path(&doc, &positional)));
    group.bench_function("predicate_eval", |b| b.iter(|| pred.eval(&doc)));
    group.finish();
}

fn db_with_items(n: usize) -> Database {
    let db = Database::new();
    db.create_collection("items", StorageMode::Hot).unwrap();
    db.store_all("items", gen_items(n, ItemProfile::Small, 3));
    db
}

fn bench_storage(c: &mut Criterion) {
    let db = db_with_items(2000);
    let scan =
        r#"count(for $i in collection("items")/Item where number($i/Code) < 100 return $i)"#;
    let text_query = r#"count(for $i in collection("items")/Item
                            where contains($i//Description, "good") return $i)"#;
    let eq_query =
        r#"count(for $i in collection("items")/Item where $i/Section = "GARDEN" return $i)"#;
    let mut group = c.benchmark_group("storage_2000_docs");
    group.sample_size(30);
    group.bench_function("full_scan_numeric", |b| b.iter(|| db.execute(scan).unwrap()));
    group.bench_function("text_index_contains", |b| {
        b.iter(|| db.execute(text_query).unwrap())
    });
    db.set_value_index_enabled(true);
    group.bench_function("value_index_equality", |b| {
        b.iter(|| db.execute(eq_query).unwrap())
    });
    db.set_index_enabled(false);
    group.bench_function("equality_without_indexes", |b| {
        b.iter(|| db.execute(eq_query).unwrap())
    });
    db.set_index_enabled(true);
    group.finish();
}

fn bench_frag(c: &mut Criterion) {
    let docs = gen_items(500, ItemProfile::Small, 9);
    let citems = CollectionDef::new(
        "items",
        Arc::new(builtin::virtual_store()),
        PathExpr::parse("/Store/Items/Item").unwrap(),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        citems,
        vec![
            FragmentDef::horizontal(
                "f_cd",
                Predicate::parse(r#"/Item/Section = "CD""#).unwrap(),
            ),
            FragmentDef::horizontal(
                "f_rest",
                Predicate::parse(r#"not(/Item/Section = "CD")"#).unwrap(),
            ),
        ],
    )
    .unwrap();
    let fragmenter = Fragmenter::new(design.clone());
    let mut group = c.benchmark_group("fragmentation_500_docs");
    group.sample_size(30);
    group.bench_function("horizontal_split", |b| {
        b.iter(|| fragmenter.fragment_all(&docs))
    });
    let fragments = fragmenter.fragment_all(&docs);
    group.bench_function("correctness_check", |b| {
        b.iter(|| check_correctness(&design, &docs, &fragments))
    });

    // vertical project + reconstruction join
    let rich = gen_items(100, ItemProfile::Large, 9);
    let projection = Projection::new(
        PathExpr::parse("/Item").unwrap(),
        vec![PathExpr::parse("/Item/PictureList").unwrap()],
    );
    let pics = Projection::new(PathExpr::parse("/Item/PictureList").unwrap(), vec![]);
    group.bench_function("vertical_project_100_large", |b| {
        b.iter(|| {
            let mut out = partix_algebra::project(&rich, &projection);
            out.extend(partix_algebra::project(&rich, &pics));
            out
        })
    });
    let pieces: Vec<Document> = partix_algebra::project(&rich, &projection)
        .into_iter()
        .chain(partix_algebra::project(&rich, &pics))
        .collect();
    group.bench_function("reconstruction_join_100_large", |b| {
        b.iter_batched(
            || pieces.clone(),
            |p| partix_algebra::reconstruct(&p).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_xml, bench_path, bench_storage, bench_frag);
criterion_main!(benches);
