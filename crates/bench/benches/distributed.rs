//! End-to-end distributed-vs-centralized benchmarks: one representative
//! point per paper figure, runnable under `cargo bench`.
//!
//! These complement the `harness` binary (which sweeps sizes and
//! fragment counts); here Criterion provides statistical rigor on single
//! configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use partix_bench::{queries, setup};
use partix_frag::FragMode;
use partix_gen::{ArticleProfile, ItemProfile};

/// Fig. 7(a) point: ItemsSHor ≈2 MB, 4 fragments, text-search QH5.
fn bench_fig7a_point(c: &mut Criterion) {
    let px = setup::horizontal_sized(2_000_000, ItemProfile::Small, 4);
    let (_, dist_q) = &queries::horizontal(setup::DIST)[4]; // QH5
    let central_q = dist_q.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    );
    let mut group = c.benchmark_group("fig7a_2mb_4frags_QH5");
    group.sample_size(20);
    group.bench_function("centralized", |b| {
        b.iter(|| px.execute_centralized(0, &central_q).unwrap())
    });
    group.bench_function("distributed", |b| b.iter(|| px.execute(dist_q).unwrap()));
    group.finish();
}

/// Fig. 7(c) points: single-fragment QV1 vs multi-fragment QV7.
fn bench_fig7c_points(c: &mut Criterion) {
    let docs = partix_gen::gen_articles(20, ArticleProfile::LARGE, 0xA11CE);
    let px = setup::vertical(&docs);
    let all = queries::vertical(setup::DIST);
    let central = |q: &str| {
        q.replace(
            &format!("collection(\"{}\")", setup::DIST),
            &format!("collection(\"{}\")", setup::CENTRAL),
        )
    };
    let mut group = c.benchmark_group("fig7c_20_articles");
    group.sample_size(20);
    let (_, qv1) = &all[0];
    group.bench_function("QV1_centralized", |b| {
        b.iter(|| px.execute_centralized(0, &central(qv1)).unwrap())
    });
    group.bench_function("QV1_single_fragment", |b| b.iter(|| px.execute(qv1).unwrap()));
    let (_, qv7) = &all[6];
    group.bench_function("QV7_centralized", |b| {
        b.iter(|| px.execute_centralized(0, &central(qv7)).unwrap())
    });
    group.bench_function("QV7_reconstructing", |b| b.iter(|| px.execute(qv7).unwrap()));
    group.finish();
}

/// Fig. 7(d) point: StoreHyb ≈1 MB, FragMode1 vs FragMode2 on the
/// section-localized QY1.
fn bench_fig7d_point(c: &mut Criterion) {
    let store = partix_gen::store::gen_store_to_size(1_000_000, ItemProfile::Small, 0xA11CE);
    let (_, qy1) = &queries::hybrid(setup::DIST)[0];
    let mut group = c.benchmark_group("fig7d_1mb_QY1");
    group.sample_size(20);
    for (mode, label) in [
        (FragMode::ManySmallDocs, "FragMode1"),
        (FragMode::SingleDoc, "FragMode2"),
    ] {
        let px = setup::hybrid(&store, mode);
        group.bench_function(label, |b| b.iter(|| px.execute(qy1).unwrap()));
    }
    let px = setup::hybrid(&store, FragMode::SingleDoc);
    let central_q = qy1.replace(
        &format!("collection(\"{}\")", setup::DIST),
        &format!("collection(\"{}\")", setup::CENTRAL),
    );
    group.bench_function("centralized", |b| {
        b.iter(|| px.execute_centralized(0, &central_q).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig7a_point,
    bench_fig7c_points,
    bench_fig7d_point
);
criterion_main!(benches);
