//! Mixed read/write benchmark over WAL-backed nodes.
//!
//! Not a paper figure — the paper's repositories are read-only once
//! published. This benchmark measures the *online write path* (PR 7):
//! N closed-loop clients issue a seeded mix of workload queries and
//! coordinator-routed `put`/`delete` ops against a horizontal cluster
//! whose every node runs a [`DurableDb`] (append → fsync → apply), at
//! each configured write ratio.
//!
//! Reported per ratio: overall QPS, read and write p50/p99 latency, the
//! WAL's append/fsync counts (each acknowledged write costs exactly one
//! fsync — the durability point), and a `verified` gate: after the run,
//! a full scan of the fragmented collection must be byte-identical to
//! the centralized oracle copy that received every acknowledged write.
//! Clients write *disjoint name spaces* (client k owns `c{k}-*`), so
//! concurrent schedules stay commutative and the final state is
//! oracle-checkable without a global op order.

use crate::output::json;
use crate::throughput::percentile;
use crate::{queries, setup};
use partix_engine::{PartiX, PartixDriver};
use partix_gen::{ItemProfile, SECTIONS};
use partix_query::Item;
use partix_storage::{DurableDb, WriteOp};
use partix_xml::{parse, Document};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct WritesConfig {
    /// Total database size in bytes.
    pub db_bytes: usize,
    /// Horizontal fragments (== nodes).
    pub fragments: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Operations (reads + writes) each client issues.
    pub ops_per_client: usize,
    /// Write ratios to sweep (fraction of ops that are writes).
    pub write_ratios: Vec<f64>,
}

impl Default for WritesConfig {
    fn default() -> WritesConfig {
        WritesConfig {
            db_bytes: 100_000,
            fragments: 4,
            clients: 4,
            ops_per_client: 40,
            write_ratios: vec![0.10, 0.50],
        }
    }
}

/// One write-ratio measurement.
#[derive(Debug, Clone)]
pub struct WritesRunResult {
    pub write_ratio: f64,
    pub total_ops: usize,
    pub reads: usize,
    pub puts: usize,
    pub deletes: usize,
    pub wall_s: f64,
    pub qps: f64,
    pub read_p50_ms: f64,
    pub read_p99_ms: f64,
    pub write_p50_ms: f64,
    pub write_p99_ms: f64,
    /// WAL records appended across all nodes during the measured run.
    pub wal_appends: u64,
    /// Fsyncs issued across all nodes (the durability points).
    pub wal_fsyncs: u64,
    /// Post-run full-scan differential against the centralized oracle.
    pub verified: bool,
}

impl WritesRunResult {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json::num_field(&mut out, "write_ratio", self.write_ratio);
        json::num_field(&mut out, "total_ops", self.total_ops as f64);
        json::num_field(&mut out, "reads", self.reads as f64);
        json::num_field(&mut out, "puts", self.puts as f64);
        json::num_field(&mut out, "deletes", self.deletes as f64);
        json::num_field(&mut out, "wall_s", self.wall_s);
        json::num_field(&mut out, "qps", self.qps);
        json::num_field(&mut out, "read_p50_ms", self.read_p50_ms);
        json::num_field(&mut out, "read_p99_ms", self.read_p99_ms);
        json::num_field(&mut out, "write_p50_ms", self.write_p50_ms);
        json::num_field(&mut out, "write_p99_ms", self.write_p99_ms);
        json::num_field(&mut out, "wal_appends", self.wal_appends as f64);
        json::num_field(&mut out, "wal_fsyncs", self.wal_fsyncs as f64);
        json::bool_field(&mut out, "verified", self.verified);
        out.push('}');
        out
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bench_doc(name: &str, section: &str, code: u64) -> Document {
    let mut d = parse(&format!(
        "<Item><Code>{code}</Code><Name>bench write {code}</Name>\
         <Description>online write benchmark</Description>\
         <Section>{section}</Section></Item>"
    ))
    .expect("benchmark doc");
    d.name = Some(name.to_owned());
    d
}

/// Swap every node's driver for a [`DurableDb`] seeded from its
/// published fragments (the oracle collection stays on the raw node-0
/// database, which `execute_centralized` reads directly).
fn attach_durable(px: &PartiX, root: &Path) -> Vec<Arc<DurableDb>> {
    px.cluster()
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let durable =
                Arc::new(DurableDb::open(&root.join(format!("node{i}"))).expect("open wal dir"));
            for collection in PartixDriver::collections(&*node.db) {
                if collection == setup::CENTRAL {
                    continue;
                }
                let docs: Vec<Document> = PartixDriver::fetch_collection(&*node.db, &collection)
                    .iter()
                    .map(|d| (**d).clone())
                    .collect();
                PartixDriver::store(&*durable, &collection, docs);
            }
            durable.checkpoint().expect("seed checkpoint");
            node.set_driver(Arc::clone(&durable) as Arc<dyn PartixDriver>);
            durable
        })
        .collect()
}

fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Post-run gate: the fragmented collection, scanned whole, must be
/// byte-identical to the centralized oracle that received every
/// acknowledged write.
fn verify_against_oracle(px: &PartiX) -> bool {
    let scan = |collection: &str, centralized: bool| {
        let text = format!(r#"for $i in collection("{collection}")/Item return $i"#);
        if centralized {
            px.execute_centralized(0, &text).map(|r| canonical(&r.items))
        } else {
            px.execute(&text).map(|r| canonical(&r.items))
        }
    };
    match (scan(setup::DIST, false), scan(setup::CENTRAL, true)) {
        (Ok(answer), Ok(oracle)) => answer == oracle,
        _ => false,
    }
}

/// Run the sweep: one fresh WAL-backed cluster per write ratio.
pub fn run(config: &WritesConfig) -> Vec<WritesRunResult> {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### writes: ItemsSHor {} B, {} WAL-backed fragments, {} clients x {} ops",
        config.db_bytes, config.fragments, config.clients, config.ops_per_client,
    );
    println!(
        "{:>7} {:>9} {:>10} {:>10} {:>11} {:>11} {:>9} {:>9}",
        "write%", "QPS", "read p99", "write p99", "appends", "fsyncs", "verified", "wall(s)"
    );
    let root = std::env::temp_dir().join(format!("partix-bwrites-{}", std::process::id()));
    let mut results = Vec::new();
    for (ratio_idx, &ratio) in config.write_ratios.iter().enumerate() {
        let px = setup::horizontal(&docs, config.fragments);
        let ratio_root = root.join(format!("r{ratio_idx}"));
        let durables = attach_durable(&px, &ratio_root);
        let oracle_db = Arc::clone(&px.cluster().node(0).expect("node 0").db);
        let appends_before: u64 = durables.iter().map(|d| d.wal().appends()).sum();
        let fsyncs_before: u64 = durables.iter().map(|d| d.fsyncs()).sum();

        let start = Instant::now();
        let mut read_lat: Vec<f64> = Vec::new();
        let mut write_lat: Vec<f64> = Vec::new();
        let (mut reads, mut puts, mut deletes) = (0usize, 0usize, 0usize);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.clients)
                .map(|client| {
                    let (px, workload, oracle_db) = (&px, &workload, &oracle_db);
                    scope.spawn(move || {
                        let mut state = 0xB_E4C_0DE ^ ((ratio_idx as u64) << 32) ^ client as u64;
                        let mut reads_l = Vec::new();
                        let mut writes_l = Vec::new();
                        let (mut n_reads, mut n_puts, mut n_deletes) = (0usize, 0usize, 0usize);
                        // names this client has live in the cluster —
                        // clients own disjoint spaces, writes commute
                        let mut live: Vec<String> = Vec::new();
                        let mut serial = 0usize;
                        for _ in 0..config.ops_per_client {
                            let is_write = (splitmix(&mut state) % 1_000) < (ratio * 1e3) as u64;
                            if !is_write {
                                let (_, query) =
                                    &workload[(splitmix(&mut state) as usize) % workload.len()];
                                let issued = Instant::now();
                                px.execute(query).expect("benchmark read");
                                reads_l.push(issued.elapsed().as_secs_f64());
                                n_reads += 1;
                                continue;
                            }
                            // 1 in 4 writes deletes a live doc of our own
                            if splitmix(&mut state).is_multiple_of(4) && !live.is_empty() {
                                let name =
                                    live.remove((splitmix(&mut state) as usize) % live.len());
                                let issued = Instant::now();
                                px.delete(setup::DIST, &name).expect("benchmark delete");
                                writes_l.push(issued.elapsed().as_secs_f64());
                                oracle_db.apply_write(&WriteOp::Delete {
                                    collection: setup::CENTRAL.into(),
                                    name,
                                });
                                n_deletes += 1;
                            } else {
                                let name = format!("c{client}-{serial}");
                                serial += 1;
                                let code = splitmix(&mut state);
                                let section = SECTIONS[(code as usize) % SECTIONS.len()];
                                let doc = bench_doc(&name, section, code % 10_000);
                                let issued = Instant::now();
                                px.put(setup::DIST, doc.clone()).expect("benchmark put");
                                writes_l.push(issued.elapsed().as_secs_f64());
                                oracle_db.apply_write(&WriteOp::Put {
                                    collection: setup::CENTRAL.into(),
                                    doc,
                                });
                                live.push(name);
                                n_puts += 1;
                            }
                        }
                        (reads_l, writes_l, n_reads, n_puts, n_deletes)
                    })
                })
                .collect();
            for handle in handles {
                let (r, w, nr, np, nd) = handle.join().expect("client thread");
                read_lat.extend(r);
                write_lat.extend(w);
                reads += nr;
                puts += np;
                deletes += nd;
            }
        });
        let wall_s = start.elapsed().as_secs_f64();

        let total_ops = reads + puts + deletes;
        let result = WritesRunResult {
            write_ratio: ratio,
            total_ops,
            reads,
            puts,
            deletes,
            wall_s,
            qps: total_ops as f64 / wall_s.max(1e-9),
            read_p50_ms: percentile(&mut read_lat, 50.0) * 1e3,
            read_p99_ms: percentile(&mut read_lat, 99.0) * 1e3,
            write_p50_ms: percentile(&mut write_lat, 50.0) * 1e3,
            write_p99_ms: percentile(&mut write_lat, 99.0) * 1e3,
            wal_appends: durables.iter().map(|d| d.wal().appends()).sum::<u64>()
                - appends_before,
            wal_fsyncs: durables.iter().map(|d| d.fsyncs()).sum::<u64>() - fsyncs_before,
            verified: verify_against_oracle(&px),
        };
        println!(
            "{:>6.0}% {:>9.1} {:>10.3} {:>10.3} {:>11} {:>11} {:>9} {:>9.3}",
            100.0 * result.write_ratio,
            result.qps,
            result.read_p99_ms,
            result.write_p99_ms,
            result.wal_appends,
            result.wal_fsyncs,
            result.verified,
            result.wall_s,
        );
        results.push(result);
    }
    let _ = std::fs::remove_dir_all(&root);
    results
}

/// Serialize a sweep as one JSON document.
pub fn to_json(config: &WritesConfig, results: &[WritesRunResult]) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "writes");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "fragments", config.fragments as f64);
    json::num_field(&mut out, "clients", config.clients as f64);
    json::num_field(&mut out, "ops_per_client", config.ops_per_client as f64);
    let runs: Vec<String> = results.iter().map(WritesRunResult::to_json).collect();
    json::raw_field(&mut out, "runs", &format!("[{}]", runs.join(",")));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_verifies_against_the_oracle_and_counts_fsyncs() {
        let config = WritesConfig {
            db_bytes: 20_000,
            fragments: 2,
            clients: 2,
            ops_per_client: 12,
            write_ratios: vec![0.5],
        };
        let results = run(&config);
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.total_ops, 2 * 12);
        assert!(r.puts > 0, "no puts issued at a 50% write ratio");
        assert!(r.reads > 0, "no reads issued at a 50% write ratio");
        assert!(r.verified, "final state diverged from the oracle");
        assert!(r.qps > 0.0);
        // each coordinator write touches every fragment (the put on its
        // home, stale-clearing / broadcast deletes on the rest), and
        // every appended record reaches its durability point
        assert_eq!(r.wal_appends as usize, (r.puts + r.deletes) * config.fragments);
        assert!(r.wal_fsyncs >= r.wal_appends, "a write was acknowledged without its fsync");
        let doc = to_json(&config, &results);
        assert!(doc.contains("\"experiment\":\"writes\""));
        assert!(doc.contains("\"verified\":true"));
        assert!(doc.contains("\"wal_fsyncs\":"));
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}
