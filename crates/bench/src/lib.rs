//! # partix-bench
//!
//! The experiment harness reproducing the paper's evaluation (Section 5).
//!
//! Every figure of the paper maps to a harness subcommand:
//!
//! | Paper | Database | Harness |
//! |-------|----------|---------|
//! | Fig. 7(a) | ItemsSHor (≈2 KB docs), horizontal, 2/4/8 fragments | `harness fig7a` |
//! | Fig. 7(b) | ItemsLHor (≈80 KB docs), horizontal | `harness fig7b` |
//! | Fig. 7(c) | XBenchVer, vertical prolog/body/epilog | `harness fig7c` |
//! | Fig. 7(d/e) | StoreHyb, hybrid FragMode1/2, ±transmission | `harness fig7d` |
//! | "72×" claim | ItemsSHor text search & aggregation | `harness headline` |
//! | index ablation | ItemsSHor, text index on/off | `harness ablation-index` |
//! | parse-cost ablation | StoreHyb, hot vs cold pages | `harness ablation-fragmode` |
//!
//! Query texts are *reconstructions*: the exact queries live in the
//! unavailable technical report \[3]; [`queries`] rebuilds them from the
//! paper's descriptions (predicate selections, text searches, existential
//! tests, aggregations — see each constant's doc).
//!
//! Database sizes default to 2% of the paper's 5/20/100/250/500 MB so a
//! full sweep finishes in minutes; pass `--scale 1.0` for paper-scale
//! runs. Shapes (who wins, crossovers), not absolute times, are the
//! reproduction target.
//!
//! Beyond the paper's figures, [`throughput`] measures multi-client QPS,
//! [`chaos`] re-runs that workload under a seeded fault schedule
//! (`harness chaos --seed S`), exercising the dispatch layer's
//! retry/deadline/failover machinery, [`rebalance`] measures the
//! advisor fixing a skewed placement live (`harness rebalance`),
//! [`multitenant`] measures tenant isolation under an admission-controlled
//! flood (`harness multitenant`),
//! [`writes`] measures mixed read/write QPS over WAL-backed nodes with
//! an oracle-verified final state (`harness writes`), and [`storage`]
//! isolates what the arena page format and value-index prefilter buy
//! the cold path (`harness storage`).

pub mod chaos;
pub mod morsel;
pub mod multitenant;
pub mod output;
pub mod queries;
pub mod rebalance;
pub mod remote;
pub mod runner;
pub mod scaleout;
pub mod setup;
pub mod storage;
pub mod throughput;
pub mod writes;

/// The paper's database sizes in megabytes.
pub const PAPER_SIZES_MB: &[usize] = &[5, 20, 100, 250];

/// Extra size used only by ItemsLHor and StoreHyb in the paper.
pub const PAPER_SIZE_LARGE_MB: usize = 500;
