//! Experiment environment builders: fragment designs, placement, data
//! publication, and centralized baselines.

use partix_engine::{Distribution, NetworkModel, PartiX, Placement};
use partix_frag::{FragMode, FragmentDef, FragmentationSchema};
use partix_gen::{gen_items, ItemProfile, SECTIONS};
use partix_path::{PathExpr, Predicate};
use partix_schema::builtin::{virtual_store, xbench_article};
use partix_schema::{CollectionDef, RepoKind};
use partix_storage::StorageMode;
use partix_xml::Document;
use std::sync::Arc;

/// Name of the distributed collection in every setup.
pub const DIST: &str = "data";
/// Name of the centralized baseline collection (on node 0).
pub const CENTRAL: &str = "data_central";

fn p(s: &str) -> PathExpr {
    PathExpr::parse(s).unwrap()
}

/// Partition the eight section names into `n` contiguous groups.
pub fn section_groups(n: usize) -> Vec<Vec<&'static str>> {
    assert!(n >= 1 && n <= SECTIONS.len());
    let per = SECTIONS.len() / n;
    let mut extra = SECTIONS.len() % n;
    let mut groups = Vec::with_capacity(n);
    let mut idx = 0;
    for _ in 0..n {
        let take = per + usize::from(extra > 0);
        extra = extra.saturating_sub(1);
        groups.push(SECTIONS[idx..idx + take].to_vec());
        idx += take;
    }
    groups
}

/// `σ` predicate selecting items of the given sections, in the space
/// rooted at `root` (`/Item/Section` for MD, same for hybrid units).
pub fn sections_predicate(root: &str, sections: &[&str]) -> Predicate {
    let atoms: Vec<Predicate> = sections
        .iter()
        .map(|s| Predicate::parse(&format!(r#"{root} = "{s}""#)).unwrap())
        .collect();
    if atoms.len() == 1 {
        atoms.into_iter().next().expect("one")
    } else {
        Predicate::Or(atoms)
    }
}

/// Build the horizontal experiment: `C_items` fragmented by `Section`
/// into `n_fragments` groups, one fragment per node, plus the
/// centralized copy of the same documents on node 0.
///
/// Like every experiment database, collections are stored **cold**
/// (binary pages decoded on access), modelling a disk-based DBMS like
/// eXist whose query cost scales with the data it pages through. This is
/// what makes document size matter (ItemsSHor vs ItemsLHor) as it did in
/// the paper.
pub fn horizontal(docs: &[Document], n_fragments: usize) -> PartiX {
    horizontal_replicated(docs, n_fragments, 1)
}

/// [`horizontal`] with `replicas` copies of every fragment: fragment `i`
/// is placed on nodes `i, i+1, … i+replicas-1 (mod n)`, so each node
/// holds `replicas` fragments and any single node failure leaves every
/// fragment answerable — the replication level the chaos experiments
/// lean on.
pub fn horizontal_replicated(
    docs: &[Document],
    n_fragments: usize,
    replicas: usize,
) -> PartiX {
    assert!(
        (1..=n_fragments).contains(&replicas),
        "replication must be between 1 and the node count"
    );
    let px = PartiX::new(n_fragments, NetworkModel::default());
    for i in 0..n_fragments {
        for r in 0..replicas {
            px.cluster()
                .node((i + r) % n_fragments)
                .expect("node exists")
                .db
                .create_collection(&format!("f{i}"), StorageMode::Cold)
                .expect("fresh node");
        }
    }
    px.cluster()
        .node(0)
        .expect("node 0")
        .db
        .create_collection(CENTRAL, StorageMode::Cold)
        .expect("fresh node");
    let citems = CollectionDef::new(
        DIST,
        Arc::new(virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let groups = section_groups(n_fragments);
    let fragments: Vec<FragmentDef> = groups
        .iter()
        .enumerate()
        .map(|(i, group)| {
            FragmentDef::horizontal(
                &format!("f{i}"),
                sections_predicate("/Item/Section", group),
            )
        })
        .collect();
    let design = FragmentationSchema::new(citems, fragments).expect("valid design");
    let placements = (0..n_fragments)
        .flat_map(|i| {
            (0..replicas).map(move |r| Placement {
                fragment: format!("f{i}"),
                node: (i + r) % n_fragments,
            })
        })
        .collect();
    px.register_distribution(Distribution { design, placements })
        .expect("placement valid");
    px.publish(DIST, docs).expect("publish");
    px.publish_centralized(0, CENTRAL, docs).expect("centralized copy");
    px
}

/// Build the rebalance experiment's *pathological* horizontal setup:
/// `nodes` nodes, `n_fragments` section-group fragments — every one of
/// them placed on node 0. The cluster has idle capacity the placement
/// ignores; the advisor/rebalancer exist to fix exactly this.
pub fn skewed_horizontal(docs: &[Document], n_fragments: usize, nodes: usize) -> PartiX {
    assert!(nodes >= 1);
    let px = PartiX::new(nodes, NetworkModel::default());
    let node0 = px.cluster().node(0).expect("node 0");
    for i in 0..n_fragments {
        node0
            .db
            .create_collection(&format!("f{i}"), StorageMode::Cold)
            .expect("fresh node");
    }
    node0.db.create_collection(CENTRAL, StorageMode::Cold).expect("fresh node");
    let citems = CollectionDef::new(
        DIST,
        Arc::new(virtual_store()),
        p("/Store/Items/Item"),
        RepoKind::MultipleDocuments,
    );
    let fragments: Vec<FragmentDef> = section_groups(n_fragments)
        .iter()
        .enumerate()
        .map(|(i, group)| {
            FragmentDef::horizontal(
                &format!("f{i}"),
                sections_predicate("/Item/Section", group),
            )
        })
        .collect();
    let design = FragmentationSchema::new(citems, fragments).expect("valid design");
    let placements = (0..n_fragments)
        .map(|i| Placement { fragment: format!("f{i}"), node: 0 })
        .collect();
    px.register_distribution(Distribution { design, placements })
        .expect("placement valid");
    px.publish(DIST, docs).expect("publish");
    px.publish_centralized(0, CENTRAL, docs).expect("centralized copy");
    px
}

/// Convenience: generate an item database of roughly `bytes` and build
/// the horizontal setup.
pub fn horizontal_sized(bytes: usize, profile: ItemProfile, n_fragments: usize) -> PartiX {
    let docs = partix_gen::items::gen_items_to_size(bytes, profile, 0xA11CE);
    horizontal(&docs, n_fragments)
}

/// Build the vertical experiment: XBench articles fragmented into
/// prolog / body / epilog (plus the article spine), three nodes.
///
/// Collections are stored **cold** (binary pages decoded per access):
/// the paper's vertical gains come from each node paging through only
/// its projected part of every document, which only materializes when
/// document access cost scales with stored size — as in eXist.
pub fn vertical(docs: &[Document]) -> PartiX {
    let px = PartiX::new(3, NetworkModel::default());
    for (frag, node) in [("f_spine", 0), ("f_prolog", 0), ("f_body", 1), ("f_epilog", 2)] {
        px.cluster()
            .node(node)
            .expect("node exists")
            .db
            .create_collection(frag, StorageMode::Cold)
            .expect("fresh node");
    }
    px.cluster()
        .node(0)
        .expect("node 0")
        .db
        .create_collection(CENTRAL, StorageMode::Cold)
        .expect("fresh node");
    let articles = CollectionDef::new(
        DIST,
        Arc::new(xbench_article()),
        p("/article"),
        RepoKind::MultipleDocuments,
    );
    let design = FragmentationSchema::new(
        articles,
        vec![
            FragmentDef::vertical(
                "f_spine",
                p("/article"),
                vec![p("/article/prolog"), p("/article/body"), p("/article/epilog")],
            ),
            FragmentDef::vertical("f_prolog", p("/article/prolog"), vec![]),
            FragmentDef::vertical("f_body", p("/article/body"), vec![]),
            FragmentDef::vertical("f_epilog", p("/article/epilog"), vec![]),
        ],
    )
    .expect("valid design");
    let placements = vec![
        Placement { fragment: "f_spine".into(), node: 0 },
        Placement { fragment: "f_prolog".into(), node: 0 },
        Placement { fragment: "f_body".into(), node: 1 },
        Placement { fragment: "f_epilog".into(), node: 2 },
    ];
    px.register_distribution(Distribution { design, placements })
        .expect("placement valid");
    px.publish(DIST, docs).expect("publish");
    px.publish_centralized(0, CENTRAL, docs).expect("centralized copy");
    px
}

/// Build the hybrid experiment over one SD `Store` document: four
/// section-group hybrid fragments (the paper's `F1..F4items`) plus the
/// vertical prune fragment holding everything outside `/Store/Items`
/// (the paper's `F1` of the StoreHyb design). Collections are stored
/// **cold** (binary pages decoded per access) so the per-document parse
/// cost that separates FragMode1 from FragMode2 is charged, as in eXist.
pub fn hybrid(store_doc: &Document, mode: FragMode) -> PartiX {
    let px = PartiX::new(5, NetworkModel::default());
    let cstore = CollectionDef::new(
        DIST,
        Arc::new(virtual_store()),
        p("/Store"),
        RepoKind::SingleDocument,
    );
    let groups = section_groups(4);
    let mut fragments: Vec<FragmentDef> = groups
        .iter()
        .enumerate()
        .map(|(i, group)| {
            FragmentDef::hybrid(
                &format!("f{i}"),
                p("/Store/Items/Item"),
                sections_predicate("/Item/Section", group),
                mode,
            )
        })
        .collect();
    fragments.push(FragmentDef::vertical(
        "f_spine",
        p("/Store"),
        vec![p("/Store/Items")],
    ));
    let design = FragmentationSchema::new(cstore, fragments).expect("valid design");
    let mut placements: Vec<Placement> = (0..4)
        .map(|i| Placement { fragment: format!("f{i}"), node: i })
        .collect();
    placements.push(Placement { fragment: "f_spine".into(), node: 4 });
    // pre-create every collection cold so pages are decoded per access
    for place in &placements {
        px.cluster()
            .node(place.node)
            .expect("node exists")
            .db
            .create_collection(&place.fragment, StorageMode::Cold)
            .expect("fresh node");
    }
    px.cluster()
        .node(0)
        .expect("node 0")
        .db
        .create_collection(CENTRAL, StorageMode::Cold)
        .expect("fresh node");
    px.register_distribution(Distribution { design, placements })
        .expect("placement valid");
    let docs = vec![store_doc.clone()];
    px.publish(DIST, &docs).expect("publish");
    px.publish_centralized(0, CENTRAL, &docs).expect("centralized copy");
    px
}

/// Item documents sized to `bytes` total, for direct use by benches.
pub fn item_db(bytes: usize, profile: ItemProfile) -> Vec<Document> {
    partix_gen::items::gen_items_to_size(bytes, profile, 0xA11CE)
}

/// Make `n` small items quickly (tests).
pub fn quick_items(n: usize) -> Vec<Document> {
    gen_items(n, ItemProfile::Small, 0xA11CE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_gen::ArticleProfile;

    #[test]
    fn section_groups_partition() {
        for n in [1, 2, 4, 8] {
            let groups = section_groups(n);
            assert_eq!(groups.len(), n);
            let flat: Vec<&str> = groups.iter().flatten().copied().collect();
            assert_eq!(flat, SECTIONS);
        }
        let g3 = section_groups(3);
        assert_eq!(g3.iter().map(Vec::len).sum::<usize>(), 8);
    }

    #[test]
    fn horizontal_setup_distributes_everything() {
        let docs = quick_items(60);
        for n in [2, 4, 8] {
            let px = horizontal(&docs, n);
            let mut total = 0;
            for i in 0..n {
                total += px
                    .cluster()
                    .node(i)
                    .unwrap()
                    .db
                    .collection_len(&format!("f{i}"))
                    .unwrap_or(0);
            }
            assert_eq!(total, 60, "{n} fragments");
        }
    }

    #[test]
    fn replicated_setup_survives_any_single_node_failure() {
        let docs = quick_items(40);
        let px = horizontal_replicated(&docs, 4, 2);
        // every fragment exists on exactly two nodes
        for i in 0..4 {
            let copies = (0..4)
                .filter(|&n| {
                    px.cluster()
                        .node(n)
                        .unwrap()
                        .db
                        .collection_len(&format!("f{i}"))
                        .is_ok()
                })
                .count();
            assert_eq!(copies, 2, "fragment f{i}");
        }
        let q = format!(r#"count(collection("{DIST}")/Item)"#);
        let full = px.execute(&q).unwrap();
        for down in 0..4 {
            px.cluster().node(down).unwrap().set_available(false);
            let result = px.execute(&q).unwrap();
            assert_eq!(result.items, full.items, "node {down} down");
            px.cluster().node(down).unwrap().set_available(true);
        }
    }

    #[test]
    fn vertical_setup_equivalence() {
        let docs = partix_gen::gen_articles(4, ArticleProfile::SMALL, 3);
        let px = vertical(&docs);
        let dist = px
            .execute(&format!(
                r#"count(collection("{DIST}")/article/prolog/title)"#
            ))
            .unwrap();
        let central = px
            .execute_centralized(
                0,
                &format!(r#"count(collection("{CENTRAL}")/article/prolog/title)"#),
            )
            .unwrap();
        assert_eq!(dist.items, central.items);
    }

    #[test]
    fn hybrid_setup_equivalence_both_modes() {
        let store = partix_gen::gen_store(24, ItemProfile::Small, 5);
        for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
            let px = hybrid(&store, mode);
            let dist = px
                .execute(&format!(
                    r#"count(for $i in collection("{DIST}")/Store/Items/Item
                             where $i/Section = "CD" return $i)"#
                ))
                .unwrap();
            let central = px
                .execute_centralized(
                    0,
                    &format!(
                        r#"count(for $i in collection("{CENTRAL}")/Store/Items/Item
                                 where $i/Section = "CD" return $i)"#
                    ),
                )
                .unwrap();
            assert_eq!(dist.items, central.items, "{mode:?}");
        }
    }
}
