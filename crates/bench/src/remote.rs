//! Loopback remote clusters: run any experiment setup over real sockets.
//!
//! [`RemoteCluster::attach`] takes a fully-published [`PartiX`] instance
//! and moves every node's data path onto the wire: each node gets its
//! own [`NodeServer`] on an ephemeral loopback port backed by a fresh
//! server-side database, the node's collections are copied over through
//! the protocol's `Store` frames, and a [`RemoteDriver`] is installed so
//! all subsequent queries/stores/fetches travel through real TCP. The
//! coordinator above (dispatch modes, retries, caching, tracing) is
//! untouched — which is the point: the differential and chaos suites can
//! assert the in-process and remote answers are byte-identical.
//!
//! Centralized-baseline queries keep working because
//! [`PartiX::execute_centralized`] reads the node's embedded database
//! directly, bypassing the installed driver — the embedded copy stays in
//! place as the oracle.
//!
//! [`RemoteCluster::kill`] / [`RemoteCluster::restart`] stop and rebind a
//! node's listener on its original port (the server keeps its database
//! between incarnations), which is what the remote chaos tests flap.

use partix_engine::{PartixDriver, PartiX};
use partix_net::{NodeServer, RemoteDriver};
use partix_storage::Database;
use std::net::SocketAddr;
use std::sync::Arc;

/// One node's server-side state.
struct RemoteNode {
    /// The listener, absent while the node is killed.
    server: Option<NodeServer>,
    /// The address clients dial — fixed across kill/restart cycles.
    addr: SocketAddr,
    /// The server-side database, surviving listener restarts.
    db: Arc<Database>,
    /// The driver installed on the coordinator's node, kept for
    /// wire-stats assertions.
    driver: Arc<RemoteDriver>,
}

/// A set of loopback node servers backing a [`PartiX`] cluster.
pub struct RemoteCluster {
    nodes: Vec<RemoteNode>,
}

impl RemoteCluster {
    /// Put every node of `px` behind a loopback TCP server: bind, copy
    /// the node's collections over the wire, install a [`RemoteDriver`].
    ///
    /// Panics on bind/connect failures — loopback servers in a test or
    /// bench process have no legitimate way to fail.
    pub fn attach(px: &PartiX) -> RemoteCluster {
        let nodes = px
            .cluster()
            .nodes()
            .iter()
            .map(|node| {
                let db = Arc::new(Database::new());
                let server = NodeServer::bind("127.0.0.1:0", Arc::clone(&db))
                    .expect("bind loopback node server");
                let addr = server.local_addr();
                let driver = RemoteDriver::connect(addr).expect("connect to node server");
                // replicate the node's collections through the protocol
                // itself: Store frames carry the documents across
                for collection in PartixDriver::collections(&*node.db) {
                    let docs: Vec<_> = PartixDriver::fetch_collection(&*node.db, &collection)
                        .iter()
                        .map(|d| (**d).clone())
                        .collect();
                    driver.store(&collection, docs);
                }
                node.set_driver(Arc::clone(&driver) as Arc<dyn PartixDriver>);
                RemoteNode { server: Some(server), addr, db, driver }
            })
            .collect();
        RemoteCluster { nodes }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The address node `i`'s server listens on.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.nodes[i].addr
    }

    /// The remote driver installed on node `i`.
    pub fn driver(&self, i: usize) -> &Arc<RemoteDriver> {
        &self.nodes[i].driver
    }

    /// Shut node `i`'s listener down (draining in-flight requests).
    /// Queries dispatched to it afterwards fail as unavailable until
    /// [`RemoteCluster::restart`].
    pub fn kill(&mut self, i: usize) {
        if let Some(mut server) = self.nodes[i].server.take() {
            server.shutdown();
        }
    }

    /// Rebind node `i`'s listener on its original address, backed by the
    /// same database (SO_REUSEADDR makes the port immediately reusable).
    pub fn restart(&mut self, i: usize) {
        let node = &mut self.nodes[i];
        if node.server.is_none() {
            let server = NodeServer::bind(node.addr, Arc::clone(&node.db))
                .expect("rebind node server on original port");
            node.server = Some(server);
        }
    }

    /// Whether node `i`'s listener is currently up.
    pub fn is_up(&self, i: usize) -> bool {
        self.nodes[i].server.is_some()
    }

    /// Sum of pooled idle connections across all remote drivers — the
    /// leak check the chaos tests assert on.
    pub fn pooled_connections(&self) -> usize {
        self.nodes.iter().map(|n| n.driver.pooled_connections()).sum()
    }

    /// Total genuine wire bytes (sent + received) across all drivers.
    pub fn wire_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| {
                let stats = n.driver.stats();
                stats.bytes_sent + stats.bytes_recv
            })
            .sum()
    }

    /// Total reconnects across all drivers (stale-pool recoveries).
    pub fn reconnects(&self) -> u64 {
        self.nodes.iter().map(|n| n.driver.stats().reconnects).sum()
    }

    /// Total TCP dials across all drivers (initial connects + redials
    /// after a listener came back). One per node for a quiet attach;
    /// strictly more once listeners have flapped.
    pub fn connects(&self) -> u64 {
        self.nodes.iter().map(|n| n.driver.stats().connects).sum()
    }
}

impl Drop for RemoteCluster {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            if let Some(mut server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup;
    use partix_query::Item;

    fn answer(px: &PartiX, q: &str) -> String {
        let items = px.execute(q).unwrap().items;
        items.iter().map(Item::serialize).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn attached_cluster_answers_identically() {
        let docs = setup::quick_items(24);
        let px = setup::horizontal(&docs, 2);
        let q = format!(r#"count(collection("{}")/Item)"#, setup::DIST);
        let local = answer(&px, &q);
        let remote = RemoteCluster::attach(&px);
        assert_eq!(remote.len(), 2);
        assert_eq!(answer(&px, &q), local);
        assert!(remote.wire_bytes() > 0, "no bytes crossed the wire");
    }

    #[test]
    fn kill_and_restart_cycle_preserves_answers() {
        let docs = setup::quick_items(24);
        let px = setup::horizontal(&docs, 2);
        let q = format!(r#"count(collection("{}")/Item)"#, setup::DIST);
        let mut remote = RemoteCluster::attach(&px);
        let before = answer(&px, &q);
        remote.kill(0);
        assert!(!remote.is_up(0));
        remote.restart(0);
        assert!(remote.is_up(0));
        assert_eq!(answer(&px, &q), before);
    }
}
