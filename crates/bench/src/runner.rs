//! Measurement driver: runs a query centralized and distributed,
//! validates that the answers agree, and records timings.
//!
//! Following the paper's protocol, each query is executed `reps + 1`
//! times; the first (warm-up) execution is discarded and the remaining
//! runs averaged.

use crate::setup::{CENTRAL, DIST};
use partix_engine::{PartiX, QueryReport};
use partix_query::Item;

/// One measured comparison.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub query: String,
    /// Centralized execution time (node 0, unfragmented collection).
    pub centralized_s: f64,
    /// Distributed response time (parallel + network + composition).
    pub distributed_s: f64,
    /// `centralized / distributed` — the paper's scale-up factor.
    pub speedup: f64,
    /// Sites consulted / fragments pruned by localization.
    pub sites: usize,
    pub pruned: usize,
    /// Whether the reconstruct-then-evaluate fallback fired.
    pub reconstructed: bool,
    /// Bytes shipped from sites to the coordinator.
    pub result_bytes: usize,
}

/// Run `query_id`/`query` (written against the [`DIST`] collection) both
/// ways on `px` and compare. Panics if the distributed answer diverges
/// from the centralized one — a correctness failure, not a data point.
pub fn compare(px: &PartiX, query_id: &str, query: &str, reps: usize) -> Measurement {
    let central_query = query.replace(
        &format!("collection(\"{DIST}\")"),
        &format!("collection(\"{CENTRAL}\")"),
    );
    // warm-up + equivalence check
    let dist0 = px.execute(query).unwrap_or_else(|e| panic!("{query_id} distributed: {e}"));
    let cent0 = px
        .execute_centralized(0, &central_query)
        .unwrap_or_else(|e| panic!("{query_id} centralized: {e}"));
    assert_answers_match(query_id, &cent0.items, &dist0.items);

    let mut cent_total = 0.0;
    let mut dist_total = 0.0;
    let mut last_report: QueryReport = dist0.report;
    for _ in 0..reps.max(1) {
        let c = px
            .execute_centralized(0, &central_query)
            .expect("centralized rerun");
        cent_total += c.stats.elapsed;
        let d = px.execute(query).expect("distributed rerun");
        dist_total += d.report.total();
        last_report = d.report;
    }
    if std::env::var_os("PARTIX_DEBUG").is_some() {
        eprintln!("[{query_id}] {last_report}");
    }
    let reps = reps.max(1) as f64;
    let centralized_s = cent_total / reps;
    let distributed_s = dist_total / reps;
    Measurement {
        query: query_id.to_owned(),
        centralized_s,
        distributed_s,
        speedup: if distributed_s > 0.0 { centralized_s / distributed_s } else { f64::INFINITY },
        sites: last_report.sites.len(),
        pruned: last_report.fragments_pruned,
        reconstructed: last_report.reconstructed,
        result_bytes: last_report.total_result_bytes(),
    }
}

/// Multiset equality of result sequences (fragment order may differ from
/// document order for concatenated partials).
fn assert_answers_match(query_id: &str, centralized: &[Item], distributed: &[Item]) {
    let mut a: Vec<String> = centralized.iter().map(Item::serialize).collect();
    let mut b: Vec<String> = distributed.iter().map(Item::serialize).collect();
    a.sort();
    b.sort();
    assert_eq!(
        a.len(),
        b.len(),
        "{query_id}: centralized returned {} items, distributed {}",
        a.len(),
        b.len()
    );
    assert_eq!(a, b, "{query_id}: answers differ");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use crate::setup;
    use partix_gen::ItemProfile;

    #[test]
    fn horizontal_all_queries_agree() {
        let px = setup::horizontal_sized(120_000, ItemProfile::Small, 4);
        for (id, q) in queries::horizontal(setup::DIST) {
            let m = compare(&px, id, &q, 1);
            assert!(m.distributed_s >= 0.0);
            assert!(m.sites >= 1, "{id} consulted no site");
        }
    }

    #[test]
    fn vertical_all_queries_agree() {
        let docs = partix_gen::gen_articles(12, partix_gen::ArticleProfile::SMALL, 17);
        let px = setup::vertical(&docs);
        for (id, q) in queries::vertical(setup::DIST) {
            let m = compare(&px, id, &q, 1);
            // single-fragment queries must not reconstruct
            if matches!(m.query.as_str(), "QV1" | "QV2" | "QV3" | "QV5" | "QV6" | "QV9") {
                assert!(!m.reconstructed, "{id} unexpectedly reconstructed");
                assert_eq!(m.sites, 1, "{id} should hit one site");
            }
        }
    }

    #[test]
    fn hybrid_all_queries_agree_both_modes() {
        use partix_frag::FragMode;
        let store = partix_gen::gen_store(48, ItemProfile::Small, 23);
        for mode in [FragMode::SingleDoc, FragMode::ManySmallDocs] {
            let px = setup::hybrid(&store, mode);
            for (id, q) in queries::hybrid(setup::DIST) {
                let m = compare(&px, id, &q, 1);
                assert!(m.sites >= 1 || m.result_bytes == 0, "{id} {mode:?}");
            }
        }
    }

    #[test]
    fn localization_prunes_single_section_queries() {
        let px = setup::horizontal_sized(80_000, ItemProfile::Small, 8);
        let m = compare(
            &px,
            "QH1",
            &queries::horizontal(setup::DIST)[0].1,
            1,
        );
        assert_eq!(m.sites, 1);
        assert_eq!(m.pruned, 7);
    }
}
