//! Multi-tenant isolation benchmark: can an aggressive batch tenant
//! flooding the coordinator at many times the interactive tenant's load
//! move that tenant's tail latency beyond a bounded factor?
//!
//! Two tenants share one coordinator with a [`Tenancy`] attached:
//!
//! * **frontend** — `Interactive` class, generous quotas; the paper's
//!   well-behaved user whose p99 is the number that matters.
//! * **analytics** — `Batch` class with a tight concurrency quota and a
//!   short admission queue; its closed-loop clients offer
//!   [`MultitenantConfig::aggressive_factor`]× the frontend's load and
//!   absorb typed rejections (honoring the `retry_after_ms` hint) when
//!   the quota bites.
//!
//! Phase 1 measures the frontend alone (`p99_alone`); phase 2 re-runs
//! the same frontend load while the analytics flood is live
//! (`p99_contended`). The isolation gate is
//! `p99_contended <= isolation_bound × max(p99_alone, 5 ms)` — the 5 ms
//! floor keeps sub-millisecond timing noise on small databases from
//! deciding the verdict. The gate only counts if `verified` also holds:
//! **every** admitted answer, from either tenant in either phase, must
//! equal the centralized oracle's answer for that query (multiset of
//! serialized items, as in [`crate::runner`]). Fast-but-wrong is a
//! failure, and a rejection must be a typed
//! [`PartixError::AdmissionRejected`] — any other error aborts the run.

use crate::output::json;
use crate::throughput::percentile;
use crate::{queries, setup};
use partix_engine::{
    AdmissionConfig, AdmissionController, DispatchMode, ExecOptions, PartiX, PartixError,
    PriorityClass, Tenancy, TenantId, TenantQuotas, TenantRegistry, TenantSpec,
};
use partix_gen::ItemProfile;
use partix_query::Item;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the well-behaved interactive tenant.
pub const WELL_BEHAVED: &str = "frontend";
/// Name of the flooding batch tenant.
pub const AGGRESSIVE: &str = "analytics";

#[derive(Debug, Clone)]
pub struct MultitenantConfig {
    /// Approximate database size in bytes (ItemsSHor profile).
    pub db_bytes: usize,
    /// Horizontal fragments = nodes.
    pub fragments: usize,
    /// Closed-loop clients of the well-behaved tenant.
    pub clients: usize,
    /// Queries each well-behaved client issues per phase.
    pub queries_per_client: usize,
    /// The aggressive tenant runs `clients × aggressive_factor` clients.
    pub aggressive_factor: usize,
    /// Concurrency quota of the aggressive tenant.
    pub aggressive_max_concurrent: usize,
    /// Admission-queue depth of the aggressive tenant.
    pub aggressive_max_queued: usize,
    /// `p99_contended` may be at most this multiple of `p99_alone`.
    pub isolation_bound: f64,
}

impl Default for MultitenantConfig {
    fn default() -> MultitenantConfig {
        MultitenantConfig {
            db_bytes: 100_000,
            fragments: 4,
            clients: 4,
            queries_per_client: 30,
            aggressive_factor: 10,
            aggressive_max_concurrent: 2,
            aggressive_max_queued: 2,
            isolation_bound: 8.0,
        }
    }
}

/// One tenant's view of one phase.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    pub tenant: &'static str,
    pub phase: &'static str,
    pub issued: usize,
    pub admitted: usize,
    pub rejected: usize,
    pub p50_ms: f64,
    pub p99_ms: f64,
}

impl TenantOutcome {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        json::str_field(&mut out, "tenant", self.tenant);
        json::str_field(&mut out, "phase", self.phase);
        json::num_field(&mut out, "issued", self.issued as f64);
        json::num_field(&mut out, "admitted", self.admitted as f64);
        json::num_field(&mut out, "rejected", self.rejected as f64);
        json::num_field(&mut out, "p50_ms", self.p50_ms);
        json::num_field(&mut out, "p99_ms", self.p99_ms);
        out.push('}');
        out
    }
}

#[derive(Debug, Clone)]
pub struct MultitenantResult {
    pub alone: TenantOutcome,
    pub contended: TenantOutcome,
    pub aggressive: TenantOutcome,
    /// `p99_contended / max(p99_alone, 5 ms)`.
    pub isolation_factor: f64,
    pub isolation_held: bool,
    /// Oracle comparisons performed across both phases and tenants.
    pub oracle_checks: usize,
    pub oracle_mismatches: usize,
    /// All answers matched the centralized oracle (and at least one was
    /// checked). `isolation_held` means nothing without this.
    pub verified: bool,
}

/// Absolute floor (seconds) under `p99_alone` before the bound applies.
const P99_FLOOR_S: f64 = 0.005;

/// Shared flood/measure driver state: the oracle answers plus the
/// mismatch tally every client thread reports into.
struct OracleGate {
    /// Per-workload-entry sorted serialized items, centralized.
    answers: Vec<Vec<String>>,
    checks: AtomicUsize,
    mismatches: AtomicUsize,
}

impl OracleGate {
    fn check(&self, idx: usize, items: &[Item]) {
        let mut got: Vec<String> = items.iter().map(Item::serialize).collect();
        got.sort();
        self.checks.fetch_add(1, Ordering::Relaxed);
        if got != self.answers[idx] {
            self.mismatches.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Drive `clients` closed-loop clients as `tenant`. Admitted answers are
/// oracle-checked; typed rejections are counted and honored (bounded
/// sleep on the retry hint); any other error aborts the benchmark.
fn drive(
    px: &PartiX,
    tenant: TenantId,
    clients: usize,
    queries_per_client: usize,
    workload: &[(&'static str, String)],
    gate: &OracleGate,
) -> (Vec<f64>, usize, usize) {
    let admitted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let mut latencies = Vec::with_capacity(clients * queries_per_client);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let admitted = &admitted;
                let rejected = &rejected;
                scope.spawn(move || {
                    let mut observed = Vec::with_capacity(queries_per_client);
                    for k in 0..queries_per_client {
                        let idx = (client + k) % workload.len();
                        let options =
                            ExecOptions { tenant: Some(tenant), ..ExecOptions::default() };
                        let issued = Instant::now();
                        match px.execute_with(&workload[idx].1, options) {
                            Ok(result) => {
                                observed.push(issued.elapsed().as_secs_f64());
                                admitted.fetch_add(1, Ordering::Relaxed);
                                gate.check(idx, &result.items);
                            }
                            Err(PartixError::AdmissionRejected {
                                retry_after_ms, ..
                            }) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(
                                    retry_after_ms.min(20),
                                ));
                            }
                            Err(other) => {
                                panic!("multitenant: untyped failure: {other}")
                            }
                        }
                    }
                    observed
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    (
        latencies,
        admitted.load(Ordering::Relaxed),
        rejected.load(Ordering::Relaxed),
    )
}

/// Build the shared coordinator: horizontal ItemsSHor setup, worker-pool
/// dispatch, result cache off (cached answers would hide contention),
/// and the two-tenant registry attached.
fn build_px(config: &MultitenantConfig) -> (PartiX, TenantId, TenantId) {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let mut px = setup::horizontal(&docs, config.fragments);
    px.set_dispatch(DispatchMode::Pool);
    let registry = Arc::new(TenantRegistry::new());
    registry
        .register(TenantSpec::new(WELL_BEHAVED, PriorityClass::Interactive))
        .expect("register frontend");
    registry
        .register(TenantSpec {
            name: AGGRESSIVE.to_owned(),
            class: PriorityClass::Batch,
            quotas: TenantQuotas {
                max_concurrent: config.aggressive_max_concurrent,
                max_queued: config.aggressive_max_queued,
                ..TenantQuotas::default()
            },
        })
        .expect("register analytics");
    let wb = registry.by_name(WELL_BEHAVED).expect("frontend").id;
    let ag = registry.by_name(AGGRESSIVE).expect("analytics").id;
    px.attach_tenancy(Tenancy {
        registry,
        controller: AdmissionController::new(AdmissionConfig {
            // short queue wait: flood rejections resolve quickly, and
            // the well-behaved tenant never queues (generous quota)
            queue_wait: Duration::from_millis(250),
            retry_after_ms: 50,
            worker_capacity: 0,
        }),
    });
    (px, wb, ag)
}

pub fn run(config: &MultitenantConfig) -> MultitenantResult {
    let (px, wb, ag) = build_px(config);
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### multitenant: ItemsSHor {} B, {} fragments, {} frontend clients × {} queries, analytics at {}×",
        config.db_bytes,
        config.fragments,
        config.clients,
        config.queries_per_client,
        config.aggressive_factor,
    );

    // centralized oracle, one answer per workload entry
    let answers: Vec<Vec<String>> = workload
        .iter()
        .map(|(id, q)| {
            let central = q.replace(
                &format!("collection(\"{}\")", setup::DIST),
                &format!("collection(\"{}\")", setup::CENTRAL),
            );
            let result = px
                .execute_centralized(0, &central)
                .unwrap_or_else(|e| panic!("{id} oracle: {e}"));
            let mut items: Vec<String> =
                result.items.iter().map(Item::serialize).collect();
            items.sort();
            items
        })
        .collect();
    let gate = OracleGate {
        answers,
        checks: AtomicUsize::new(0),
        mismatches: AtomicUsize::new(0),
    };

    // discarded warm-up pass (anonymous: admission not exercised)
    for (_, query) in &workload {
        px.execute(query).expect("warm-up query");
    }

    // phase 1: the well-behaved tenant alone
    let (mut lat_alone, admitted_alone, rejected_alone) = drive(
        &px, wb, config.clients, config.queries_per_client, &workload, &gate,
    );
    let alone = TenantOutcome {
        tenant: WELL_BEHAVED,
        phase: "alone",
        issued: config.clients * config.queries_per_client,
        admitted: admitted_alone,
        rejected: rejected_alone,
        p50_ms: percentile(&mut lat_alone, 50.0) * 1e3,
        p99_ms: percentile(&mut lat_alone, 99.0) * 1e3,
    };

    // phase 2: same frontend load, analytics flooding concurrently
    let flood_clients = config.clients * config.aggressive_factor;
    let (contended, aggressive) = std::thread::scope(|scope| {
        let wb_handle = scope.spawn(|| {
            drive(&px, wb, config.clients, config.queries_per_client, &workload, &gate)
        });
        let ag_handle = scope.spawn(|| {
            drive(&px, ag, flood_clients, config.queries_per_client, &workload, &gate)
        });
        let (mut wb_lat, wb_adm, wb_rej) = wb_handle.join().expect("frontend phase");
        let (mut ag_lat, ag_adm, ag_rej) = ag_handle.join().expect("analytics phase");
        (
            TenantOutcome {
                tenant: WELL_BEHAVED,
                phase: "contended",
                issued: config.clients * config.queries_per_client,
                admitted: wb_adm,
                rejected: wb_rej,
                p50_ms: percentile(&mut wb_lat, 50.0) * 1e3,
                p99_ms: percentile(&mut wb_lat, 99.0) * 1e3,
            },
            TenantOutcome {
                tenant: AGGRESSIVE,
                phase: "contended",
                issued: flood_clients * config.queries_per_client,
                admitted: ag_adm,
                rejected: ag_rej,
                p50_ms: percentile(&mut ag_lat, 50.0) * 1e3,
                p99_ms: percentile(&mut ag_lat, 99.0) * 1e3,
            },
        )
    });

    let base_ms = alone.p99_ms.max(P99_FLOOR_S * 1e3);
    let isolation_factor = contended.p99_ms / base_ms;
    let isolation_held = isolation_factor <= config.isolation_bound;
    let checks = gate.checks.load(Ordering::Relaxed);
    let mismatches = gate.mismatches.load(Ordering::Relaxed);
    let verified = checks > 0 && mismatches == 0;

    for outcome in [&alone, &contended, &aggressive] {
        println!(
            "  {:<10} {:<10} issued {:>5}  admitted {:>5}  rejected {:>5}  p50 {:>8.3} ms  p99 {:>8.3} ms",
            outcome.tenant,
            outcome.phase,
            outcome.issued,
            outcome.admitted,
            outcome.rejected,
            outcome.p50_ms,
            outcome.p99_ms,
        );
    }
    println!(
        "  isolation factor {isolation_factor:.2}x (bound {:.1}x) → held: {isolation_held}; oracle checks {checks}, mismatches {mismatches}",
        config.isolation_bound,
    );

    MultitenantResult {
        alone,
        contended,
        aggressive,
        isolation_factor,
        isolation_held,
        oracle_checks: checks,
        oracle_mismatches: mismatches,
        verified,
    }
}

pub fn to_json(config: &MultitenantConfig, result: &MultitenantResult) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "multitenant");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "fragments", config.fragments as f64);
    json::num_field(&mut out, "clients", config.clients as f64);
    json::num_field(&mut out, "queries_per_client", config.queries_per_client as f64);
    json::num_field(&mut out, "aggressive_factor", config.aggressive_factor as f64);
    json::num_field(
        &mut out,
        "aggressive_max_concurrent",
        config.aggressive_max_concurrent as f64,
    );
    json::num_field(&mut out, "isolation_bound", config.isolation_bound);
    let tenants: Vec<String> = [&result.alone, &result.contended, &result.aggressive]
        .iter()
        .map(|o| o.to_json())
        .collect();
    json::raw_field(&mut out, "tenants", &format!("[{}]", tenants.join(",")));
    json::num_field(&mut out, "p99_alone_ms", result.alone.p99_ms);
    json::num_field(&mut out, "p99_contended_ms", result.contended.p99_ms);
    json::num_field(&mut out, "isolation_factor", result.isolation_factor);
    json::bool_field(&mut out, "isolation_held", result.isolation_held);
    json::num_field(&mut out, "oracle_checks", result.oracle_checks as f64);
    json::num_field(&mut out, "oracle_mismatches", result.oracle_mismatches as f64);
    json::bool_field(&mut out, "verified", result.verified);
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolation_bench_smoke() {
        let config = MultitenantConfig {
            db_bytes: 40_000,
            fragments: 2,
            clients: 2,
            queries_per_client: 4,
            aggressive_factor: 3,
            aggressive_max_concurrent: 1,
            aggressive_max_queued: 1,
            // the smoke test gates correctness and typed rejection, not
            // timing: tiny runs are all noise
            isolation_bound: f64::INFINITY,
        };
        let result = run(&config);
        assert!(result.verified, "oracle mismatch");
        assert_eq!(result.alone.rejected, 0, "well-behaved tenant rejected alone");
        assert_eq!(
            result.contended.rejected, 0,
            "well-behaved tenant rejected under contention"
        );
        assert_eq!(
            result.alone.admitted,
            result.alone.issued,
            "well-behaved tenant lost queries"
        );
        // the flood's quota (1 concurrent, 1 queued, 6 clients) must bite
        assert!(result.aggressive.rejected > 0, "flood never rejected");
        assert!(result.aggressive.admitted > 0, "flood never admitted");
        assert!(result.isolation_held);
        let json = to_json(&config, &result);
        assert!(json.contains("\"experiment\":\"multitenant\""));
        assert!(json.contains("\"verified\":true"));
    }
}
