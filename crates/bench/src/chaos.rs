//! Chaos benchmark: closed-loop throughput under injected faults.
//!
//! Not a paper figure — the paper assumes healthy nodes. This benchmark
//! measures what the dispatch layer's retry/deadline/failover machinery
//! ([`partix_engine::RetryPolicy`]) buys when nodes misbehave: a seeded
//! [`FaultPlan`] wraps a subset of node drivers in
//! [`partix_engine::FaultInjector`]s (crashes, DBMS errors, injected
//! latency, flip-flopping availability) and N closed-loop clients hammer
//! the same repeated workload as the throughput benchmark. Three runs
//! are compared on one database:
//!
//! * `fault-free`      — no injectors: the reference QPS/latency;
//! * `faulted`         — injectors installed, strict mode (a query whose
//!   fragment loses every replica fails with a typed error);
//! * `faulted-partial` — same injectors, `ExecOptions::allow_partial`:
//!   degraded answers from the responding fragments.
//!
//! The fault schedule is **fully deterministic from the seed**: the same
//! `--seed` produces byte-identical [`FaultPlan::describe`] strings (and
//! therefore the same per-node fault parameters) on every run.

use crate::output::json;
use crate::throughput::{percentile, StagePercentiles, StageSamples};
use crate::{queries, setup};
use partix_engine::{
    DispatchMode, ExecOptions, FaultInjector, FaultPlan, PartiX, RetryPolicy,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Total database size in bytes.
    pub db_bytes: usize,
    /// Cluster nodes (== horizontal fragments).
    pub nodes: usize,
    /// Replicas per fragment (≥ 2 keeps single-node faults survivable).
    pub replicas: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Queries each client issues.
    pub queries_per_client: usize,
    /// Fault-schedule seed ([`FaultPlan::from_seed`]).
    pub seed: u64,
    /// Fraction of nodes given a fault schedule (0.0–1.0).
    pub rate: f64,
    /// Per-attempt dispatch deadline in milliseconds.
    pub timeout_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            db_bytes: 100_000,
            nodes: 4,
            replicas: 2,
            clients: 8,
            queries_per_client: 25,
            seed: 0xC4A0_5EED,
            // a majority of nodes misbehave: with 2 replicas per
            // fragment the cluster still answers most queries
            rate: 0.6,
            // between the injected latency bounds (20–119 ms), so some
            // latency faults pass the deadline and some expire it
            timeout_ms: 75,
        }
    }
}

/// One chaos run's aggregate outcome.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    pub label: &'static str,
    pub ok: usize,
    pub failed: usize,
    /// Successful answers flagged partial (degraded mode only).
    pub partial: usize,
    pub wall_s: f64,
    /// Successful queries per wall-clock second.
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub retries: usize,
    pub failovers: usize,
    pub timeouts: usize,
    /// Injector-side tallies, summed over faulty nodes.
    pub injected_errors: usize,
    pub injected_outages: usize,
    pub delayed_calls: usize,
    /// Per-stage p50/p99 attribution over the run's successful queries.
    pub stages: StagePercentiles,
}

impl ChaosResult {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json::str_field(&mut out, "label", self.label);
        json::num_field(&mut out, "ok", self.ok as f64);
        json::num_field(&mut out, "failed", self.failed as f64);
        json::num_field(&mut out, "partial", self.partial as f64);
        json::num_field(&mut out, "wall_s", self.wall_s);
        json::num_field(&mut out, "qps", self.qps);
        json::num_field(&mut out, "p50_ms", self.p50_ms);
        json::num_field(&mut out, "p99_ms", self.p99_ms);
        json::num_field(&mut out, "retries", self.retries as f64);
        json::num_field(&mut out, "failovers", self.failovers as f64);
        json::num_field(&mut out, "timeouts", self.timeouts as f64);
        json::num_field(&mut out, "injected_errors", self.injected_errors as f64);
        json::num_field(&mut out, "injected_outages", self.injected_outages as f64);
        json::num_field(&mut out, "delayed_calls", self.delayed_calls as f64);
        self.stages.json_fields(&mut out);
        out.push('}');
        out
    }
}

/// Per-client tallies, merged across the client threads.
#[derive(Debug, Default)]
struct Tally {
    latencies: Vec<f64>,
    stages: StageSamples,
    ok: usize,
    failed: usize,
    partial: usize,
    retries: usize,
    failovers: usize,
    timeouts: usize,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.latencies.extend(other.latencies);
        self.stages.merge(other.stages);
        self.ok += other.ok;
        self.failed += other.failed;
        self.partial += other.partial;
        self.retries += other.retries;
        self.failovers += other.failovers;
        self.timeouts += other.timeouts;
    }
}

/// Drive the closed-loop clients, tolerating failures (unlike the
/// throughput benchmark's driver, which treats any error as fatal).
fn run_clients_faulty(
    px: &PartiX,
    clients: usize,
    queries_per_client: usize,
    workload: &[(&'static str, String)],
    options: ExecOptions,
) -> (f64, Tally) {
    let start = Instant::now();
    let mut total = Tally::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut tally = Tally::default();
                    for k in 0..queries_per_client {
                        let (_, query) = &workload[(client + k) % workload.len()];
                        let issued = Instant::now();
                        match px.execute_with(query, options) {
                            Ok(result) => {
                                tally.latencies.push(issued.elapsed().as_secs_f64());
                                tally.stages.record(&result.report.stages);
                                tally.ok += 1;
                                tally.partial += usize::from(result.report.partial);
                                tally.retries += result.report.retries;
                                tally.failovers += result.report.failovers;
                                tally.timeouts += result.report.timeouts;
                            }
                            Err(_) => tally.failed += 1,
                        }
                    }
                    tally
                })
            })
            .collect();
        for handle in handles {
            total.merge(handle.join().expect("client thread"));
        }
    });
    (start.elapsed().as_secs_f64(), total)
}

/// Build the replicated middleware for one run: pooled dispatch plus a
/// deadline-armed retry policy.
fn build_px(docs: &[partix_xml::Document], config: &ChaosConfig) -> PartiX {
    let mut px = setup::horizontal_replicated(docs, config.nodes, config.replicas);
    px.set_dispatch(DispatchMode::Pool);
    px.set_retry_policy(RetryPolicy {
        timeout: Some(Duration::from_millis(config.timeout_ms)),
        ..RetryPolicy::default()
    });
    px
}

fn one_run(
    docs: &[partix_xml::Document],
    config: &ChaosConfig,
    label: &'static str,
    plan: Option<&FaultPlan>,
    options: ExecOptions,
    remote: bool,
) -> ChaosResult {
    let px = build_px(docs, config);
    // remote first, injectors second: the injectors must wrap the
    // network drivers so faults fire *on top of* the real transport
    let _wire = remote.then(|| crate::remote::RemoteCluster::attach(&px));
    let injectors: Vec<Option<Arc<FaultInjector>>> = match plan {
        Some(plan) => plan.install(&px),
        None => Vec::new(),
    };
    let workload = queries::horizontal(setup::DIST);
    let (wall_s, mut tally) = run_clients_faulty(
        &px,
        config.clients,
        config.queries_per_client,
        &workload,
        options,
    );
    let mut injected_errors = 0;
    let mut injected_outages = 0;
    let mut delayed_calls = 0;
    for injector in injectors.iter().flatten() {
        let stats = injector.stats();
        injected_errors += stats.injected_errors;
        injected_outages += stats.injected_outages;
        delayed_calls += stats.delayed_calls;
    }
    let p50_ms = percentile(&mut tally.latencies, 50.0) * 1e3;
    let p99_ms = percentile(&mut tally.latencies, 99.0) * 1e3;
    ChaosResult {
        label,
        ok: tally.ok,
        failed: tally.failed,
        partial: tally.partial,
        wall_s,
        qps: tally.ok as f64 / wall_s.max(1e-9),
        p50_ms,
        p99_ms,
        retries: tally.retries,
        failovers: tally.failovers,
        timeouts: tally.timeouts,
        injected_errors,
        injected_outages,
        delayed_calls,
        stages: tally.stages.percentiles_ms(),
    }
}

/// Run the three-way comparison. The same [`FaultPlan`] (hence the same
/// schedule) serves both faulted runs.
pub fn run(config: &ChaosConfig) -> (FaultPlan, Vec<ChaosResult>) {
    run_with(config, false)
}

/// [`run`] with an optional remote transport: with `remote` true every
/// node sits behind a loopback TCP server and the fault injectors wrap
/// the network drivers, so injected crashes/latency compose with real
/// socket failure modes.
pub fn run_with(config: &ChaosConfig, remote: bool) -> (FaultPlan, Vec<ChaosResult>) {
    let docs = setup::item_db(config.db_bytes, partix_gen::ItemProfile::Small);
    let plan = FaultPlan::from_seed(config.seed, config.nodes, config.rate);
    println!(
        "\n### chaos{}: ItemsSHor {} B, {} nodes × {} replicas, {} clients × {} queries, deadline {} ms",
        if remote { " (remote TCP transport)" } else { "" },
        config.db_bytes,
        config.nodes,
        config.replicas,
        config.clients,
        config.queries_per_client,
        config.timeout_ms,
    );
    println!("fault schedule: {}", plan.describe());
    println!(
        "{:<16} {:>6} {:>6} {:>8} {:>9} {:>10} {:>10} {:>8} {:>9} {:>8}",
        "run", "ok", "fail", "partial", "QPS", "p50(ms)", "p99(ms)", "retries", "failover", "timeout"
    );
    let mut results = Vec::new();
    for (label, faulted, options) in [
        ("fault-free", false, ExecOptions::default()),
        ("faulted", true, ExecOptions::default()),
        ("faulted-partial", true, ExecOptions { allow_partial: true, ..ExecOptions::default() }),
    ] {
        let result = one_run(
            &docs,
            config,
            label,
            faulted.then_some(&plan),
            options,
            remote,
        );
        println!(
            "{:<16} {:>6} {:>6} {:>8} {:>9.1} {:>10.3} {:>10.3} {:>8} {:>9} {:>8}",
            result.label,
            result.ok,
            result.failed,
            result.partial,
            result.qps,
            result.p50_ms,
            result.p99_ms,
            result.retries,
            result.failovers,
            result.timeouts,
        );
        results.push(result);
    }
    (plan, results)
}

/// Serialize one chaos sweep as a JSON document (`BENCH_chaos.json`).
pub fn to_json(
    config: &ChaosConfig,
    plan: &FaultPlan,
    results: &[ChaosResult],
    remote: bool,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "chaos");
    json::bool_field(&mut out, "remote", remote);
    // hex string: u64 seeds do not fit losslessly in a JSON double
    json::str_field(&mut out, "seed", &format!("{:#x}", config.seed));
    json::num_field(&mut out, "rate", config.rate);
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "nodes", config.nodes as f64);
    json::num_field(&mut out, "replicas", config.replicas as f64);
    json::num_field(&mut out, "clients", config.clients as f64);
    json::num_field(&mut out, "queries_per_client", config.queries_per_client as f64);
    json::num_field(&mut out, "timeout_ms", config.timeout_ms as f64);
    json::str_field(&mut out, "schedule", &plan.describe());
    let runs: Vec<String> = results.iter().map(ChaosResult::to_json).collect();
    json::raw_field(&mut out, "runs", &format!("[{}]", runs.join(",")));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ChaosConfig {
        ChaosConfig {
            db_bytes: 20_000,
            nodes: 3,
            replicas: 2,
            clients: 2,
            queries_per_client: 4,
            seed: 7,
            rate: 1.0,
            timeout_ms: 60,
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let config = tiny_config();
        let a = FaultPlan::from_seed(config.seed, config.nodes, config.rate);
        let b = FaultPlan::from_seed(config.seed, config.nodes, config.rate);
        assert_eq!(a.describe(), b.describe());
        let other = FaultPlan::from_seed(config.seed + 1, config.nodes, config.rate);
        assert_ne!(a.describe(), other.describe());
    }

    #[test]
    fn three_way_run_completes_and_serializes() {
        let config = tiny_config();
        let (plan, results) = run(&config);
        assert_eq!(results.len(), 3);
        let budget = config.clients * config.queries_per_client;
        for r in &results {
            assert_eq!(r.ok + r.failed, budget, "{}", r.label);
        }
        let clean = &results[0];
        assert_eq!(clean.failed, 0);
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.injected_errors + clean.injected_outages, 0);
        // rate 1.0 faults every node: the faulted runs must observe them
        let faulted = &results[1];
        assert!(
            faulted.injected_errors + faulted.injected_outages + faulted.delayed_calls > 0,
            "no fault fired"
        );
        // stage attribution rides along: dispatch dominates clean runs
        assert!(clean.stages.dispatch_p50_ms > 0.0, "no dispatch stage time");
        let doc = to_json(&config, &plan, &results, false);
        assert!(doc.contains("\"experiment\":\"chaos\""));
        assert!(doc.contains("\"remote\":false"));
        assert!(doc.contains("\"schedule\":\""));
        assert!(doc.contains("\"label\":\"faulted-partial\""));
        assert!(doc.contains("\"dispatch_p99_ms\":"));
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}
