//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (Section 5). Run `harness help` for usage.

use partix_bench::output::{human_bytes, Record, Sink};
use partix_bench::{queries, runner, setup};
use partix_frag::FragMode;
use partix_gen::{ArticleProfile, ItemProfile};

const MB: usize = 1_048_576;

struct Args {
    command: String,
    /// Fraction of the paper's database sizes (default 0.02).
    scale: f64,
    /// Database sizes in paper-MB (before scaling).
    sizes: Vec<usize>,
    /// Fragment counts for the horizontal experiments.
    frags: Vec<usize>,
    /// Timed repetitions after the discarded warm-up.
    reps: usize,
    /// Optional JSON-lines log path.
    log: Option<String>,
    /// Concurrent-client counts for the throughput benchmark.
    clients: Vec<usize>,
    /// Queries per client for the throughput benchmark.
    queries: usize,
    /// Output path for the throughput benchmark's JSON document.
    out: String,
    /// Fault-schedule seed for the chaos benchmark (hex or decimal).
    seed: u64,
    /// Per-node fault probability for the chaos benchmark.
    rate: f64,
    /// Replicas per fragment for the chaos benchmark.
    replicas: usize,
    /// Per-attempt dispatch deadline for the chaos benchmark (ms).
    timeout_ms: u64,
    /// Run throughput/chaos over loopback TCP node servers.
    remote: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: std::env::args().nth(1).unwrap_or_else(|| "help".into()),
        scale: 0.02,
        sizes: vec![5, 20, 100, 250],
        frags: vec![2, 4, 8],
        reps: 2,
        log: None,
        clients: vec![1, 4, 16],
        queries: 40,
        out: "BENCH_throughput.json".into(),
        seed: 0xC4A0_5EED,
        rate: 0.6,
        replicas: 2,
        timeout_ms: 75,
        remote: false,
    };
    let rest: Vec<String> = std::env::args().skip(2).collect();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        // boolean flag: consumes no value
        if flag == "--remote" {
            args.remote = true;
            i += 1;
            continue;
        }
        let value = rest.get(i + 1).cloned().unwrap_or_default();
        match flag {
            "--scale" => args.scale = value.parse().expect("--scale takes a number"),
            "--sizes" => {
                args.sizes = value
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes MB numbers"))
                    .collect()
            }
            "--frags" => {
                args.frags = value
                    .split(',')
                    .map(|s| s.parse().expect("--frags takes numbers"))
                    .collect()
            }
            "--reps" => args.reps = value.parse().expect("--reps takes a number"),
            "--log" => args.log = Some(value.clone()),
            "--clients" => {
                args.clients = value
                    .split(',')
                    .map(|s| s.parse().expect("--clients takes numbers"))
                    .collect()
            }
            "--queries" => args.queries = value.parse().expect("--queries takes a number"),
            "--out" => args.out = value.clone(),
            "--seed" => args.seed = parse_seed(&value),
            "--rate" => args.rate = value.parse().expect("--rate takes a probability"),
            "--replicas" => {
                args.replicas = value.parse().expect("--replicas takes a number")
            }
            "--timeout-ms" => {
                args.timeout_ms = value.parse().expect("--timeout-ms takes milliseconds")
            }
            other => panic!("unknown flag {other}; see `harness help`"),
        }
        i += 2;
    }
    args
}

/// Seeds are u64 and commonly quoted in hex (`--seed 0xC4A05EED`), which
/// a plain `parse` rejects.
fn parse_seed(value: &str) -> u64 {
    let parsed = match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.expect("--seed takes a decimal or 0x-prefixed hex number")
}

fn main() {
    let args = parse_args();
    let mut sink = Sink::new(args.log.as_deref());
    match args.command.as_str() {
        "fig7a" => fig7_horizontal(&args, &mut sink, "fig7a", "ItemsSHor", ItemProfile::Small),
        "fig7b" => fig7_horizontal(&args, &mut sink, "fig7b", "ItemsLHor", ItemProfile::Large),
        "fig7c" => fig7c(&args, &mut sink),
        "fig7d" => fig7d(&args, &mut sink),
        "headline" => headline(&args, &mut sink),
        "ablation-index" => ablation_index(&args),
        "ablation-fragmode" => ablation_fragmode(&args),
        "ablation-localization" => ablation_localization(&args),
        "throughput" => throughput_bench(&args),
        "chaos" => chaos_bench(&args),
        "rebalance" => rebalance_bench(&args),
        "scaleout" => scaleout_bench(&args),
        "morsel" => morsel_bench(&args),
        "writes" => writes_bench(&args),
        "storage" => storage_bench(&args),
        "multitenant" => multitenant_bench(&args),
        "all" => {
            fig7_horizontal(&args, &mut sink, "fig7a", "ItemsSHor", ItemProfile::Small);
            fig7_horizontal(&args, &mut sink, "fig7b", "ItemsLHor", ItemProfile::Large);
            fig7c(&args, &mut sink);
            fig7d(&args, &mut sink);
            headline(&args, &mut sink);
            ablation_index(&args);
            ablation_fragmode(&args);
            ablation_localization(&args);
        }
        _ => help(),
    }
}

fn help() {
    println!(
        "PartiX experiment harness — regenerates the paper's evaluation

USAGE: harness <command> [flags]

COMMANDS
  fig7a              horizontal fragmentation, ItemsSHor (≈2 KB docs)
  fig7b              horizontal fragmentation, ItemsLHor (≈80 KB docs)
  fig7c              vertical fragmentation, XBenchVer articles
  fig7d              hybrid fragmentation, StoreHyb, FragMode1/2 ± transmission
  headline           the paper's '72x' text-search/aggregation scale-up table
  ablation-index     text/value index on vs off (centralized)
  ablation-fragmode  per-document page-decode cost: hot vs cold, FragMode1 vs 2
  ablation-localization  fragment pruning on vs off (8 fragments)
  throughput         multi-client QPS/latency: threads vs worker pool ± result cache
  chaos              QPS/latency under a seeded fault schedule: fault-free vs
                     faulted vs faulted+allow_partial (same --seed = same schedule)
  rebalance          skewed placement (everything on node 0) measured, advised,
                     migrated live, re-measured (same --seed = same advice)
  scaleout           replicated-coordinator scale-out over the PXN2 streaming
                     transport: QPS/p50/p99 at 1/2/3 coordinators (shared
                     nodes + epoch-versioned meta catalog), streamed vs
                     buffered, gated on oracle-identical answers; --clients
                     uses the largest entry (default 256)
  morsel             intra-fragment parallel scans: every query timed
                     sequentially and morsel-split on one node; the gate is
                     byte-identical answers (speedup needs spare cores)
  writes             mixed read/write QPS over WAL-backed nodes at 10% and
                     50% write ratios; reports read/write p50/p99, WAL
                     append/fsync counts, and an oracle-verified final state
  storage            hot vs cold-indexed vs cold-scan over ≈80 KB and ≈5 MB
                     document classes, plus PXB1/PXB2/zero-copy-view decode
                     costs; the gate is byte-identical answers across
                     configurations
  multitenant        two tenants on one coordinator: a well-behaved
                     interactive tenant measured alone, then again while a
                     quota-capped batch tenant floods at 10x its load; gates
                     on bounded p99 inflation AND oracle-identical answers
  all                everything above (except throughput, chaos and rebalance)

FLAGS
  --scale F          fraction of the paper's database sizes (default 0.02)
  --sizes A,B,..     database sizes in paper-MB (default 5,20,100,250)
  --frags A,B,..     fragment counts for fig7a/b; throughput uses the first (default 2,4,8)
  --reps N           timed repetitions after warm-up (default 2)
  --log FILE         append JSON-lines records to FILE
  --clients A,B,..   concurrent clients for throughput (default 1,4,16);
                     chaos uses the largest entry
  --queries N        queries per client for throughput/chaos (default 40)
  --out FILE         throughput/chaos/rebalance/morsel/writes JSON output
                     (default BENCH_throughput.json; BENCH_chaos.json for
                     chaos, BENCH_rebalance.json for rebalance,
                     BENCH_morsel.json for morsel, BENCH_writes.json for
                     writes, BENCH_multitenant.json for multitenant)
  --seed S           chaos fault-schedule / rebalance advisor seed, decimal or
                     0x-hex (default 0xC4A05EED)
  --rate P           chaos per-node fault probability (default 0.6)
  --replicas N       chaos replicas per fragment (default 2)
  --timeout-ms N     chaos per-attempt dispatch deadline (default 75)
  --remote           throughput/chaos/rebalance: put every node behind its own
                     loopback TCP server (partix-net wire protocol); the
                     JSON gains remote:true and genuine bytes_shipped"
    );
}

/// Fig. 7(a)/(b): horizontal fragmentation across fragment counts and
/// database sizes.
fn fig7_horizontal(
    args: &Args,
    sink: &mut Sink,
    experiment: &str,
    database: &str,
    profile: ItemProfile,
) {
    println!("\n### {experiment}: {database}, horizontal fragmentation, scale {}", args.scale);
    for &size_mb in &args.sizes {
        let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
        let docs = setup::item_db(bytes, profile);
        println!(
            "-- database {} ({} docs of ≈{})",
            human_bytes(bytes),
            docs.len(),
            human_bytes(bytes / docs.len().max(1)),
        );
        for &n in &args.frags {
            let px = setup::horizontal(&docs, n);
            for (id, q) in queries::horizontal(setup::DIST) {
                let m = runner::compare(&px, id, &q, args.reps);
                sink.push(Record::from_measurement(
                    experiment,
                    database,
                    bytes,
                    n,
                    &format!("{n} frags"),
                    &m,
                ));
            }
        }
        sink.print_speedup_table(experiment, bytes);
    }
}

/// Fig. 7(c): vertical fragmentation of XBench articles.
fn fig7c(args: &Args, sink: &mut Sink) {
    println!("\n### fig7c: XBenchVer, vertical fragmentation (prolog/body/epilog), scale {}", args.scale);
    for &size_mb in &args.sizes {
        let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
        // ≈100 KB articles; at least 3 so every node holds data
        let per_article = 100 * 1024;
        let count = (bytes / per_article).max(3);
        let docs = partix_gen::gen_articles(count, ArticleProfile::LARGE, 0xA11CE);
        println!("-- database {} ({count} articles)", human_bytes(bytes));
        let px = setup::vertical(&docs);
        for (id, q) in queries::vertical(setup::DIST) {
            let m = runner::compare(&px, id, &q, args.reps);
            sink.push(Record::from_measurement(
                "fig7c", "XBenchVer", bytes, 3, "3 vert frags", &m,
            ));
        }
        sink.print_speedup_table("fig7c", bytes);
    }
}

/// Fig. 7(d/e): hybrid fragmentation of the SD store, FragMode1 vs
/// FragMode2, with (−T) and without (−NT) transmission times.
fn fig7d(args: &Args, sink: &mut Sink) {
    println!("\n### fig7d: StoreHyb, hybrid fragmentation, scale {}", args.scale);
    for &size_mb in &args.sizes {
        let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
        let store = partix_gen::store::gen_store_to_size(bytes, ItemProfile::Small, 0xA11CE);
        println!(
            "-- store document {} ({} items)",
            human_bytes(store.approx_size()),
            partix_path::eval_path(
                &store,
                &partix_path::PathExpr::parse("/Store/Items/Item").unwrap()
            )
            .len()
        );
        for (mode, mode_label) in [
            (FragMode::ManySmallDocs, "FragMode1"),
            (FragMode::SingleDoc, "FragMode2"),
        ] {
            for (net_label, instantaneous) in [("T", false), ("NT", true)] {
                let mut px = setup::hybrid(&store, mode);
                if instantaneous {
                    px.set_network(partix_engine::NetworkModel::instantaneous());
                }
                for (id, q) in queries::hybrid(setup::DIST) {
                    let m = runner::compare(&px, id, &q, args.reps);
                    sink.push(Record::from_measurement(
                        "fig7d",
                        "StoreHyb",
                        bytes,
                        5,
                        &format!("{mode_label}-{net_label}"),
                        &m,
                    ));
                }
            }
        }
        sink.print_speedup_table("fig7d", bytes);
    }
}

/// The paper's headline: text searches and aggregations over the largest
/// ItemsSHor database, 8 fragments — "up to a 72 scale up factor".
fn headline(args: &Args, sink: &mut Sink) {
    let size_mb = args.sizes.iter().copied().max().unwrap_or(250);
    let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
    println!(
        "\n### headline: ItemsSHor {} / 8 fragments — text search & aggregation scale-up",
        human_bytes(bytes)
    );
    let docs = setup::item_db(bytes, ItemProfile::Small);
    let px = setup::horizontal(&docs, 8);
    let mut best = 0.0f64;
    for (id, q) in queries::horizontal(setup::DIST) {
        if !matches!(id, "QH5" | "QH6" | "QH7" | "QH8") {
            continue;
        }
        let m = runner::compare(&px, id, &q, args.reps);
        println!(
            "  {id}: centralized {:.5}s, distributed {:.5}s → {:.1}x",
            m.centralized_s, m.distributed_s, m.speedup
        );
        best = best.max(m.speedup);
        sink.push(Record::from_measurement(
            "headline", "ItemsSHor", bytes, 8, "8 frags", &m,
        ));
    }
    println!("  best scale-up factor: {best:.1}x (paper reports up to 72x on its hardware)");
}

/// Ablation: the automatic text/value indexes (eXist's, ours) on vs off.
fn ablation_index(args: &Args) {
    let size_mb = args.sizes.iter().copied().max().unwrap_or(250);
    let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
    println!("\n### ablation-index: ItemsSHor {}, centralized node", human_bytes(bytes));
    let docs = setup::item_db(bytes, ItemProfile::Small);
    let px = setup::horizontal(&docs, 2);
    let db = &px.cluster().node(0).expect("node 0").db;
    for (id, q) in queries::horizontal(setup::CENTRAL) {
        // QH1 exercises the (optional) value index; QH5/QH8 the
        // automatic text index
        if !matches!(id, "QH1" | "QH5" | "QH8") {
            continue;
        }
        let timed = |reps: usize| {
            let mut total = 0.0;
            let _ = db.execute(&q).expect("warm-up");
            for _ in 0..reps {
                total += db.execute(&q).expect("run").stats.elapsed;
            }
            total / reps as f64
        };
        db.set_index_enabled(true);
        db.set_value_index_enabled(id == "QH1");
        let with_index = timed(args.reps.max(1));
        db.set_index_enabled(false);
        let without = timed(args.reps.max(1));
        db.set_index_enabled(true);
        db.set_value_index_enabled(false);
        let which = if id == "QH1" { "value index" } else { "text index" };
        println!(
            "  {id}: {which} {with_index:.5}s, full scan {without:.5}s → {:.1}x from indexing",
            without / with_index.max(1e-12)
        );
    }
}

/// Ablation: data localization (fragment pruning) on vs off — the
/// paper's "sub-queries are issued only to the corresponding fragments".
fn ablation_localization(args: &Args) {
    let size_mb = args.sizes.iter().copied().max().unwrap_or(250);
    let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
    println!(
        "\n### ablation-localization: ItemsSHor {}, 8 fragments",
        human_bytes(bytes)
    );
    let docs = setup::item_db(bytes, ItemProfile::Small);
    let px = setup::horizontal(&docs, 8);
    for (id, q) in queries::horizontal(setup::DIST) {
        // the localizable queries: predicate matches the fragmentation
        if !matches!(id, "QH1" | "QH2" | "QH7") {
            continue;
        }
        px.set_localization_enabled(true);
        let with = runner::compare(&px, id, &q, args.reps);
        px.set_localization_enabled(false);
        let without = runner::compare(&px, id, &q, args.reps);
        px.set_localization_enabled(true);
        println!(
            "  {id}: localized {:.5}s ({} site(s)), unlocalized {:.5}s ({} site(s)) → {:.1}x from pruning",
            with.distributed_s,
            with.sites,
            without.distributed_s,
            without.sites,
            without.distributed_s / with.distributed_s.max(1e-12),
        );
    }
}

/// Multi-client closed-loop throughput: transient threads vs the
/// persistent worker pool, with and without the result cache.
fn throughput_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::throughput::ThroughputConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        fragments: args.frags.first().copied().unwrap_or(4),
        clients: args.clients.clone(),
        queries_per_client: args.queries,
    };
    let results = partix_bench::throughput::run_with(&config, args.remote);
    let overhead = partix_bench::throughput::measure_trace_overhead(&config);
    std::fs::write(
        &args.out,
        partix_bench::throughput::to_json(&config, &results, overhead),
    )
    .expect("write throughput JSON");
    println!("wrote {}", args.out);
}

/// Coordinator scale-out over the `PXN2` streaming transport: QPS and
/// latency at 1/2/3 replicated coordinators, streamed vs buffered, every
/// answer gated on a centralized oracle.
fn scaleout_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::scaleout::ScaleoutConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        fragments: args.frags.first().copied().unwrap_or(4),
        clients: args.clients.iter().copied().max().unwrap_or(256),
        queries_per_client: args.queries,
        ..Default::default()
    };
    let results = partix_bench::scaleout::run(&config);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_scaleout.json".to_owned()
    } else {
        args.out.clone()
    };
    std::fs::write(&out, partix_bench::scaleout::to_json(&config, &results))
        .expect("write scaleout JSON");
    println!("wrote {out}");
}

/// Closed-loop throughput under a seeded fault schedule: fault-free vs
/// faulted (strict) vs faulted with `allow_partial`.
fn chaos_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::chaos::ChaosConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        nodes: args.frags.first().copied().unwrap_or(4),
        replicas: args.replicas,
        clients: args.clients.iter().copied().max().unwrap_or(8),
        queries_per_client: args.queries,
        seed: args.seed,
        rate: args.rate,
        timeout_ms: args.timeout_ms,
    };
    let (plan, results) = partix_bench::chaos::run_with(&config, args.remote);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_chaos.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, partix_bench::chaos::to_json(&config, &plan, &results, args.remote))
        .expect("write chaos JSON");
    println!("wrote {out}");
}

/// The skew → advise → live-rebalance → re-measure experiment.
fn rebalance_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let nodes = args.frags.first().copied().unwrap_or(4);
    let config = partix_bench::rebalance::RebalanceBenchConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        fragments: nodes,
        nodes,
        clients: args.clients.iter().copied().max().unwrap_or(8),
        queries_per_client: args.queries,
        seed: args.seed,
    };
    let result = partix_bench::rebalance::run_with(&config, args.remote);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_rebalance.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, result.to_json()).expect("write rebalance JSON");
    println!("wrote {out}");
}

/// Intra-fragment morsel parallelism: sequential vs split scans on one
/// node's database.
fn morsel_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::morsel::MorselBenchConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        workers: args.frags.first().copied().unwrap_or(4),
        reps: args.reps,
        ..Default::default()
    };
    let (docs, results) = partix_bench::morsel::run_with(&config);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_morsel.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, partix_bench::morsel::to_json(&config, docs, &results))
        .expect("write morsel JSON");
    println!("wrote {out}");
}

/// Mixed read/write closed-loop benchmark over WAL-backed nodes with an
/// oracle-verified final state.
fn writes_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::writes::WritesConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        fragments: args.frags.first().copied().unwrap_or(4),
        clients: args.clients.iter().copied().max().unwrap_or(4),
        ops_per_client: args.queries,
        ..Default::default()
    };
    let results = partix_bench::writes::run(&config);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_writes.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, partix_bench::writes::to_json(&config, &results))
        .expect("write writes JSON");
    println!("wrote {out}");
}

/// Storage-path microbench: hot vs cold-indexed vs cold-scan, plus
/// per-format page decode costs.
fn storage_bench(args: &Args) {
    let config = partix_bench::storage::StorageBenchConfig {
        reps: args.reps.max(1),
        ..Default::default()
    };
    let classes = partix_bench::storage::run_with(&config);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_storage.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, partix_bench::storage::to_json(&config, &classes))
        .expect("write storage JSON");
    println!("wrote {out}");
}

/// Two-tenant isolation: well-behaved p99 alone vs under an
/// admission-controlled flood, gated on oracle-identical answers.
fn multitenant_bench(args: &Args) {
    let size_mb = args.sizes.iter().copied().min().unwrap_or(5);
    let config = partix_bench::multitenant::MultitenantConfig {
        db_bytes: ((size_mb * MB) as f64 * args.scale) as usize,
        fragments: args.frags.first().copied().unwrap_or(4),
        clients: args.clients.iter().copied().min().unwrap_or(4),
        queries_per_client: args.queries,
        ..Default::default()
    };
    let result = partix_bench::multitenant::run(&config);
    let out = if args.out == "BENCH_throughput.json" {
        "BENCH_multitenant.json"
    } else {
        args.out.as_str()
    };
    std::fs::write(out, partix_bench::multitenant::to_json(&config, &result))
        .expect("write multitenant JSON");
    println!("wrote {out}");
}

/// Ablation: the per-document page-decode (parse) cost behind the
/// FragMode1 vs FragMode2 gap.
fn ablation_fragmode(args: &Args) {
    let size_mb = args.sizes.iter().copied().max().unwrap_or(250);
    let bytes = ((size_mb * MB) as f64 * args.scale) as usize;
    println!("\n### ablation-fragmode: StoreHyb {}", human_bytes(bytes));
    let store = partix_gen::store::gen_store_to_size(bytes, ItemProfile::Small, 0xA11CE);
    for (mode, label) in [
        (FragMode::ManySmallDocs, "FragMode1 (many small docs)"),
        (FragMode::SingleDoc, "FragMode2 (one spine doc)"),
    ] {
        let px = setup::hybrid(&store, mode);
        let q = &queries::hybrid(setup::DIST)[7].1; // QY8: scan everything
        let m = runner::compare(&px, "QY8", q, args.reps);
        let docs_total: usize = (0..4)
            .map(|i| {
                px.cluster()
                    .node(i)
                    .and_then(|n| n.db.collection_len(&format!("f{i}")).ok())
                    .unwrap_or(0)
            })
            .sum();
        println!(
            "  {label}: {docs_total} fragment documents, distributed {:.5}s (centralized {:.5}s)",
            m.distributed_s, m.centralized_s
        );
    }
}
