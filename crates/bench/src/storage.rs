//! The storage experiment: hot vs cold collections over two document
//! classes (≈80 KB items, ≈5 MB bulk documents), isolating what the
//! arena page format and the Dewey-labeled value index buy on the cold
//! path.
//!
//! Three configurations run the same workload on the same corpus:
//!
//! * `hot` — documents stay decoded in memory (the in-memory ceiling);
//! * `cold_indexed` — binary pages, value/path indexes on: equality
//!   predicates are pre-filtered from the index and only candidate
//!   pages are decoded;
//! * `cold_scan` — binary pages, every index off: each query decodes
//!   the entire collection (the old cold behaviour).
//!
//! The correctness gate is `identical`: every configuration must
//! serialize byte-identical answers (hot is the oracle). Speedups are
//! reported, not gated — they depend on selectivity and host speed.
//!
//! A separate decode microbench times the legacy varint format (PXB1),
//! the arena format (PXB2), and the zero-copy page view over the same
//! corpus, giving the per-format decode cost the query numbers are
//! built from. Results land in `BENCH_storage.json`.

use crate::output::json;
use partix_gen::{gen_items, ItemProfile, SECTIONS};
use partix_storage::{Database, StorageMode};
use partix_xml::{binary, Document, NodeId, PageView};
use std::hint::black_box;
use std::time::Instant;

/// Knobs for the storage experiment.
#[derive(Debug, Clone)]
pub struct StorageBenchConfig {
    /// Documents in the ≈80 KB item class.
    pub small_docs: usize,
    /// Documents in the bulk class.
    pub big_docs: usize,
    /// Target size of each bulk-class document in bytes.
    pub big_doc_bytes: usize,
    /// Timed repetitions after the discarded warm-up.
    pub reps: usize,
}

impl Default for StorageBenchConfig {
    fn default() -> Self {
        StorageBenchConfig {
            small_docs: 24,
            big_docs: 12,
            big_doc_bytes: 5 * 1_048_576,
            reps: 2,
        }
    }
}

/// One query under one configuration.
#[derive(Debug, Clone)]
pub struct ConfigTiming {
    pub config: &'static str,
    pub ms: f64,
    /// Serialized answer, compared against the hot oracle.
    pub identical: bool,
}

/// One query's measurements across all configurations.
#[derive(Debug, Clone)]
pub struct StorageQueryResult {
    pub id: &'static str,
    pub timings: Vec<ConfigTiming>,
    /// `cold_scan / cold_indexed` — what the index prefilter buys on
    /// the cold path.
    pub cold_speedup: f64,
}

/// Per-format decode cost over one class's pages.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// Legacy varint decode (PXB1), total ms per repetition.
    pub v1_ms: f64,
    /// Arena bulk decode (PXB2), total ms per repetition.
    pub v2_ms: f64,
    /// Zero-copy view construction only (validate, no materialize).
    pub view_ms: f64,
    pub v1_over_v2: f64,
    pub v1_over_view: f64,
}

/// One document class's full result.
#[derive(Debug, Clone)]
pub struct StorageClassResult {
    pub class: &'static str,
    pub docs: usize,
    pub total_bytes: usize,
    pub queries: Vec<StorageQueryResult>,
    pub decode: DecodeResult,
}

/// The ≈80 KB class: generated large items (weighted sections).
fn small_class(config: &StorageBenchConfig) -> Vec<Document> {
    gen_items(config.small_docs, ItemProfile::Large, 0xA11CE)
}

/// The bulk class: node-rich documents padded to `big_doc_bytes` with
/// ≈2 KB paragraph elements, sections assigned round-robin so the
/// selection query below matches exactly one document in twelve.
fn big_class(config: &StorageBenchConfig) -> Vec<Document> {
    (0..config.big_docs)
        .map(|i| {
            let mut doc = Document::new("Item");
            let root = NodeId::ROOT;
            let s = doc.add_element(root, "Section");
            doc.add_text(s, SECTIONS[i % SECTIONS.len()]);
            let n = doc.add_element(root, "Name");
            doc.add_text(n, &format!("bulk item {i}"));
            let c = doc.add_element(root, "Code");
            doc.add_text(c, &i.to_string());
            let d = doc.add_element(root, "Description");
            let chunk = format!("paragraph {i} of a large stored document; ")
                .repeat(48);
            let mut written = 0;
            while written < config.big_doc_bytes {
                let p = doc.add_element(d, "P");
                doc.add_text(p, &chunk);
                written += chunk.len();
            }
            doc
        })
        .collect()
}

/// The workload. The selection's predicate value is per-class: the
/// rarest generated section for items, the round-robin tail for bulk —
/// both make `cold_indexed` decode a small fraction of the collection.
fn workload(selective_section: &str) -> Vec<(&'static str, String)> {
    let c = r#"collection("items")"#;
    vec![
        (
            "selection",
            format!(r#"for $i in {c}/Item where $i/Section = "{selective_section}" return $i/Name"#),
        ),
        (
            "aggregation",
            format!("sum(for $i in {c}/Item return number($i/Code))"),
        ),
    ]
}

fn build_db(docs: &[Document], mode: StorageMode, indexed: bool) -> Database {
    let db = Database::new();
    db.create_collection("items", mode).expect("fresh db");
    db.store_all("items", docs.iter().cloned());
    db.set_index_enabled(indexed);
    db.set_value_index_enabled(indexed);
    db
}

fn timed(db: &Database, query: &str, reps: usize) -> (f64, String) {
    let answer = db.execute(query).expect("warm-up").serialize();
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        black_box(db.execute(query).expect("timed run"));
    }
    (start.elapsed().as_secs_f64() / reps.max(1) as f64, answer)
}

fn run_class(
    class: &'static str,
    docs: Vec<Document>,
    selective_section: &str,
    reps: usize,
) -> StorageClassResult {
    let total_bytes: usize = docs.iter().map(Document::approx_size).sum();
    let configs: Vec<(&'static str, Database)> = vec![
        ("hot", build_db(&docs, StorageMode::Hot, true)),
        ("cold_indexed", build_db(&docs, StorageMode::Cold, true)),
        ("cold_scan", build_db(&docs, StorageMode::Cold, false)),
    ];
    println!(
        "-- class {class}: {} docs, {} total, {} rep(s)",
        docs.len(),
        crate::output::human_bytes(total_bytes),
        reps,
    );
    let mut queries = Vec::new();
    for (id, query) in workload(selective_section) {
        let mut timings: Vec<ConfigTiming> = Vec::new();
        let mut oracle = String::new();
        for (config, db) in &configs {
            let (secs, answer) = timed(db, &query, reps);
            if *config == "hot" {
                oracle = answer.clone();
            }
            timings.push(ConfigTiming {
                config,
                ms: secs * 1e3,
                identical: answer == oracle,
            });
        }
        let ms_of = |c: &str| {
            timings.iter().find(|t| t.config == c).expect("config ran").ms
        };
        let cold_speedup = ms_of("cold_scan") / ms_of("cold_indexed").max(1e-9);
        print!("   {id:<12}");
        for t in &timings {
            print!(" {}={:.3}ms", t.config, t.ms);
        }
        println!(" → prefilter {cold_speedup:.1}x, identical {}",
            timings.iter().all(|t| t.identical));
        queries.push(StorageQueryResult { id, timings, cold_speedup });
    }
    let decode = decode_bench(&docs, reps);
    println!(
        "   decode       v1={:.3}ms v2={:.3}ms view={:.3}ms → v2 {:.1}x, view {:.1}x",
        decode.v1_ms, decode.v2_ms, decode.view_ms, decode.v1_over_v2, decode.v1_over_view,
    );
    StorageClassResult { class, docs: docs.len(), total_bytes, queries, decode }
}

/// Decode microbench: the same corpus encoded in both page formats,
/// each decoded end-to-end; the view row only validates (the zero-copy
/// path cold index builds and probes run on).
fn decode_bench(docs: &[Document], reps: usize) -> DecodeResult {
    let v1_pages: Vec<_> = docs.iter().map(binary::encode_v1).collect();
    let v2_pages: Vec<_> = docs.iter().map(binary::encode).collect();
    let time = |f: &dyn Fn()| {
        f(); // warm-up
        let start = Instant::now();
        for _ in 0..reps.max(1) {
            f();
        }
        start.elapsed().as_secs_f64() * 1e3 / reps.max(1) as f64
    };
    let v1_ms = time(&|| {
        for p in &v1_pages {
            black_box(binary::decode(p).expect("v1 page"));
        }
    });
    let v2_ms = time(&|| {
        for p in &v2_pages {
            black_box(binary::decode(p).expect("v2 page"));
        }
    });
    let view_ms = time(&|| {
        for p in &v2_pages {
            black_box(PageView::parse(p).expect("v2 page"));
        }
    });
    DecodeResult {
        v1_ms,
        v2_ms,
        view_ms,
        v1_over_v2: v1_ms / v2_ms.max(1e-9),
        v1_over_view: v1_ms / view_ms.max(1e-9),
    }
}

/// Run the experiment over both classes.
pub fn run_with(config: &StorageBenchConfig) -> Vec<StorageClassResult> {
    println!("\n### storage: hot vs cold-indexed vs cold-scan, arena page formats");
    // weights in SECTION_WEIGHTS make the last section the rarest
    let rare = SECTIONS[SECTIONS.len() - 1];
    vec![
        run_class("items-80k", small_class(config), rare, config.reps),
        run_class("bulk-5m", big_class(config), SECTIONS[SECTIONS.len() - 1], config.reps),
    ]
}

/// The `BENCH_storage.json` document.
pub fn to_json(config: &StorageBenchConfig, classes: &[StorageClassResult]) -> String {
    let mut out = String::with_capacity(2048);
    out.push('{');
    json::str_field(&mut out, "experiment", "storage");
    json::num_field(&mut out, "small_docs", config.small_docs as f64);
    json::num_field(&mut out, "big_docs", config.big_docs as f64);
    json::num_field(&mut out, "big_doc_bytes", config.big_doc_bytes as f64);
    json::num_field(&mut out, "reps", config.reps as f64);
    let class_objs: Vec<String> = classes
        .iter()
        .map(|c| {
            let mut o = String::with_capacity(512);
            o.push('{');
            json::str_field(&mut o, "class", c.class);
            json::num_field(&mut o, "docs", c.docs as f64);
            json::num_field(&mut o, "total_bytes", c.total_bytes as f64);
            let queries: Vec<String> = c
                .queries
                .iter()
                .map(|q| {
                    let mut qo = String::with_capacity(256);
                    qo.push('{');
                    json::str_field(&mut qo, "id", q.id);
                    for t in &q.timings {
                        json::num_field(&mut qo, &format!("{}_ms", t.config), t.ms);
                    }
                    json::num_field(&mut qo, "cold_speedup", q.cold_speedup);
                    json::bool_field(
                        &mut qo,
                        "identical",
                        q.timings.iter().all(|t| t.identical),
                    );
                    qo.push('}');
                    qo
                })
                .collect();
            json::raw_field(&mut o, "queries", &format!("[{}]", queries.join(",")));
            let mut d = String::with_capacity(128);
            d.push('{');
            json::num_field(&mut d, "v1_ms", c.decode.v1_ms);
            json::num_field(&mut d, "v2_ms", c.decode.v2_ms);
            json::num_field(&mut d, "view_ms", c.decode.view_ms);
            json::num_field(&mut d, "v1_over_v2", c.decode.v1_over_v2);
            json::num_field(&mut d, "v1_over_view", c.decode.v1_over_view);
            d.push('}');
            json::raw_field(&mut o, "decode", &d);
            o.push('}');
            o
        })
        .collect();
    json::raw_field(&mut out, "classes", &format!("[{}]", class_objs.join(",")));
    // headline: what the index prefilter buys a cold selection on the
    // bulk class, and what the arena format buys a full decode
    let cold_speedup = classes
        .iter()
        .filter(|c| c.class == "bulk-5m")
        .flat_map(|c| c.queries.iter())
        .filter(|q| q.id == "selection")
        .map(|q| q.cold_speedup)
        .fold(0.0f64, f64::max);
    let decode_speedup = classes
        .iter()
        .map(|c| c.decode.v1_over_v2)
        .fold(0.0f64, f64::max);
    json::num_field(&mut out, "cold_selection_speedup", cold_speedup);
    json::num_field(&mut out, "decode_speedup", decode_speedup);
    json::bool_field(
        &mut out,
        "identical",
        classes
            .iter()
            .flat_map(|c| c.queries.iter())
            .all(|q| q.timings.iter().all(|t| t.identical)),
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_bench_smoke() {
        let config = StorageBenchConfig {
            small_docs: 6,
            big_docs: 4,
            big_doc_bytes: 64 * 1024,
            reps: 1,
        };
        let classes = run_with(&config);
        assert_eq!(classes.len(), 2);
        for c in &classes {
            assert_eq!(c.queries.len(), 2);
            for q in &c.queries {
                assert!(
                    q.timings.iter().all(|t| t.identical),
                    "{}/{}: answers diverged",
                    c.class,
                    q.id
                );
            }
            assert!(c.decode.v1_ms > 0.0 && c.decode.v2_ms > 0.0);
        }
        let json = to_json(&config, &classes);
        for field in [
            "\"experiment\":\"storage\"",
            "\"class\":\"items-80k\"",
            "\"class\":\"bulk-5m\"",
            "\"hot_ms\":",
            "\"cold_indexed_ms\":",
            "\"cold_scan_ms\":",
            "\"cold_speedup\":",
            "\"v1_over_v2\":",
            "\"cold_selection_speedup\":",
            "\"decode_speedup\":",
            "\"identical\":true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
