//! The morsel experiment: intra-fragment parallel scans measured against
//! the sequential evaluator on the same database.
//!
//! One node's database holds an items collection; every query of a small
//! representative workload (scan, selection, text search, aggregation,
//! `order by`) runs twice — once with the morsel path forced off
//! (`max_workers = 1`) and once with a multi-worker, fine-grained morsel
//! geometry — and the harness records both times, the morsel count, and
//! whether the answers were byte-identical. Results land in
//! `BENCH_morsel.json`.
//!
//! **Reading the numbers:** speedup over the sequential run is only
//! meaningful when the host has cores to spare, so `host_cores` is part
//! of the record and the correctness gate is `identical`, never the
//! speedup (a single-core CI box legitimately reports ≈1x or below —
//! the morsel split still runs, on one core).

use crate::output::json;
use crate::setup;
use partix_gen::ItemProfile;
use partix_storage::{Database, MorselConfig, StorageMode};
use std::time::Instant;

/// Knobs for the morsel experiment.
#[derive(Debug, Clone)]
pub struct MorselBenchConfig {
    /// Approximate database size in bytes.
    pub db_bytes: usize,
    /// Workers for the parallel runs.
    pub workers: usize,
    /// Minimum documents per morsel for the parallel runs.
    pub min_docs: usize,
    /// Timed repetitions after the discarded warm-up.
    pub reps: usize,
}

impl Default for MorselBenchConfig {
    fn default() -> Self {
        MorselBenchConfig {
            db_bytes: 150_000,
            workers: 4,
            min_docs: 8,
            reps: 3,
        }
    }
}

/// One query's sequential-vs-morsel measurement.
#[derive(Debug, Clone)]
pub struct MorselQueryResult {
    pub id: &'static str,
    pub seq_ms: f64,
    pub par_ms: f64,
    /// `seq / par` — may be < 1 on a saturated or single-core host.
    pub speedup: f64,
    /// Morsels the parallel run split into (≥ 2, or the run fell back).
    pub morsels: usize,
    /// Byte-identical serialized answers — the gate.
    pub identical: bool,
}

/// The workload: one query per family the morsel planner handles.
fn workload() -> Vec<(&'static str, String)> {
    let c = r#"collection("items")"#;
    vec![
        ("scan", format!("{c}/Item/Code")),
        (
            "selection",
            format!(r#"for $i in {c}/Item where $i/Section = "CD" return $i/Name"#),
        ),
        (
            "text-search",
            format!(
                r#"for $i in {c}/Item
                   where contains($i//Description, "good") return $i/Name"#
            ),
        ),
        (
            "aggregation",
            format!("sum(for $i in {c}/Item return number($i/Code))"),
        ),
        (
            "order-by",
            format!("for $i in {c}/Item order by $i/Section return $i/Code"),
        ),
    ]
}

fn timed(db: &Database, query: &str, reps: usize) -> (f64, String, usize) {
    let warm = db.execute(query).expect("warm-up");
    let answer = warm.serialize();
    let morsels = warm.stats.morsels;
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        db.execute(query).expect("timed run");
    }
    let per_run = start.elapsed().as_secs_f64() / reps.max(1) as f64;
    (per_run, answer, morsels)
}

/// Run the experiment; `docs_out` receives the corpus size.
pub fn run_with(config: &MorselBenchConfig) -> (usize, Vec<MorselQueryResult>) {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let n_docs = docs.len();
    // cold pages model the disk-based DBMS the paper measures: the
    // per-document decode is exactly the work the morsels spread out
    let db = Database::new();
    db.create_collection("items", StorageMode::Cold).expect("fresh db");
    db.store_all("items", docs);
    println!(
        "\n### morsel: {} docs, {} workers, min {} docs/morsel, {} rep(s), {} host core(s)",
        n_docs,
        config.workers,
        config.min_docs,
        config.reps,
        host_cores(),
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8}  identical",
        "query", "seq(ms)", "par(ms)", "speedup", "morsels"
    );
    let mut results = Vec::new();
    for (id, query) in workload() {
        db.set_morsel_config(MorselConfig { max_workers: 1, min_docs: 1 });
        let (seq_s, seq_answer, seq_morsels) = timed(&db, &query, config.reps);
        assert_eq!(seq_morsels, 0, "{id}: sequential run must not split");
        db.set_morsel_config(MorselConfig {
            max_workers: config.workers,
            min_docs: config.min_docs,
        });
        let (par_s, par_answer, morsels) = timed(&db, &query, config.reps);
        let result = MorselQueryResult {
            id,
            seq_ms: seq_s * 1e3,
            par_ms: par_s * 1e3,
            speedup: seq_s / par_s.max(1e-12),
            morsels,
            identical: seq_answer == par_answer,
        };
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>7.2}x {:>8}  {}",
            result.id, result.seq_ms, result.par_ms, result.speedup, result.morsels,
            result.identical,
        );
        results.push(result);
    }
    (n_docs, results)
}

/// Cores the host exposes — context for reading the speedups.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The `BENCH_morsel.json` document.
pub fn to_json(config: &MorselBenchConfig, docs: usize, results: &[MorselQueryResult]) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "morsel");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "docs", docs as f64);
    json::num_field(&mut out, "workers", config.workers as f64);
    json::num_field(&mut out, "min_docs", config.min_docs as f64);
    json::num_field(&mut out, "reps", config.reps as f64);
    json::num_field(&mut out, "host_cores", host_cores() as f64);
    let queries: Vec<String> = results
        .iter()
        .map(|r| {
            let mut q = String::with_capacity(128);
            q.push('{');
            json::str_field(&mut q, "id", r.id);
            json::num_field(&mut q, "seq_ms", r.seq_ms);
            json::num_field(&mut q, "par_ms", r.par_ms);
            json::num_field(&mut q, "speedup", r.speedup);
            json::num_field(&mut q, "morsels", r.morsels as f64);
            json::bool_field(&mut q, "identical", r.identical);
            q.push('}');
            q
        })
        .collect();
    json::raw_field(&mut out, "queries", &format!("[{}]", queries.join(",")));
    let best = results.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
    json::num_field(&mut out, "best_speedup", best);
    json::bool_field(
        &mut out,
        "identical",
        results.iter().all(|r| r.identical),
    );
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_bench_smoke() {
        let config = MorselBenchConfig {
            db_bytes: 20_000,
            workers: 4,
            min_docs: 1,
            reps: 1,
        };
        let (docs, results) = run_with(&config);
        assert!(docs > 0);
        assert_eq!(results.len(), workload().len());
        for r in &results {
            assert!(r.identical, "{}: answers diverged", r.id);
            assert!(r.morsels >= 2, "{}: expected a morsel split", r.id);
        }
        let json = to_json(&config, docs, &results);
        for field in [
            "\"experiment\":\"morsel\"",
            "\"host_cores\":",
            "\"seq_ms\":",
            "\"par_ms\":",
            "\"speedup\":",
            "\"best_speedup\":",
            "\"identical\":true",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }
}
