//! Closed-loop multi-client throughput benchmark.
//!
//! Not a paper figure: the paper measures single-query response time
//! (`DispatchMode::Simulated`). This benchmark instead measures the
//! *coordinator runtime* under concurrent clients — N closed-loop
//! clients each issue their next query as soon as the previous one
//! returns, cycling a fixed repeated-query workload. Three
//! configurations are compared:
//!
//! * `threads`      — [`DispatchMode::Threads`]: one transient OS thread
//!   per sub-query per call (the pre-pool baseline);
//! * `pool-nocache` — [`DispatchMode::Pool`]: persistent per-node worker
//!   pools, result cache off;
//! * `pool`         — worker pools plus the sub-query result cache.
//!
//! Reported per run: QPS (completed queries / wall-clock) and p50/p99
//! client-observed latency, plus the coordinator cache counters.

use crate::output::json;
use crate::{queries, setup};
use partix_engine::{DispatchMode, PartiX, StageBreakdown};
use partix_gen::ItemProfile;
use std::time::Instant;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Total database size in bytes.
    pub db_bytes: usize,
    /// Horizontal fragments (== nodes).
    pub fragments: usize,
    /// Concurrent-client counts to sweep.
    pub clients: Vec<usize>,
    /// Queries each client issues (after a shared warm-up pass).
    pub queries_per_client: usize,
}

impl Default for ThroughputConfig {
    fn default() -> ThroughputConfig {
        ThroughputConfig {
            db_bytes: 200_000,
            fragments: 4,
            clients: vec![1, 4, 16],
            queries_per_client: 40,
        }
    }
}

/// The compared coordinator configurations, in report order.
pub const MODES: [&str; 3] = ["threads", "pool-nocache", "pool"];

/// Per-stage latency samples accumulated over a run's queries, one
/// vector per coordinator stage of the [`StageBreakdown`].
#[derive(Debug, Clone, Default)]
pub struct StageSamples {
    pub parse: Vec<f64>,
    pub localize: Vec<f64>,
    pub dispatch: Vec<f64>,
    pub compose: Vec<f64>,
}

impl StageSamples {
    pub fn record(&mut self, stages: &StageBreakdown) {
        self.parse.push(stages.parse_s);
        self.localize.push(stages.localize_s);
        self.dispatch.push(stages.dispatch_s);
        self.compose.push(stages.compose_s);
    }

    pub fn merge(&mut self, other: StageSamples) {
        self.parse.extend(other.parse);
        self.localize.extend(other.localize);
        self.dispatch.extend(other.dispatch);
        self.compose.extend(other.compose);
    }

    /// Collapse the samples into per-stage p50/p99 milliseconds.
    pub fn percentiles_ms(&mut self) -> StagePercentiles {
        let p = |v: &mut Vec<f64>, q: f64| percentile(v, q) * 1e3;
        StagePercentiles {
            parse_p50_ms: p(&mut self.parse, 50.0),
            parse_p99_ms: p(&mut self.parse, 99.0),
            localize_p50_ms: p(&mut self.localize, 50.0),
            localize_p99_ms: p(&mut self.localize, 99.0),
            dispatch_p50_ms: p(&mut self.dispatch, 50.0),
            dispatch_p99_ms: p(&mut self.dispatch, 99.0),
            compose_p50_ms: p(&mut self.compose, 50.0),
            compose_p99_ms: p(&mut self.compose, 99.0),
        }
    }
}

/// Per-stage p50/p99 of one run, in milliseconds — the stage-attribution
/// numbers both `BENCH_throughput.json` and `BENCH_chaos.json` carry.
#[derive(Debug, Clone, Copy, Default)]
pub struct StagePercentiles {
    pub parse_p50_ms: f64,
    pub parse_p99_ms: f64,
    pub localize_p50_ms: f64,
    pub localize_p99_ms: f64,
    pub dispatch_p50_ms: f64,
    pub dispatch_p99_ms: f64,
    pub compose_p50_ms: f64,
    pub compose_p99_ms: f64,
}

impl StagePercentiles {
    /// Append the eight `<stage>_p{50,99}_ms` fields to a JSON object
    /// under construction.
    pub fn json_fields(&self, out: &mut String) {
        json::num_field(out, "parse_p50_ms", self.parse_p50_ms);
        json::num_field(out, "parse_p99_ms", self.parse_p99_ms);
        json::num_field(out, "localize_p50_ms", self.localize_p50_ms);
        json::num_field(out, "localize_p99_ms", self.localize_p99_ms);
        json::num_field(out, "dispatch_p50_ms", self.dispatch_p50_ms);
        json::num_field(out, "dispatch_p99_ms", self.dispatch_p99_ms);
        json::num_field(out, "compose_p50_ms", self.compose_p50_ms);
        json::num_field(out, "compose_p99_ms", self.compose_p99_ms);
    }
}

/// One (mode, client-count) measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub mode: &'static str,
    pub clients: usize,
    pub total_queries: usize,
    pub wall_s: f64,
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
    /// Per-stage p50/p99 attribution of the run's queries.
    pub stages: StagePercentiles,
    /// True when every node sat behind a loopback TCP server
    /// ([`crate::remote::RemoteCluster`]) instead of in-process drivers.
    pub remote: bool,
    /// Genuine wire bytes (sent + received across all nodes) during the
    /// measured run — 0 for in-process runs, where no bytes exist.
    pub bytes_shipped: u64,
}

impl RunResult {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json::str_field(&mut out, "mode", self.mode);
        json::num_field(&mut out, "clients", self.clients as f64);
        json::num_field(&mut out, "total_queries", self.total_queries as f64);
        json::num_field(&mut out, "wall_s", self.wall_s);
        json::num_field(&mut out, "qps", self.qps);
        json::num_field(&mut out, "p50_ms", self.p50_ms);
        json::num_field(&mut out, "p99_ms", self.p99_ms);
        json::num_field(&mut out, "plan_cache_hits", self.plan_hits as f64);
        json::num_field(&mut out, "plan_cache_misses", self.plan_misses as f64);
        json::num_field(&mut out, "result_cache_hits", self.result_hits as f64);
        json::num_field(&mut out, "result_cache_misses", self.result_misses as f64);
        json::bool_field(&mut out, "remote", self.remote);
        json::num_field(&mut out, "bytes_shipped", self.bytes_shipped as f64);
        self.stages.json_fields(&mut out);
        out.push('}');
        out
    }
}

/// Build a fresh middleware in one of the [`MODES`].
fn build_px(docs: &[partix_xml::Document], fragments: usize, mode: &str) -> PartiX {
    let mut px = setup::horizontal(docs, fragments);
    match mode {
        "threads" => px.set_dispatch(DispatchMode::Threads),
        "pool-nocache" => px.set_dispatch(DispatchMode::Pool),
        "pool" => {
            px.set_dispatch(DispatchMode::Pool);
            px.set_result_cache_enabled(true);
        }
        other => panic!("unknown throughput mode {other}"),
    }
    px
}

/// Drive `clients` closed-loop clients through `queries_per_client`
/// queries each (round-robin over `workload`, staggered start offsets).
/// Returns wall-clock seconds, every client-observed latency, and the
/// per-stage samples from every query's report.
pub fn run_clients(
    px: &PartiX,
    clients: usize,
    queries_per_client: usize,
    workload: &[(&'static str, String)],
) -> (f64, Vec<f64>, StageSamples) {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(clients * queries_per_client);
    let mut stages = StageSamples::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut observed = Vec::with_capacity(queries_per_client);
                    let mut stages = StageSamples::default();
                    for k in 0..queries_per_client {
                        let (_, query) = &workload[(client + k) % workload.len()];
                        let issued = Instant::now();
                        let result = px.execute(query).expect("throughput query");
                        observed.push(issued.elapsed().as_secs_f64());
                        stages.record(&result.report.stages);
                    }
                    (observed, stages)
                })
            })
            .collect();
        for handle in handles {
            let (observed, client_stages) = handle.join().expect("client thread");
            latencies.extend(observed);
            stages.merge(client_stages);
        }
    });
    (start.elapsed().as_secs_f64(), latencies, stages)
}

/// Nearest-rank percentile of an unsorted latency sample, in seconds.
///
/// Returns 0.0 on an empty sample (documented sentinel, not an error).
/// Sorting uses [`f64::total_cmp`], so a NaN sneaking into the sample
/// (e.g. a zero-duration clock quirk upstream) sorts to the end instead
/// of panicking the whole benchmark; it can then only surface in the
/// topmost percentiles, where it is visible as what it is — bad data.
pub fn percentile(latencies: &mut [f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// Run the full sweep: every mode × every client count, fresh middleware
/// per run (cache counters then cover exactly one run).
pub fn run(config: &ThroughputConfig) -> Vec<RunResult> {
    run_with(config, false)
}

/// [`run`] with an optional remote transport: when `remote` is true,
/// every node of every middleware sits behind its own loopback TCP
/// server ([`crate::remote::RemoteCluster`]) and the reported
/// `bytes_shipped` counts genuine frame bytes on the measured run
/// (warm-up traffic excluded).
pub fn run_with(config: &ThroughputConfig, remote: bool) -> Vec<RunResult> {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### throughput{}: ItemsSHor {} B, {} fragments, {} queries/client, repeated {}-query workload",
        if remote { " (remote TCP transport)" } else { "" },
        config.db_bytes,
        config.fragments,
        config.queries_per_client,
        workload.len(),
    );
    println!(
        "{:<14} {:>8} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "mode", "clients", "QPS", "p50(ms)", "p99(ms)", "wall(s)", "cache h/m"
    );
    let mut results = Vec::new();
    for &mode in &MODES {
        for &clients in &config.clients {
            let px = build_px(&docs, config.fragments, mode);
            let wire = remote.then(|| crate::remote::RemoteCluster::attach(&px));
            // one warm-up pass over the workload (discarded), matching
            // the single-query experiments' protocol
            for (_, query) in &workload {
                px.execute(query).expect("warm-up query");
            }
            let stats_before = px.cache_stats();
            let bytes_before = wire.as_ref().map_or(0, crate::remote::RemoteCluster::wire_bytes);
            let (wall_s, mut latencies, mut stage_samples) =
                run_clients(&px, clients, config.queries_per_client, &workload);
            let stats = px.cache_stats();
            let bytes_shipped =
                wire.as_ref().map_or(0, |w| w.wire_bytes().saturating_sub(bytes_before));
            let total_queries = latencies.len();
            let p50_ms = percentile(&mut latencies, 50.0) * 1e3;
            let p99_ms = percentile(&mut latencies, 99.0) * 1e3;
            let result = RunResult {
                mode,
                clients,
                total_queries,
                wall_s,
                qps: total_queries as f64 / wall_s.max(1e-9),
                p50_ms,
                p99_ms,
                plan_hits: stats.plan_hits - stats_before.plan_hits,
                plan_misses: stats.plan_misses - stats_before.plan_misses,
                result_hits: stats.result_hits - stats_before.result_hits,
                result_misses: stats.result_misses - stats_before.result_misses,
                stages: stage_samples.percentiles_ms(),
                remote,
                bytes_shipped,
            };
            println!(
                "{:<14} {:>8} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>7}/{}",
                result.mode,
                result.clients,
                result.qps,
                result.p50_ms,
                result.p99_ms,
                result.wall_s,
                result.result_hits,
                result.result_misses,
            );
            println!(
                "    stage p50/p99 ms: parse {:.3}/{:.3}, localize {:.3}/{:.3}, dispatch {:.3}/{:.3}, compose {:.3}/{:.3}",
                result.stages.parse_p50_ms,
                result.stages.parse_p99_ms,
                result.stages.localize_p50_ms,
                result.stages.localize_p99_ms,
                result.stages.dispatch_p50_ms,
                result.stages.dispatch_p99_ms,
                result.stages.compose_p50_ms,
                result.stages.compose_p99_ms,
            );
            if remote {
                println!("    wire: {} B shipped over TCP", result.bytes_shipped);
            }
            results.push(result);
        }
    }
    for &clients in &config.clients {
        let qps_of = |mode: &str| {
            results
                .iter()
                .find(|r| r.mode == mode && r.clients == clients)
                .map(|r| r.qps)
                .unwrap_or(0.0)
        };
        let baseline = qps_of("threads");
        if baseline > 0.0 {
            println!(
                "  {clients:>2} client(s): pool {:.2}x, pool+cache {:.2}x vs per-query threads",
                qps_of("pool-nocache") / baseline,
                qps_of("pool") / baseline,
            );
        }
    }
    results
}

/// Measure the span-collection overhead: fault-free `pool-nocache` QPS
/// with tracing on vs. off, on *one* middleware instance whose tracing
/// flag is toggled between rounds ([`PartiX::set_tracing_enabled`] is
/// runtime-togglable for exactly this purpose). Using a single instance
/// matters: two side-by-side instances differ by heap layout alone —
/// measured at several percent on small containers, dwarfing the signal.
/// Each round measures both arms back-to-back (alternating which goes
/// first) and yields one paired overhead ratio; the reported figure is
/// the *median* across rounds, which cancels slow drift inside a pair
/// and rejects hiccup outliers outright. Positive = tracing costs QPS;
/// small negative values are run-to-run noise. The acceptance bar for
/// the observability layer is < 2%.
pub fn measure_trace_overhead(config: &ThroughputConfig) -> f64 {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let workload = queries::horizontal(setup::DIST);
    // Sequential (single-client) on purpose: span collection is per-query
    // work, so its cost shows up identically at any concurrency, while
    // multi-client rounds only add scheduler noise (several percent per
    // round on small containers) that swamps the signal being measured.
    let clients = 1;
    let px = build_px(&docs, config.fragments, "pool-nocache");
    for (_, query) in &workload {
        px.execute(query).expect("warm-up query");
    }
    // Rounds long enough (~0.5s each) that a single scheduler hiccup
    // cannot swing the per-round QPS estimate by percents, and enough
    // rounds that the median has real outliers to reject.
    const ROUNDS: usize = 9;
    let per_client = config.queries_per_client.max(1_000);
    let mut round_pcts = Vec::with_capacity(ROUNDS);
    let mut qps_sum = [0.0f64; 2]; // [tracing off, tracing on]
    for round in 0..ROUNDS {
        // Alternate which arm goes first: the second run of a pair sees a
        // ramped-up CPU, and a fixed order would hand that edge to one arm.
        let order = if round % 2 == 0 { [0usize, 1] } else { [1, 0] };
        let mut qps = [0.0f64; 2];
        for slot in order {
            px.set_tracing_enabled(slot == 1);
            let (wall_s, latencies, _) = run_clients(&px, clients, per_client, &workload);
            qps[slot] = latencies.len() as f64 / wall_s.max(1e-9);
        }
        if qps[0] > 0.0 {
            round_pcts.push(100.0 * (qps[0] - qps[1]) / qps[0]);
        }
        qps_sum[0] += qps[0];
        qps_sum[1] += qps[1];
    }
    if round_pcts.is_empty() {
        return 0.0;
    }
    let pct = percentile(&mut round_pcts, 50.0);
    println!(
        "tracing overhead: {:.1} QPS off vs {:.1} QPS on → median {pct:+.2}%",
        qps_sum[0] / ROUNDS as f64,
        qps_sum[1] / ROUNDS as f64,
    );
    pct
}

/// Serialize a sweep as one JSON document.
pub fn to_json(
    config: &ThroughputConfig,
    results: &[RunResult],
    trace_overhead_pct: f64,
) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "throughput");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "fragments", config.fragments as f64);
    json::num_field(&mut out, "queries_per_client", config.queries_per_client as f64);
    json::num_field(&mut out, "trace_overhead_pct", trace_overhead_pct);
    let runs: Vec<String> = results.iter().map(RunResult::to_json).collect();
    json::raw_field(&mut out, "runs", &format!("[{}]", runs.join(",")));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut lats = vec![0.4, 0.1, 0.2, 0.3];
        assert_eq!(percentile(&mut lats, 50.0), 0.2);
        assert_eq!(percentile(&mut lats, 99.0), 0.4);
        assert_eq!(percentile(&mut lats, 100.0), 0.4);
    }

    #[test]
    fn percentile_empty_and_single_samples() {
        assert_eq!(percentile(&mut [], 50.0), 0.0);
        assert_eq!(percentile(&mut [], 99.0), 0.0);
        let mut single = [0.7];
        assert_eq!(percentile(&mut single, 1.0), 0.7);
        assert_eq!(percentile(&mut single, 50.0), 0.7);
        assert_eq!(percentile(&mut single, 100.0), 0.7);
    }

    #[test]
    fn percentile_survives_nan_samples() {
        // a NaN must not panic the sort; total_cmp sends it to the end,
        // so the median of the finite values is unaffected
        let mut lats = vec![0.3, f64::NAN, 0.1, 0.2];
        assert_eq!(percentile(&mut lats, 50.0), 0.2);
        // only the topmost percentile sees the junk value
        assert!(percentile(&mut lats, 100.0).is_nan());
        let mut all_nan = vec![f64::NAN, f64::NAN];
        assert!(percentile(&mut all_nan, 50.0).is_nan());
    }

    #[test]
    fn stage_samples_collapse_to_percentiles() {
        let mut samples = StageSamples::default();
        for ms in [1.0, 2.0, 3.0, 4.0] {
            samples.record(&StageBreakdown {
                parse_s: ms / 1e3,
                localize_s: 2.0 * ms / 1e3,
                dispatch_s: 10.0 * ms / 1e3,
                compose_s: 0.5 * ms / 1e3,
                subqueries: Vec::new(),
            });
        }
        let p = samples.percentiles_ms();
        assert!((p.parse_p50_ms - 2.0).abs() < 1e-9);
        assert!((p.parse_p99_ms - 4.0).abs() < 1e-9);
        assert!((p.dispatch_p50_ms - 20.0).abs() < 1e-9);
        assert!(p.dispatch_p99_ms >= p.dispatch_p50_ms);
        let mut out = String::from("{");
        p.json_fields(&mut out);
        out.push('}');
        assert!(out.contains("\"dispatch_p99_ms\":"));
        assert!(out.contains("\"compose_p50_ms\":"));
    }

    #[test]
    fn sweep_runs_all_modes_and_counts_cache_hits() {
        let config = ThroughputConfig {
            db_bytes: 30_000,
            fragments: 2,
            clients: vec![2],
            queries_per_client: 10,
        };
        let results = run(&config);
        assert_eq!(results.len(), MODES.len());
        for r in &results {
            assert_eq!(r.total_queries, 2 * 10);
            assert!(r.qps > 0.0, "{}: no throughput", r.mode);
            assert!(r.p99_ms >= r.p50_ms, "{}: p99 < p50", r.mode);
        }
        // the cached configuration must actually hit: the workload
        // repeats and the warm-up pass populated the cache
        let pool = results.iter().find(|r| r.mode == "pool").expect("pool run");
        assert!(pool.result_hits > 0, "cached run recorded no hits");
        let nocache = results.iter().find(|r| r.mode == "pool-nocache").expect("run");
        assert_eq!(nocache.result_hits, 0);
        // dispatch dominates each query, so its percentiles are non-zero
        assert!(pool.stages.dispatch_p99_ms >= pool.stages.dispatch_p50_ms);
        assert!(pool.stages.dispatch_p50_ms > 0.0, "no dispatch stage time recorded");
        // and the counters land in the JSON
        let doc = to_json(&config, &results, 1.25);
        assert!(doc.contains("\"result_cache_hits\":"));
        assert!(doc.contains("\"mode\":\"pool\""));
        assert!(doc.contains("\"trace_overhead_pct\":1.25"));
        assert!(doc.contains("\"parse_p50_ms\":"));
        assert!(doc.contains("\"dispatch_p99_ms\":"));
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}
