//! Closed-loop multi-client throughput benchmark.
//!
//! Not a paper figure: the paper measures single-query response time
//! (`DispatchMode::Simulated`). This benchmark instead measures the
//! *coordinator runtime* under concurrent clients — N closed-loop
//! clients each issue their next query as soon as the previous one
//! returns, cycling a fixed repeated-query workload. Three
//! configurations are compared:
//!
//! * `threads`      — [`DispatchMode::Threads`]: one transient OS thread
//!   per sub-query per call (the pre-pool baseline);
//! * `pool-nocache` — [`DispatchMode::Pool`]: persistent per-node worker
//!   pools, result cache off;
//! * `pool`         — worker pools plus the sub-query result cache.
//!
//! Reported per run: QPS (completed queries / wall-clock) and p50/p99
//! client-observed latency, plus the coordinator cache counters.

use crate::output::json;
use crate::{queries, setup};
use partix_engine::{DispatchMode, PartiX};
use partix_gen::ItemProfile;
use std::time::Instant;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Total database size in bytes.
    pub db_bytes: usize,
    /// Horizontal fragments (== nodes).
    pub fragments: usize,
    /// Concurrent-client counts to sweep.
    pub clients: Vec<usize>,
    /// Queries each client issues (after a shared warm-up pass).
    pub queries_per_client: usize,
}

impl Default for ThroughputConfig {
    fn default() -> ThroughputConfig {
        ThroughputConfig {
            db_bytes: 200_000,
            fragments: 4,
            clients: vec![1, 4, 16],
            queries_per_client: 40,
        }
    }
}

/// The compared coordinator configurations, in report order.
pub const MODES: [&str; 3] = ["threads", "pool-nocache", "pool"];

/// One (mode, client-count) measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub mode: &'static str,
    pub clients: usize,
    pub total_queries: usize,
    pub wall_s: f64,
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub result_hits: u64,
    pub result_misses: u64,
}

impl RunResult {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json::str_field(&mut out, "mode", self.mode);
        json::num_field(&mut out, "clients", self.clients as f64);
        json::num_field(&mut out, "total_queries", self.total_queries as f64);
        json::num_field(&mut out, "wall_s", self.wall_s);
        json::num_field(&mut out, "qps", self.qps);
        json::num_field(&mut out, "p50_ms", self.p50_ms);
        json::num_field(&mut out, "p99_ms", self.p99_ms);
        json::num_field(&mut out, "plan_cache_hits", self.plan_hits as f64);
        json::num_field(&mut out, "plan_cache_misses", self.plan_misses as f64);
        json::num_field(&mut out, "result_cache_hits", self.result_hits as f64);
        json::num_field(&mut out, "result_cache_misses", self.result_misses as f64);
        out.push('}');
        out
    }
}

/// Build a fresh middleware in one of the [`MODES`].
fn build_px(docs: &[partix_xml::Document], fragments: usize, mode: &str) -> PartiX {
    let mut px = setup::horizontal(docs, fragments);
    match mode {
        "threads" => px.set_dispatch(DispatchMode::Threads),
        "pool-nocache" => px.set_dispatch(DispatchMode::Pool),
        "pool" => {
            px.set_dispatch(DispatchMode::Pool);
            px.set_result_cache_enabled(true);
        }
        other => panic!("unknown throughput mode {other}"),
    }
    px
}

/// Drive `clients` closed-loop clients through `queries_per_client`
/// queries each (round-robin over `workload`, staggered start offsets).
/// Returns wall-clock seconds and every client-observed latency.
pub fn run_clients(
    px: &PartiX,
    clients: usize,
    queries_per_client: usize,
    workload: &[(&'static str, String)],
) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let mut latencies = Vec::with_capacity(clients * queries_per_client);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    let mut observed = Vec::with_capacity(queries_per_client);
                    for k in 0..queries_per_client {
                        let (_, query) = &workload[(client + k) % workload.len()];
                        let issued = Instant::now();
                        px.execute(query).expect("throughput query");
                        observed.push(issued.elapsed().as_secs_f64());
                    }
                    observed
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    (start.elapsed().as_secs_f64(), latencies)
}

/// Nearest-rank percentile of an unsorted latency sample, in seconds.
pub fn percentile(latencies: &mut [f64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((p / 100.0) * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// Run the full sweep: every mode × every client count, fresh middleware
/// per run (cache counters then cover exactly one run).
pub fn run(config: &ThroughputConfig) -> Vec<RunResult> {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### throughput: ItemsSHor {} B, {} fragments, {} queries/client, repeated {}-query workload",
        config.db_bytes,
        config.fragments,
        config.queries_per_client,
        workload.len(),
    );
    println!(
        "{:<14} {:>8} {:>9} {:>10} {:>10} {:>10} {:>12}",
        "mode", "clients", "QPS", "p50(ms)", "p99(ms)", "wall(s)", "cache h/m"
    );
    let mut results = Vec::new();
    for &mode in &MODES {
        for &clients in &config.clients {
            let px = build_px(&docs, config.fragments, mode);
            // one warm-up pass over the workload (discarded), matching
            // the single-query experiments' protocol
            for (_, query) in &workload {
                px.execute(query).expect("warm-up query");
            }
            let stats_before = px.cache_stats();
            let (wall_s, mut latencies) =
                run_clients(&px, clients, config.queries_per_client, &workload);
            let stats = px.cache_stats();
            let total_queries = latencies.len();
            let p50_ms = percentile(&mut latencies, 50.0) * 1e3;
            let p99_ms = percentile(&mut latencies, 99.0) * 1e3;
            let result = RunResult {
                mode,
                clients,
                total_queries,
                wall_s,
                qps: total_queries as f64 / wall_s.max(1e-9),
                p50_ms,
                p99_ms,
                plan_hits: stats.plan_hits - stats_before.plan_hits,
                plan_misses: stats.plan_misses - stats_before.plan_misses,
                result_hits: stats.result_hits - stats_before.result_hits,
                result_misses: stats.result_misses - stats_before.result_misses,
            };
            println!(
                "{:<14} {:>8} {:>9.1} {:>10.3} {:>10.3} {:>10.3} {:>7}/{}",
                result.mode,
                result.clients,
                result.qps,
                result.p50_ms,
                result.p99_ms,
                result.wall_s,
                result.result_hits,
                result.result_misses,
            );
            results.push(result);
        }
    }
    for &clients in &config.clients {
        let qps_of = |mode: &str| {
            results
                .iter()
                .find(|r| r.mode == mode && r.clients == clients)
                .map(|r| r.qps)
                .unwrap_or(0.0)
        };
        let baseline = qps_of("threads");
        if baseline > 0.0 {
            println!(
                "  {clients:>2} client(s): pool {:.2}x, pool+cache {:.2}x vs per-query threads",
                qps_of("pool-nocache") / baseline,
                qps_of("pool") / baseline,
            );
        }
    }
    results
}

/// Serialize a sweep as one JSON document.
pub fn to_json(config: &ThroughputConfig, results: &[RunResult]) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    json::str_field(&mut out, "experiment", "throughput");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "fragments", config.fragments as f64);
    json::num_field(&mut out, "queries_per_client", config.queries_per_client as f64);
    let runs: Vec<String> = results.iter().map(RunResult::to_json).collect();
    json::raw_field(&mut out, "runs", &format!("[{}]", runs.join(",")));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut lats = vec![0.4, 0.1, 0.2, 0.3];
        assert_eq!(percentile(&mut lats, 50.0), 0.2);
        assert_eq!(percentile(&mut lats, 99.0), 0.4);
        assert_eq!(percentile(&mut lats, 100.0), 0.4);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }

    #[test]
    fn sweep_runs_all_modes_and_counts_cache_hits() {
        let config = ThroughputConfig {
            db_bytes: 30_000,
            fragments: 2,
            clients: vec![2],
            queries_per_client: 10,
        };
        let results = run(&config);
        assert_eq!(results.len(), MODES.len());
        for r in &results {
            assert_eq!(r.total_queries, 2 * 10);
            assert!(r.qps > 0.0, "{}: no throughput", r.mode);
            assert!(r.p99_ms >= r.p50_ms, "{}: p99 < p50", r.mode);
        }
        // the cached configuration must actually hit: the workload
        // repeats and the warm-up pass populated the cache
        let pool = results.iter().find(|r| r.mode == "pool").expect("pool run");
        assert!(pool.result_hits > 0, "cached run recorded no hits");
        let nocache = results.iter().find(|r| r.mode == "pool-nocache").expect("run");
        assert_eq!(nocache.result_hits, 0);
        // and the counters land in the JSON
        let doc = to_json(&config, &results);
        assert!(doc.contains("\"result_cache_hits\":"));
        assert!(doc.contains("\"mode\":\"pool\""));
        assert!(doc.starts_with('{') && doc.ends_with('}'));
    }
}
