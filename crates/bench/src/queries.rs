//! Reconstructed query sets.
//!
//! The paper's exact query texts live in technical report \[3], which is
//! not available; these are rebuilt from the paper's explicit
//! descriptions: *"a set of 8 queries […] including the usage of
//! predicates, text searches and aggregation operations"* (horizontal),
//! XBench-derived queries (vertical), and the horizontal set adapted to
//! the SD store plus prune-side and aggregation queries (hybrid).

/// Horizontal query set QH1–QH8 over an `Item` collection.
///
/// * QH1/QH2 — predicate selections (single section / two sections);
/// * QH3 — numeric range predicate;
/// * QH4 — existential test;
/// * QH5/QH6 — text searches (`contains`), the class the paper found
///   benefits most from horizontal fragmentation;
/// * QH7/QH8 — aggregations (`count`), including one over a text search.
pub fn horizontal(collection: &str) -> Vec<(&'static str, String)> {
    vec![
        ("QH1", format!(
            r#"for $i in collection("{collection}")/Item where $i/Section = "CD" return $i/Name"#
        )),
        ("QH2", format!(
            r#"for $i in collection("{collection}")/Item
               where $i/Section = "CD" or $i/Section = "DVD" return $i/Code"#
        )),
        ("QH3", format!(
            r#"for $i in collection("{collection}")/Item
               where number($i/Code) < 50 return $i/Name"#
        )),
        ("QH4", format!(
            r#"for $i in collection("{collection}")/Item
               where exists($i/Release) return $i/Code"#
        )),
        ("QH5", format!(
            r#"for $i in collection("{collection}")/Item
               where contains($i//Description, "good") return $i/Name"#
        )),
        ("QH6", format!(
            r#"for $i in collection("{collection}")/Item
               where $i/Section = "CD" and contains($i//Description, "good")
               return $i/Name"#
        )),
        ("QH7", format!(
            r#"count(for $i in collection("{collection}")/Item
                     where $i/Section = "BOOK" return $i)"#
        )),
        ("QH8", format!(
            r#"count(for $i in collection("{collection}")/Item
                     where contains($i//Description, "good") return $i)"#
        )),
    ]
}

/// Vertical query set QV1–QV10 over an XBench-style `article` collection.
///
/// QV1–QV3, QV5, QV6, QV9 touch a single fragment (the paper's good
/// case); QV4, QV7, QV8, QV10 need several fragments and exercise the
/// reconstruction join (the paper: *"queries Q4, Q7, Q8 and Q9 need more
/// than one fragment, they can be slowed down by fragmentation"*).
pub fn vertical(collection: &str) -> Vec<(&'static str, String)> {
    vec![
        ("QV1", format!(
            r#"for $t in collection("{collection}")/article/prolog/title return $t"#
        )),
        ("QV2", format!(
            r#"count(collection("{collection}")/article/prolog/authors/author)"#
        )),
        ("QV3", format!(
            r#"for $p in collection("{collection}")/article/prolog
               where $p/genre = "science" return $p/title"#
        )),
        ("QV4", format!(
            r#"for $a in collection("{collection}")/article
               return ($a/prolog/title, $a/epilog/country)"#
        )),
        ("QV5", format!(
            r#"for $b in collection("{collection}")/article/body
               where contains($b/abstract, "good") return $b/abstract"#
        )),
        ("QV6", format!(
            r#"count(collection("{collection}")/article/epilog/references/reference)"#
        )),
        ("QV7", format!(
            r#"for $a in collection("{collection}")/article
               where contains($a/body/abstract, "good") return $a/prolog/title"#
        )),
        ("QV8", format!(
            r#"count(for $a in collection("{collection}")/article
                     where contains($a/prolog/title, "XML") and $a/epilog/country = "BR"
                     return $a)"#
        )),
        ("QV9", format!(
            r#"sum(for $e in collection("{collection}")/article/epilog
                   return number($e/word_count))"#
        )),
        ("QV10", format!(
            r#"count(collection("{collection}")//p)"#
        )),
    ]
}

/// Hybrid query set QY1–QY11 over an SD `Store` collection.
///
/// QY1–QY8 adapt the horizontal access patterns to the store's items
/// (the paper: *"We consider the same queries and selection criteria
/// adopted for databases ItemsSHor and ItemsLHor, with some
/// modifications"*); QY7/QY8 return whole `Item` elements — the
/// result-size trap the paper discusses. QY9/QY10 read the pruned spine
/// (the paper's Q9/Q10, which *"always perform better than the
/// centralized case"*), QY11 is the aggregation (the paper's Q11).
pub fn hybrid(collection: &str) -> Vec<(&'static str, String)> {
    vec![
        ("QY1", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where $i/Section = "CD" return $i/Name"#
        )),
        ("QY2", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where $i/Section = "DVD" return $i/Code"#
        )),
        ("QY3", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where number($i/Code) < 50 return $i/Name"#
        )),
        ("QY4", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where exists($i/Release) return $i/Code"#
        )),
        ("QY5", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where contains($i//Description, "good") return $i/Name"#
        )),
        ("QY6", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where $i/Section = "CD" and contains($i//Description, "good")
               return $i/Name"#
        )),
        ("QY7", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item
               where $i/Section = "CD" return $i"#
        )),
        ("QY8", format!(
            r#"for $i in collection("{collection}")/Store/Items/Item return $i"#
        )),
        ("QY9", format!(
            r#"for $s in collection("{collection}")/Store/Sections/Section return $s/Name"#
        )),
        ("QY10", format!(
            r#"for $e in collection("{collection}")/Store/Employees/Employee return $e/Name"#
        )),
        ("QY11", format!(
            r#"count(for $i in collection("{collection}")/Store/Items/Item
                     where contains($i//Description, "good") return $i)"#
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_query::parse_query;

    #[test]
    fn all_queries_parse() {
        for (name, q) in horizontal("c")
            .into_iter()
            .chain(vertical("c"))
            .chain(hybrid("c"))
        {
            parse_query(&q).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn counts_match_paper_sets() {
        assert_eq!(horizontal("c").len(), 8);
        assert_eq!(vertical("c").len(), 10);
        assert_eq!(hybrid("c").len(), 11);
    }
}
