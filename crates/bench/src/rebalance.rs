//! The rebalance experiment: a seeded skew scenario the advisor fixes
//! live.
//!
//! The setup is deliberately pathological ([`setup::skewed_horizontal`]):
//! an N-node cluster whose horizontal fragments all sit on node 0, so
//! every sub-query of every client queues on one node's worker pool
//! while the rest of the cluster idles. The benchmark measures the
//! paper-set workload (QH1–QH8) before the fix, profiles it into a
//! [`WorkloadProfile`], asks the advisor for a placement, migrates to it
//! with [`partix_advisor::rebalance`] *while queries keep running*, and
//! measures again. The before/after QPS and tail latency plus the
//! migration's byte/verification accounting land in
//! `BENCH_rebalance.json`.

use crate::output::json;
use crate::throughput::{percentile, run_clients};
use crate::{queries, setup};
use partix_advisor::{advise_live, AdvisorConfig, RebalanceOptions, WorkloadProfiler};
use partix_engine::DispatchMode;
use partix_gen::ItemProfile;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Knobs for the rebalance experiment.
#[derive(Debug, Clone)]
pub struct RebalanceBenchConfig {
    /// Approximate database size in bytes.
    pub db_bytes: usize,
    /// Horizontal fragment count (all initially on node 0).
    pub fragments: usize,
    /// Cluster size — the capacity the initial placement wastes.
    pub nodes: usize,
    /// Closed-loop clients per measured phase.
    pub clients: usize,
    pub queries_per_client: usize,
    /// Advisor search seed (same seed, same recommended placement).
    pub seed: u64,
}

impl Default for RebalanceBenchConfig {
    fn default() -> Self {
        RebalanceBenchConfig {
            db_bytes: 150_000,
            fragments: 4,
            nodes: 4,
            clients: 8,
            queries_per_client: 30,
            seed: 0xC4A0_5EED,
        }
    }
}

/// Everything one rebalance run produced.
#[derive(Debug, Clone)]
pub struct RebalanceRunResult {
    pub db_bytes: usize,
    pub fragments: usize,
    pub nodes: usize,
    pub clients: usize,
    pub queries_per_client: usize,
    pub seed: u64,
    pub before_qps: f64,
    pub before_p50_ms: f64,
    pub before_p99_ms: f64,
    pub after_qps: f64,
    pub after_p50_ms: f64,
    pub after_p99_ms: f64,
    /// Fragments whose replica set changed.
    pub migrated_fragments: usize,
    pub migrated_docs: u64,
    pub migrated_bytes: u64,
    /// Wall time of the live migration (copy + swap + verify).
    pub rebalance_s: f64,
    /// Queries answered by the probe thread *while* the migration ran.
    pub during_queries: u64,
    /// Probe answers that disagreed with the pre-migration oracle
    /// (must be 0 — the swap is atomic and the engine replans).
    pub during_errors: u64,
    /// Advisor's predicted cost reduction, `0..=1`.
    pub predicted_gain: f64,
    /// Post-migration completeness/disjointness re-validation passed.
    pub verified: bool,
    pub p99_improved: bool,
    pub qps_improved: bool,
    pub remote: bool,
    /// Genuine wire bytes across the whole run (0 for in-process).
    pub bytes_shipped: u64,
}

impl RebalanceRunResult {
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        json::str_field(&mut out, "experiment", "rebalance");
        json::str_field(&mut out, "collection", setup::DIST);
        json::num_field(&mut out, "db_bytes", self.db_bytes as f64);
        json::num_field(&mut out, "fragments", self.fragments as f64);
        json::num_field(&mut out, "nodes", self.nodes as f64);
        json::num_field(&mut out, "clients", self.clients as f64);
        json::num_field(&mut out, "queries_per_client", self.queries_per_client as f64);
        json::num_field(&mut out, "seed", self.seed as f64);
        json::num_field(&mut out, "before_qps", self.before_qps);
        json::num_field(&mut out, "before_p50_ms", self.before_p50_ms);
        json::num_field(&mut out, "before_p99_ms", self.before_p99_ms);
        json::num_field(&mut out, "after_qps", self.after_qps);
        json::num_field(&mut out, "after_p50_ms", self.after_p50_ms);
        json::num_field(&mut out, "after_p99_ms", self.after_p99_ms);
        json::num_field(&mut out, "migrated_fragments", self.migrated_fragments as f64);
        json::num_field(&mut out, "migrated_docs", self.migrated_docs as f64);
        json::num_field(&mut out, "migrated_bytes", self.migrated_bytes as f64);
        json::num_field(&mut out, "rebalance_s", self.rebalance_s);
        json::num_field(&mut out, "during_queries", self.during_queries as f64);
        json::num_field(&mut out, "during_errors", self.during_errors as f64);
        json::num_field(&mut out, "predicted_gain", self.predicted_gain);
        json::bool_field(&mut out, "verified", self.verified);
        json::bool_field(&mut out, "p99_improved", self.p99_improved);
        json::bool_field(&mut out, "qps_improved", self.qps_improved);
        json::bool_field(&mut out, "remote", self.remote);
        json::num_field(&mut out, "bytes_shipped", self.bytes_shipped as f64);
        out.push('}');
        out
    }
}

/// Run the skew → advise → live-rebalance → re-measure experiment.
///
/// When `remote` is true, every node sits behind its own loopback TCP
/// server ([`crate::remote::RemoteCluster`]) — the migration's copies
/// then travel as genuine frames and are counted in `bytes_shipped`.
pub fn run_with(config: &RebalanceBenchConfig, remote: bool) -> RebalanceRunResult {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let mut px = setup::skewed_horizontal(&docs, config.fragments, config.nodes);
    px.set_dispatch(DispatchMode::Pool);
    let wire = remote.then(|| crate::remote::RemoteCluster::attach(&px));
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### rebalance{}: {} B over {} fragments, ALL on node 0 of {}; {} clients × {} queries",
        if remote { " (remote TCP transport)" } else { "" },
        config.db_bytes,
        config.fragments,
        config.nodes,
        config.clients,
        config.queries_per_client,
    );

    // Profile one sequential pass (doubles as warm-up), then size the
    // fragments from the live placement.
    let profiler = WorkloadProfiler::new();
    for (_, query) in &workload {
        let result = px.execute(query).expect("profiling query");
        profiler.record(&result.report);
    }
    profiler.observe_placement(&px, setup::DIST);
    let profile = profiler.snapshot();

    let (before_wall, mut before_lat, _) =
        run_clients(&px, config.clients, config.queries_per_client, &workload);
    let before_qps = before_lat.len() as f64 / before_wall.max(1e-9);
    let before_p50_ms = percentile(&mut before_lat, 50.0) * 1e3;
    let before_p99_ms = percentile(&mut before_lat, 99.0) * 1e3;

    let mut advisor = AdvisorConfig::new(config.nodes);
    advisor.seed = config.seed;
    let advice = advise_live(&px, setup::DIST, &profile, &advisor)
        .expect("advise")
        .expect("distribution registered");

    // Live migration, probed: a thread keeps asking an aggregate the
    // oracle answered pre-migration and tallies any disagreement.
    let oracle = px.execute(&workload[6].1).expect("oracle query").items;
    let done = AtomicBool::new(false);
    let during_queries = AtomicU64::new(0);
    let during_errors = AtomicU64::new(0);
    let mut report = None;
    std::thread::scope(|scope| {
        let probe = scope.spawn(|| {
            // check-after-query loop: even an instant migration gets at
            // least one mid-flight probe
            loop {
                match px.execute(&workload[6].1) {
                    Ok(result) if result.items == oracle => {}
                    _ => {
                        during_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                during_queries.fetch_add(1, Ordering::Relaxed);
                if done.load(Ordering::Relaxed) {
                    break;
                }
            }
        });
        report = Some(
            partix_advisor::rebalance(
                &px,
                setup::DIST,
                &advice.placements,
                &RebalanceOptions::default(),
            )
            .expect("live rebalance"),
        );
        done.store(true, Ordering::Relaxed);
        probe.join().expect("probe thread");
    });
    let report = report.expect("rebalance ran");

    let (after_wall, mut after_lat, _) =
        run_clients(&px, config.clients, config.queries_per_client, &workload);
    let after_qps = after_lat.len() as f64 / after_wall.max(1e-9);
    let after_p50_ms = percentile(&mut after_lat, 50.0) * 1e3;
    let after_p99_ms = percentile(&mut after_lat, 99.0) * 1e3;

    let result = RebalanceRunResult {
        db_bytes: config.db_bytes,
        fragments: config.fragments,
        nodes: config.nodes,
        clients: config.clients,
        queries_per_client: config.queries_per_client,
        seed: config.seed,
        before_qps,
        before_p50_ms,
        before_p99_ms,
        after_qps,
        after_p50_ms,
        after_p99_ms,
        migrated_fragments: report.moves.len(),
        migrated_docs: report.migrated_docs,
        migrated_bytes: report.migrated_bytes,
        rebalance_s: report.elapsed_s,
        during_queries: during_queries.load(Ordering::Relaxed),
        during_errors: during_errors.load(Ordering::Relaxed),
        predicted_gain: advice.predicted_gain(),
        verified: report.verified,
        p99_improved: after_p99_ms < before_p99_ms,
        qps_improved: after_qps > before_qps,
        remote,
        bytes_shipped: wire.as_ref().map_or(0, crate::remote::RemoteCluster::wire_bytes),
    };
    println!(
        "{:<8} {:>9} {:>10} {:>10}",
        "phase", "QPS", "p50(ms)", "p99(ms)"
    );
    println!(
        "{:<8} {:>9.1} {:>10.3} {:>10.3}",
        "before", result.before_qps, result.before_p50_ms, result.before_p99_ms
    );
    println!(
        "{:<8} {:>9.1} {:>10.3} {:>10.3}",
        "after", result.after_qps, result.after_p50_ms, result.after_p99_ms
    );
    println!(
        "  migrated {} fragment(s), {} docs, {} B in {:.3}s; verified: {}",
        result.migrated_fragments,
        result.migrated_docs,
        result.migrated_bytes,
        result.rebalance_s,
        result.verified,
    );
    println!(
        "  {} probe queries during migration, {} wrong answers; predicted gain {:.1}%",
        result.during_queries,
        result.during_errors,
        result.predicted_gain * 100.0,
    );
    if remote {
        println!("  wire: {} B shipped over TCP", result.bytes_shipped);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalance_bench_smoke() {
        let config = RebalanceBenchConfig {
            db_bytes: 20_000,
            fragments: 4,
            nodes: 4,
            clients: 2,
            queries_per_client: 3,
            seed: 7,
        };
        let result = run_with(&config, false);
        assert!(result.migrated_fragments > 0, "skew must trigger moves");
        assert!(result.migrated_bytes > 0);
        assert!(result.verified);
        assert_eq!(result.during_errors, 0, "probe answers must stay correct");
        assert!(result.during_queries > 0);
        assert!(result.predicted_gain > 0.0);
        let json = result.to_json();
        for field in [
            "\"before_p99_ms\":",
            "\"after_p99_ms\":",
            "\"migrated_bytes\":",
            "\"p99_improved\":",
            "\"verified\":true",
            "\"during_errors\":0",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn rebalance_bench_remote_smoke() {
        let config = RebalanceBenchConfig {
            db_bytes: 12_000,
            fragments: 2,
            nodes: 2,
            clients: 1,
            queries_per_client: 2,
            seed: 7,
        };
        let result = run_with(&config, true);
        assert!(result.migrated_fragments > 0);
        assert_eq!(result.during_errors, 0);
        assert!(result.remote);
        assert!(result.bytes_shipped > 0, "remote run must ship frames");
    }
}
