//! Coordinator scale-out benchmark over the `PXN2` streaming transport.
//!
//! N stateless coordinator replicas share one cluster of DBMS nodes
//! ([`partix_engine::Cluster::share`]) and one epoch-versioned catalog
//! ([`partix_engine::MetaService`]); each replica serves streaming
//! queries on its own loopback TCP endpoint
//! ([`partix_net::serve_coordinator`]). Closed-loop clients spread load
//! across the replicas with [`partix_net::CoordinatorPool`]. The sweep
//! measures QPS and client-observed p50/p99 latency at 1, 2, 3
//! coordinators, in both transport modes:
//!
//! * `streamed` — sub-query results go out as `ItemChunk` frames the
//!   moment each site completes;
//! * `buffered` — the coordinator materializes the whole answer first
//!   (the pre-streaming baseline; identical wire format).
//!
//! Every answer is checked against a centralized oracle (the same
//! documents unfragmented on node 0) — a run's numbers only count when
//! `verified` is true.

use crate::output::json;
use crate::throughput::percentile;
use crate::{queries, setup};
use partix_engine::{DispatchMode, MetaService, NetworkModel, PartiX};
use partix_net::{
    serve_coordinator, CoordinatorPool, StreamClientConfig, StreamOpts, StreamServer,
    StreamServerConfig,
};
use partix_gen::ItemProfile;
use partix_query::Item;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ScaleoutConfig {
    /// Total database size in bytes.
    pub db_bytes: usize,
    /// Horizontal fragments (== DBMS nodes).
    pub fragments: usize,
    /// Coordinator-replica counts to sweep.
    pub coordinators: Vec<usize>,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Queries each client issues (after a per-coordinator warm-up).
    pub queries_per_client: usize,
    /// Full-sweep repetitions; each cell reports its best run. Repeats
    /// alternate sweep direction (1→N, then N→1) so scheduler drift over
    /// the process lifetime cancels instead of biasing one cell.
    pub repeats: usize,
}

impl Default for ScaleoutConfig {
    fn default() -> ScaleoutConfig {
        ScaleoutConfig {
            db_bytes: 120_000,
            fragments: 4,
            coordinators: vec![1, 2, 3],
            clients: 256,
            queries_per_client: 6,
            repeats: 3,
        }
    }
}

/// One (coordinator count × transport mode) measurement.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub coordinators: usize,
    pub mode: &'static str,
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Every answer matched the centralized oracle.
    pub verified: bool,
    /// Pool-level failovers observed (0 in a healthy run).
    pub failovers: u64,
}

fn canonical(items: &[Item]) -> String {
    let mut lines: Vec<String> = items.iter().map(Item::serialize).collect();
    lines.sort();
    lines.join("\n")
}

/// Build one coordinator replica over the shared nodes: pooled dispatch
/// (256 clients would explode transient per-sub-query threads), result
/// cache on (the replication story is about coordinator-side capacity),
/// span collection off (measurement, not diagnosis).
fn replica(base: &PartiX, meta: &Arc<MetaService>) -> Arc<PartiX> {
    let mut px = PartiX::with_cluster(base.cluster().share(), NetworkModel::default());
    px.set_dispatch(DispatchMode::Pool);
    px.set_result_cache_enabled(true);
    px.set_tracing_enabled(false);
    px.attach_meta(Arc::clone(meta));
    Arc::new(px)
}

/// Run the sweep. The returned results hold one entry per coordinator
/// count per mode, in sweep order.
pub fn run(config: &ScaleoutConfig) -> Vec<RunResult> {
    let docs = setup::item_db(config.db_bytes, ItemProfile::Small);
    let workload = queries::horizontal(setup::DIST);
    println!(
        "\n### scaleout: ItemsSHor {} B, {} fragments, {} clients × {} queries, \
         {}-query workload, coordinators {:?}",
        config.db_bytes,
        config.fragments,
        config.clients,
        config.queries_per_client,
        workload.len(),
        config.coordinators,
    );

    // the base engine owns catalog registration and document publishing;
    // it then becomes coordinator replica 0
    let base = setup::horizontal(&docs, config.fragments);
    let meta = MetaService::with_catalog(base.catalog_snapshot());

    // centralized oracle answers, one per workload query
    let oracle: Vec<String> = queries::horizontal(setup::CENTRAL)
        .iter()
        .map(|(_, q)| canonical(&base.execute_centralized(0, q).expect("oracle query").items))
        .collect();

    let max_coords = config.coordinators.iter().copied().max().unwrap_or(1);
    let engines: Vec<Arc<PartiX>> = {
        let mut engines = Vec::with_capacity(max_coords);
        let mut first = base;
        first.set_dispatch(DispatchMode::Pool);
        first.set_result_cache_enabled(true);
        first.set_tracing_enabled(false);
        first.attach_meta(Arc::clone(&meta));
        let first = Arc::new(first);
        for _ in 1..max_coords {
            engines.push(replica(&first, &meta));
        }
        engines.insert(0, first);
        engines
    };

    // best run per (coordinators, mode) cell over `repeats` sweeps; a
    // single-core host's scheduler noise dwarfs the effect size, so each
    // cell keeps its best observation (modal fast state) and comparisons
    // happen between equally-lucky cells
    let mut best: Vec<RunResult> = Vec::new();
    for rep in 0..config.repeats.max(1) {
        let mut coords_order = config.coordinators.clone();
        if rep % 2 == 1 {
            coords_order.reverse();
        }
        for &coords in &coords_order {
            for mode in ["buffered", "streamed"] {
                let run =
                    measure(config, coords, mode, &engines, &workload, &oracle);
                println!(
                    "-- rep {} {} coordinator(s), {:9}: {:8.1} qps  p50 {:7.2} ms  \
                     p99 {:7.2} ms  verified={} failovers={}",
                    rep, run.coordinators, run.mode, run.qps, run.p50_ms, run.p99_ms,
                    run.verified, run.failovers,
                );
                match best
                    .iter_mut()
                    .find(|r| r.coordinators == coords && r.mode == mode)
                {
                    None => best.push(run),
                    Some(seen) => {
                        // correctness accumulates; performance keeps its best
                        seen.verified &= run.verified;
                        seen.failovers += run.failovers;
                        if run.qps > seen.qps {
                            seen.qps = run.qps;
                        }
                        if run.p50_ms < seen.p50_ms {
                            seen.p50_ms = run.p50_ms;
                        }
                        if run.p99_ms < seen.p99_ms {
                            seen.p99_ms = run.p99_ms;
                        }
                    }
                }
            }
        }
    }
    best.sort_by(|a, b| (a.coordinators, a.mode).cmp(&(b.coordinators, b.mode)));
    for run in &best {
        println!(
            "== best {} coordinator(s), {:9}: {:8.1} qps  p50 {:7.2} ms  p99 {:7.2} ms  \
             verified={} failovers={}",
            run.coordinators, run.mode, run.qps, run.p50_ms, run.p99_ms, run.verified,
            run.failovers,
        );
    }
    best
}

/// One cell: bind `coords` coordinator endpoints, warm them, then drive
/// the closed-loop client fleet and collect per-query latencies.
fn measure(
    config: &ScaleoutConfig,
    coords: usize,
    mode: &'static str,
    engines: &[Arc<PartiX>],
    workload: &[(&'static str, String)],
    oracle: &[String],
) -> RunResult {
    let opts = StreamOpts { allow_partial: false, buffered: mode == "buffered", ..StreamOpts::default() };
    let servers: Vec<StreamServer> = (0..coords)
        .map(|k| {
            serve_coordinator(
                "127.0.0.1:0",
                Arc::clone(&engines[k]),
                StreamServerConfig::default(),
            )
            .expect("bind coordinator")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();

    // warm every coordinator's plan/result caches over the wire
    for addr in &addrs {
        let pool = CoordinatorPool::new(vec![addr.clone()], StreamClientConfig::default());
        for (_, q) in workload {
            pool.query(q, opts.clone()).expect("warm-up query");
        }
    }

    let verified = AtomicBool::new(true);
    let failovers = AtomicU64::new(0);
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client| {
                let addrs = addrs.clone();
                let opts = opts.clone();
                let verified = &verified;
                let failovers = &failovers;
                scope.spawn(move || {
                    // sticky with rotated primaries: fleet-level
                    // round-robin, one warm connection per client (a
                    // colocated fleet with per-query rotation would pay
                    // coords× the connections and reader threads, burying
                    // the scale-out signal under client-side overhead)
                    let mut addrs = addrs;
                    addrs.rotate_left(client % coords);
                    let pool =
                        CoordinatorPool::new_sticky(addrs, StreamClientConfig::default());
                    let mut observed = Vec::with_capacity(config.queries_per_client);
                    for k in 0..config.queries_per_client {
                        let idx = (client + k) % workload.len();
                        let issued = Instant::now();
                        let result =
                            pool.query(&workload[idx].1, opts.clone()).expect("scaleout query");
                        observed.push(issued.elapsed().as_secs_f64());
                        if canonical(&result.items) != oracle[idx] {
                            verified.store(false, Ordering::Relaxed);
                        }
                    }
                    failovers.fetch_add(pool.failovers(), Ordering::Relaxed);
                    observed
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("client thread"));
        }
    });
    let wall = start.elapsed().as_secs_f64();
    drop(servers);

    RunResult {
        coordinators: coords,
        mode,
        qps: latencies.len() as f64 / wall.max(1e-9),
        p50_ms: percentile(&mut latencies, 50.0) * 1e3,
        p99_ms: percentile(&mut latencies, 99.0) * 1e3,
        verified: verified.load(Ordering::Relaxed),
        failovers: failovers.load(Ordering::Relaxed),
    }
}

fn find<'a>(results: &'a [RunResult], coords: usize, mode: &str) -> Option<&'a RunResult> {
    results.iter().find(|r| r.coordinators == coords && r.mode == mode)
}

/// Render the sweep as the committed `BENCH_scaleout.json` document.
pub fn to_json(config: &ScaleoutConfig, results: &[RunResult]) -> String {
    let min_coords = config.coordinators.iter().copied().min().unwrap_or(1);
    let max_coords = config.coordinators.iter().copied().max().unwrap_or(1);
    let qps_scales = match (
        find(results, min_coords, "streamed"),
        find(results, max_coords, "streamed"),
    ) {
        (Some(lo), Some(hi)) => max_coords > min_coords && hi.qps > lo.qps,
        _ => false,
    };
    let streamed_p99_le_buffered = match (
        find(results, max_coords, "streamed"),
        find(results, max_coords, "buffered"),
    ) {
        (Some(s), Some(b)) => s.p99_ms <= b.p99_ms,
        _ => false,
    };
    let verified = !results.is_empty() && results.iter().all(|r| r.verified);

    let mut out = String::from("{");
    json::str_field(&mut out, "bench", "scaleout");
    json::num_field(&mut out, "db_bytes", config.db_bytes as f64);
    json::num_field(&mut out, "fragments", config.fragments as f64);
    json::num_field(&mut out, "clients", config.clients as f64);
    json::num_field(&mut out, "queries_per_client", config.queries_per_client as f64);
    json::num_field(&mut out, "repeats", config.repeats as f64);
    let mut runs = String::from("[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            runs.push(',');
        }
        let mut entry = String::from("{");
        json::num_field(&mut entry, "coordinators", r.coordinators as f64);
        json::str_field(&mut entry, "mode", r.mode);
        json::num_field(&mut entry, "qps", r.qps);
        json::num_field(&mut entry, "p50_ms", r.p50_ms);
        json::num_field(&mut entry, "p99_ms", r.p99_ms);
        json::bool_field(&mut entry, "verified", r.verified);
        json::num_field(&mut entry, "failovers", r.failovers as f64);
        entry.push('}');
        runs.push_str(&entry);
    }
    runs.push(']');
    json::raw_field(&mut out, "runs", &runs);
    json::bool_field(&mut out, "qps_scales", qps_scales);
    json::bool_field(&mut out, "streamed_p99_le_buffered", streamed_p99_le_buffered);
    json::bool_field(&mut out, "verified", verified);
    out.push('}');
    out
}
