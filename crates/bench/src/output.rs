//! Table rendering and machine-readable experiment records.

use crate::runner::Measurement;
use std::io::Write;

/// One row of an experiment, as written to the JSON-lines log.
#[derive(Debug, Clone)]
pub struct Record {
    /// Experiment id, e.g. `fig7a`.
    pub experiment: String,
    /// Database label, e.g. `ItemsSHor`.
    pub database: String,
    /// Database size in bytes.
    pub size_bytes: usize,
    /// Fragment count (0 = not applicable).
    pub fragments: usize,
    /// Series label, e.g. `FragMode2-NT`.
    pub series: String,
    pub query: String,
    pub centralized_s: f64,
    pub distributed_s: f64,
    pub speedup: f64,
    pub sites: usize,
    pub pruned: usize,
    pub reconstructed: bool,
    pub result_bytes: usize,
}

impl Record {
    pub fn from_measurement(
        experiment: &str,
        database: &str,
        size_bytes: usize,
        fragments: usize,
        series: &str,
        m: &Measurement,
    ) -> Record {
        Record {
            experiment: experiment.to_owned(),
            database: database.to_owned(),
            size_bytes,
            fragments,
            series: series.to_owned(),
            query: m.query.clone(),
            centralized_s: m.centralized_s,
            distributed_s: m.distributed_s,
            speedup: m.speedup,
            sites: m.sites,
            pruned: m.pruned,
            reconstructed: m.reconstructed,
            result_bytes: m.result_bytes,
        }
    }

    /// Serialize as one JSON object (field order matches declaration).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json::str_field(&mut out, "experiment", &self.experiment);
        json::str_field(&mut out, "database", &self.database);
        json::num_field(&mut out, "size_bytes", self.size_bytes as f64);
        json::num_field(&mut out, "fragments", self.fragments as f64);
        json::str_field(&mut out, "series", &self.series);
        json::str_field(&mut out, "query", &self.query);
        json::num_field(&mut out, "centralized_s", self.centralized_s);
        json::num_field(&mut out, "distributed_s", self.distributed_s);
        json::num_field(&mut out, "speedup", self.speedup);
        json::num_field(&mut out, "sites", self.sites as f64);
        json::num_field(&mut out, "pruned", self.pruned as f64);
        json::bool_field(&mut out, "reconstructed", self.reconstructed);
        json::num_field(&mut out, "result_bytes", self.result_bytes as f64);
        out.push('}');
        out
    }
}

/// Tiny hand-rolled JSON writer (the workspace builds offline, without
/// serde). Appends `"key":value,` pairs; the closing brace logic strips
/// the trailing comma via `push('}')` replacing it.
pub mod json {
    /// Escape per JSON string rules (quotes, backslash, control chars).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    fn key(out: &mut String, name: &str) {
        if !out.ends_with('{') && !out.ends_with('[') {
            out.push(',');
        }
        out.push('"');
        out.push_str(name);
        out.push_str("\":");
    }

    pub fn str_field(out: &mut String, name: &str, value: &str) {
        key(out, name);
        out.push('"');
        out.push_str(&escape(value));
        out.push('"');
    }

    /// Numbers print like serde_json: integers without a decimal point,
    /// floats via `Display` (shortest roundtrip form), non-finite as null.
    pub fn num_field(out: &mut String, name: &str, value: f64) {
        key(out, name);
        out.push_str(&format_num(value));
    }

    pub fn bool_field(out: &mut String, name: &str, value: bool) {
        key(out, name);
        out.push_str(if value { "true" } else { "false" });
    }

    pub fn raw_field(out: &mut String, name: &str, value: &str) {
        key(out, name);
        out.push_str(value);
    }

    pub fn format_num(value: f64) -> String {
        if !value.is_finite() {
            "null".to_owned()
        } else if value == value.trunc() && value.abs() < 9e15 {
            format!("{}", value as i64)
        } else {
            format!("{value}")
        }
    }
}

/// Collects records, prints aligned tables, and optionally writes a
/// JSON-lines log.
pub struct Sink {
    pub records: Vec<Record>,
    log: Option<std::fs::File>,
}

impl Sink {
    /// A sink that optionally appends JSON lines to `log_path`.
    pub fn new(log_path: Option<&str>) -> Sink {
        let log = log_path.map(|p| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(p)
                .unwrap_or_else(|e| panic!("cannot open {p}: {e}"))
        });
        Sink { records: Vec::new(), log }
    }

    pub fn push(&mut self, record: Record) {
        if let Some(log) = &mut self.log {
            let line = record.to_json();
            let _ = writeln!(log, "{line}");
        }
        self.records.push(record);
    }

    /// Print one experiment's rows as a speedup table: queries down,
    /// series (e.g. fragment counts) across.
    pub fn print_speedup_table(&self, experiment: &str, size_bytes: usize) {
        let rows: Vec<&Record> = self
            .records
            .iter()
            .filter(|r| r.experiment == experiment && r.size_bytes == size_bytes)
            .collect();
        if rows.is_empty() {
            return;
        }
        let mut series: Vec<String> = Vec::new();
        let mut queries: Vec<String> = Vec::new();
        for r in &rows {
            if !series.contains(&r.series) {
                series.push(r.series.clone());
            }
            if !queries.contains(&r.query) {
                queries.push(r.query.clone());
            }
        }
        println!(
            "\n== {experiment} @ {} — speedup vs centralized (×; >1 means fragmented wins) ==",
            human_bytes(size_bytes)
        );
        print!("{:<6}", "query");
        print!("{:>12}", "central(s)");
        for s in &series {
            print!("{:>14}", s);
        }
        println!();
        for q in &queries {
            print!("{q:<6}");
            let central = rows
                .iter()
                .find(|r| r.query == *q)
                .map(|r| r.centralized_s)
                .unwrap_or(0.0);
            print!("{central:>12.5}");
            for s in &series {
                match rows.iter().find(|r| r.query == *q && r.series == *s) {
                    Some(r) => {
                        let marker = if r.reconstructed { "*" } else { "" };
                        print!("{:>13.2}{}", r.speedup, if marker.is_empty() { " " } else { marker });
                    }
                    None => print!("{:>14}", "-"),
                }
            }
            println!();
        }
        println!("   (* = answered via coordinator-side reconstruction)");
    }
}

/// `5242880` → `5.0MB`.
pub fn human_bytes(bytes: usize) -> String {
    if bytes >= 1_048_576 {
        format!("{:.1}MB", bytes as f64 / 1_048_576.0)
    } else if bytes >= 1024 {
        format!("{:.0}KB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(q: &str, series: &str, speedup: f64) -> Record {
        Record {
            experiment: "figX".into(),
            database: "db".into(),
            size_bytes: 1024,
            fragments: 2,
            series: series.into(),
            query: q.into(),
            centralized_s: 1.0,
            distributed_s: 1.0 / speedup,
            speedup,
            sites: 2,
            pruned: 0,
            reconstructed: false,
            result_bytes: 10,
        }
    }

    #[test]
    fn sink_collects_and_prints() {
        let mut sink = Sink::new(None);
        sink.push(record("Q1", "2 frags", 1.5));
        sink.push(record("Q1", "4 frags", 2.5));
        sink.push(record("Q2", "2 frags", 0.8));
        assert_eq!(sink.records.len(), 3);
        sink.print_speedup_table("figX", 1024); // must not panic
    }

    #[test]
    fn json_log_written() {
        let path = std::env::temp_dir().join(format!("partix-log-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap().to_owned();
        {
            let mut sink = Sink::new(Some(&path_str));
            sink.push(record("Q1", "s", 2.0));
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"query\":\"Q1\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(5 * 1024), "5KB");
        assert_eq!(human_bytes(5 * 1_048_576), "5.0MB");
    }
}
