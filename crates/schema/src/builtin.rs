//! The paper's schemas.
//!
//! * [`virtual_store`] — Figure 1(a) of the paper: a virtual store with
//!   sections, employees, and items; items carry optional picture lists
//!   and price histories.
//! * [`xbench_article`] — the XBench-style article schema used for the
//!   vertical-fragmentation experiments (database *XBenchVer*), whose
//!   three top-level parts `prolog` / `body` / `epilog` are exactly the
//!   fragments `F1..F3papers` of Section 5.

use crate::decl::{ElementDecl, Occurs, Schema};

/// The `S_virtual_store` schema of Figure 1(a).
///
/// Cardinalities follow the figure: `Section`, `Item`, `Employee`,
/// `Picture` and `PriceHistory` are `1..n` inside their parents;
/// `Characteristics` is `0..n`; `PictureList` and `PricesHistory` are
/// `0..1`; everything unannotated is `1..1`.
pub fn virtual_store() -> Schema {
    let picture = ElementDecl::complex(
        "Picture",
        vec![
            (ElementDecl::leaf("Name"), Occurs::ONE),
            (ElementDecl::leaf("Description"), Occurs::ONE),
            (ElementDecl::leaf("ModificationDate"), Occurs::ONE),
            (ElementDecl::leaf("OriginalPath"), Occurs::ONE),
            (ElementDecl::leaf("ThumbPath"), Occurs::ONE),
        ],
    );
    let price_history = ElementDecl::complex(
        "PriceHistory",
        vec![
            (ElementDecl::leaf("Price"), Occurs::ONE),
            (ElementDecl::leaf("ModificationDate"), Occurs::ONE),
        ],
    );
    let characteristics = ElementDecl::complex(
        "Characteristics",
        vec![(ElementDecl::leaf("Description"), Occurs::ONE)],
    );
    let item = ElementDecl::complex(
        "Item",
        vec![
            (ElementDecl::leaf("Code"), Occurs::ONE),
            (ElementDecl::leaf("Name"), Occurs::ONE),
            (ElementDecl::leaf("Description"), Occurs::ONE),
            (ElementDecl::leaf("Section"), Occurs::ONE),
            (ElementDecl::leaf("Release"), Occurs::OPTIONAL),
            (characteristics, Occurs::ANY),
            (
                ElementDecl::complex("PictureList", vec![(picture, Occurs::MANY)]),
                Occurs::OPTIONAL,
            ),
            (
                ElementDecl::complex("PricesHistory", vec![(price_history, Occurs::MANY)]),
                Occurs::OPTIONAL,
            ),
        ],
    );
    let section = ElementDecl::complex(
        "Section",
        vec![
            (ElementDecl::leaf("Code"), Occurs::ONE),
            (ElementDecl::leaf("Name"), Occurs::ONE),
        ],
    );
    let employee = ElementDecl::complex(
        "Employee",
        vec![
            (ElementDecl::leaf("Code"), Occurs::ONE),
            (ElementDecl::leaf("Name"), Occurs::ONE),
        ],
    );
    let store = ElementDecl::complex(
        "Store",
        vec![
            (
                ElementDecl::complex("Sections", vec![(section, Occurs::MANY)]),
                Occurs::ONE,
            ),
            (
                ElementDecl::complex("Items", vec![(ElementDecl::clone(&item), Occurs::MANY)]),
                Occurs::ONE,
            ),
            (
                ElementDecl::complex("Employees", vec![(employee, Occurs::MANY)]),
                Occurs::ONE,
            ),
        ],
    );
    Schema::new("virtual_store", store)
}

/// XBench-style article schema (database *XBenchVer*).
///
/// The paper fragments this collection vertically into `/article/prolog`,
/// `/article/body` and `/article/epilog`. The inner structure below
/// follows XBench's DC/MD article documents: bibliographic prolog, the
/// text body (abstract plus sections of paragraphs), and an epilog of
/// references and classification data.
pub fn xbench_article() -> Schema {
    let author = ElementDecl::complex(
        "author",
        vec![
            (ElementDecl::leaf("name"), Occurs::ONE),
            (ElementDecl::leaf("affiliation"), Occurs::OPTIONAL),
        ],
    );
    let prolog = ElementDecl::complex(
        "prolog",
        vec![
            (ElementDecl::leaf("title"), Occurs::ONE),
            (
                ElementDecl::complex("authors", vec![(author, Occurs::MANY)]),
                Occurs::ONE,
            ),
            (ElementDecl::leaf("genre"), Occurs::ONE),
            (ElementDecl::leaf("pub_date"), Occurs::ONE),
            (
                ElementDecl::complex(
                    "keywords",
                    vec![(ElementDecl::leaf("keyword"), Occurs::ANY)],
                ),
                Occurs::OPTIONAL,
            ),
        ],
    );
    let section = ElementDecl::complex(
        "section",
        vec![
            (ElementDecl::leaf("heading"), Occurs::ONE),
            (ElementDecl::leaf("p"), Occurs::MANY),
        ],
    );
    let body = ElementDecl::complex(
        "body",
        vec![
            (ElementDecl::leaf("abstract"), Occurs::ONE),
            (section, Occurs::MANY),
        ],
    );
    let reference = ElementDecl::complex(
        "reference",
        vec![
            (ElementDecl::leaf("ref_title"), Occurs::ONE),
            (ElementDecl::leaf("year"), Occurs::ONE),
        ],
    );
    let epilog = ElementDecl::complex(
        "epilog",
        vec![
            (
                ElementDecl::complex("references", vec![(reference, Occurs::ANY)]),
                Occurs::ONE,
            ),
            (ElementDecl::leaf("country"), Occurs::ONE),
            (ElementDecl::leaf("word_count"), Occurs::ONE),
        ],
    );
    let article = ElementDecl::complex(
        "article",
        vec![
            (prolog, Occurs::ONE),
            (body, Occurs::ONE),
            (epilog, Occurs::ONE),
        ],
    )
    .with_attr("id", true);
    Schema::new("xbench_article", article)
}

#[cfg(test)]
mod tests {
    use super::*;
    use partix_path::PathExpr;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    #[test]
    fn virtual_store_structure() {
        let s = virtual_store();
        assert_eq!(s.root.name, "Store");
        assert_eq!(s.root.children.len(), 3);
        let item = s.resolve(&p("/Store/Items/Item")).unwrap();
        assert_eq!(item.children.len(), 8);
        let (pl, occ) = item.child("PictureList").unwrap();
        assert_eq!(occ, Occurs::OPTIONAL);
        let (_, pic_occ) = pl.child("Picture").unwrap();
        assert_eq!(pic_occ, Occurs::MANY);
    }

    #[test]
    fn item_subschema_for_md_collection() {
        let s = virtual_store();
        let item_schema = s.subschema(&p("/Store/Items/Item")).unwrap();
        assert_eq!(item_schema.root.name, "Item");
        // inside a single Item document, Section is 1..1 → single-valued
        assert!(item_schema.is_single_valued(&p("/Item/Section")));
        assert!(!item_schema.is_single_valued(&p("/Item/PictureList/Picture")));
        assert!(item_schema.is_single_valued(&p("/Item/PictureList/Picture[1]")));
    }

    #[test]
    fn xbench_structure() {
        let s = xbench_article();
        assert_eq!(s.root.name, "article");
        for part in ["prolog", "body", "epilog"] {
            let path = PathExpr::parse(&format!("/article/{part}")).unwrap();
            assert!(s.resolve(&path).is_some(), "{part} must resolve");
            assert!(s.is_single_valued(&path), "{part} is 1..1");
        }
        assert!(s.is_single_valued(&p("/article/prolog/title")));
        assert!(!s.is_single_valued(&p("/article/prolog/authors/author")));
    }
}
