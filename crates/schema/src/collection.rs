//! Typed collections: `C := ⟨S, τ_root⟩`, SD and MD repositories.

use crate::decl::Schema;
use partix_path::PathExpr;
use std::fmt;
use std::sync::Arc;

/// Repository kind (paper Sec. 3.1, after \[17]): a repository is either a
/// single large document (**SD**) or a set of many documents (**MD**).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepoKind {
    /// Single Document — e.g. `C_store := ⟨S_virtual_store, /Store⟩`.
    SingleDocument,
    /// Multiple Documents — e.g. `C_items := ⟨S_virtual_store,
    /// /Store/Items/Item⟩`.
    MultipleDocuments,
}

impl fmt::Display for RepoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RepoKind::SingleDocument => "SD",
            RepoKind::MultipleDocuments => "MD",
        })
    }
}

/// Definition of a homogeneous collection.
#[derive(Debug, Clone)]
pub struct CollectionDef {
    /// Collection name, e.g. `"Citems"`.
    pub name: String,
    /// The global schema `S`.
    pub schema: Arc<Schema>,
    /// The root type `τ_root`, given as a path into `S`
    /// (e.g. `/Store/Items/Item`).
    pub root_path: PathExpr,
    pub kind: RepoKind,
}

impl CollectionDef {
    pub fn new(
        name: &str,
        schema: Arc<Schema>,
        root_path: PathExpr,
        kind: RepoKind,
    ) -> CollectionDef {
        CollectionDef { name: name.to_owned(), schema, root_path, kind }
    }

    /// The schema each *document* of this collection satisfies: `S`
    /// re-rooted at `τ_root`. `None` if `root_path` does not resolve.
    pub fn document_schema(&self) -> Option<Schema> {
        self.schema.subschema(&self.root_path)
    }

    /// Label every document root must carry.
    pub fn root_label(&self) -> Option<String> {
        self.schema.resolve(&self.root_path).map(|d| d.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::virtual_store;

    #[test]
    fn paper_figure_1b_collections() {
        let schema = Arc::new(virtual_store());
        let citems = CollectionDef::new(
            "Citems",
            Arc::clone(&schema),
            PathExpr::parse("/Store/Items/Item").unwrap(),
            RepoKind::MultipleDocuments,
        );
        let cstore = CollectionDef::new(
            "Cstore",
            schema,
            PathExpr::parse("/Store").unwrap(),
            RepoKind::SingleDocument,
        );
        assert_eq!(citems.root_label().as_deref(), Some("Item"));
        assert_eq!(cstore.root_label().as_deref(), Some("Store"));
        assert_eq!(citems.document_schema().unwrap().root.name, "Item");
        assert_eq!(cstore.kind.to_string(), "SD");
        assert_eq!(citems.kind.to_string(), "MD");
    }

    #[test]
    fn unresolvable_root_path() {
        let schema = Arc::new(virtual_store());
        let bad = CollectionDef::new(
            "bad",
            schema,
            PathExpr::parse("/Nope").unwrap(),
            RepoKind::MultipleDocuments,
        );
        assert!(bad.document_schema().is_none());
        assert!(bad.root_label().is_none());
    }
}
