//! # partix-schema
//!
//! Schema trees and typed collections, following Section 3.1 of the
//! PartiX paper:
//!
//! * Element names correspond to names of data types described in a DTD
//!   or XML Schema; a schema is modelled here as a tree of
//!   [`ElementDecl`]s with minimum/maximum cardinalities (the paper's
//!   Figure 1(a) notation `0..1`, `1..n`).
//! * A **homogeneous collection** is `C := ⟨S, τ_root⟩`: all its documents
//!   satisfy type `τ_root` of schema `S`. Collections are either **SD**
//!   (a single large document) or **MD** (many documents) repositories.
//!
//! The crate ships the two schemas used throughout the paper's
//! experiments: [`builtin::virtual_store`] (Figure 1(a)) and
//! [`builtin::xbench_article`] (the XBench-style article collection used
//! for vertical fragmentation).
//!
//! [`Schema::is_single_valued`] answers the question data localization
//! needs: does a path select at most one node per document? Only then is
//! `P = "a" ∧ P = "b"` a contradiction the middleware may prune on.

pub mod builtin;
pub mod collection;
pub mod decl;
pub mod validate;

pub use collection::{CollectionDef, RepoKind};
pub use decl::{AttrDecl, ElementDecl, Occurs, Schema};
pub use validate::{validate, ValidationError};
