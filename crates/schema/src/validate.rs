//! Validation of documents against schema declarations.
//!
//! `⟨t, ℓ⟩` must be derivable from the grammar defined by `S` with
//! `ℓ(root∆) → τ` (paper Sec. 3.1). Child order is not constrained (the
//! paper's schemas never rely on sibling order), but names, cardinalities,
//! required attributes, and text-content placement are enforced.

use crate::decl::{ElementDecl, Schema};
use partix_xml::{Document, NodeKind, NodeRef};
use std::collections::HashMap;
use std::fmt;

/// A validation failure, with the Dewey-style path of the offending node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Human-readable location, e.g. `Store/Items/Item`.
    pub location: String,
    pub kind: ValidationErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationErrorKind {
    RootLabelMismatch { expected: String, found: String },
    UndeclaredElement { name: String },
    UndeclaredAttribute { name: String },
    MissingAttribute { name: String },
    CardinalityViolation { name: String, bounds: String, found: u32 },
    UnexpectedText,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at {}: ", self.location)?;
        match &self.kind {
            ValidationErrorKind::RootLabelMismatch { expected, found } => {
                write!(f, "root is <{found}>, schema expects <{expected}>")
            }
            ValidationErrorKind::UndeclaredElement { name } => {
                write!(f, "element <{name}> is not declared")
            }
            ValidationErrorKind::UndeclaredAttribute { name } => {
                write!(f, "attribute {name:?} is not declared")
            }
            ValidationErrorKind::MissingAttribute { name } => {
                write!(f, "required attribute {name:?} is missing")
            }
            ValidationErrorKind::CardinalityViolation { name, bounds, found } => {
                write!(f, "<{name}> occurs {found} times, bounds are {bounds}")
            }
            ValidationErrorKind::UnexpectedText => {
                write!(f, "text content not allowed here")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validate `doc` against `schema`, collecting every violation.
pub fn validate(schema: &Schema, doc: &Document) -> Result<(), Vec<ValidationError>> {
    let mut errors = Vec::new();
    let root = doc.root();
    if root.label() != schema.root.name {
        errors.push(ValidationError {
            location: root.label().to_owned(),
            kind: ValidationErrorKind::RootLabelMismatch {
                expected: schema.root.name.clone(),
                found: root.label().to_owned(),
            },
        });
    } else {
        validate_element(&schema.root, root, &schema.root.name, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_element(
    decl: &ElementDecl,
    node: NodeRef<'_>,
    location: &str,
    errors: &mut Vec<ValidationError>,
) {
    // attributes
    for attr in node.attributes() {
        if !decl.attributes.iter().any(|a| a.name == attr.label()) {
            errors.push(ValidationError {
                location: location.to_owned(),
                kind: ValidationErrorKind::UndeclaredAttribute { name: attr.label().to_owned() },
            });
        }
    }
    for required in decl.attributes.iter().filter(|a| a.required) {
        if node.attribute(&required.name).is_none() {
            errors.push(ValidationError {
                location: location.to_owned(),
                kind: ValidationErrorKind::MissingAttribute { name: required.name.clone() },
            });
        }
    }
    // children
    let mut counts: HashMap<&str, u32> = HashMap::new();
    for child in node.children() {
        match child.kind() {
            NodeKind::Attribute => {}
            NodeKind::Text => {
                if !decl.text {
                    errors.push(ValidationError {
                        location: location.to_owned(),
                        kind: ValidationErrorKind::UnexpectedText,
                    });
                }
            }
            NodeKind::Element => {
                let name = child.label();
                match decl.child(name) {
                    Some((child_decl, _)) => {
                        *counts.entry(child_decl.name.as_str()).or_insert(0) += 1;
                        let loc = format!("{location}/{name}");
                        validate_element(child_decl, child, &loc, errors);
                    }
                    None => errors.push(ValidationError {
                        location: location.to_owned(),
                        kind: ValidationErrorKind::UndeclaredElement { name: name.to_owned() },
                    }),
                }
            }
        }
    }
    for (child_decl, occurs) in &decl.children {
        let found = counts.get(child_decl.name.as_str()).copied().unwrap_or(0);
        if !occurs.admits(found) {
            errors.push(ValidationError {
                location: location.to_owned(),
                kind: ValidationErrorKind::CardinalityViolation {
                    name: child_decl.name.clone(),
                    bounds: occurs.to_string(),
                    found,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::virtual_store;
    use partix_path::PathExpr;
    use partix_xml::parse;

    fn item_schema() -> Schema {
        virtual_store()
            .subschema(&PathExpr::parse("/Store/Items/Item").unwrap())
            .unwrap()
    }

    #[test]
    fn valid_minimal_item() {
        let doc = parse(
            "<Item><Code>1</Code><Name>n</Name><Description>d</Description>\
             <Section>CD</Section></Item>",
        )
        .unwrap();
        validate(&item_schema(), &doc).unwrap();
    }

    #[test]
    fn valid_full_item() {
        let doc = parse(
            "<Item><Code>1</Code><Name>n</Name><Description>d</Description>\
             <Section>CD</Section><Release>2006</Release>\
             <Characteristics><Description>x</Description></Characteristics>\
             <PictureList><Picture><Name>p</Name><Description>d</Description>\
             <ModificationDate>t</ModificationDate><OriginalPath>o</OriginalPath>\
             <ThumbPath>t</ThumbPath></Picture></PictureList>\
             <PricesHistory><PriceHistory><Price>9.9</Price>\
             <ModificationDate>t</ModificationDate></PriceHistory></PricesHistory></Item>",
        )
        .unwrap();
        validate(&item_schema(), &doc).unwrap();
    }

    #[test]
    fn missing_required_child() {
        let doc = parse("<Item><Code>1</Code></Item>").unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        // Name, Description, Section missing
        assert_eq!(
            errors
                .iter()
                .filter(|e| matches!(e.kind, ValidationErrorKind::CardinalityViolation { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn undeclared_element_reported() {
        let doc = parse(
            "<Item><Code>1</Code><Name>n</Name><Description>d</Description>\
             <Section>CD</Section><Bogus/></Item>",
        )
        .unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(&e.kind, ValidationErrorKind::UndeclaredElement { name } if name == "Bogus")));
    }

    #[test]
    fn wrong_root_label() {
        let doc = parse("<NotAnItem/>").unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        assert!(matches!(
            errors[0].kind,
            ValidationErrorKind::RootLabelMismatch { .. }
        ));
    }

    #[test]
    fn text_in_complex_element_rejected() {
        let doc = parse(
            "<Item>stray text<Code>1</Code><Name>n</Name><Description>d</Description>\
             <Section>CD</Section></Item>",
        )
        .unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        assert!(errors
            .iter()
            .any(|e| matches!(e.kind, ValidationErrorKind::UnexpectedText)));
    }

    #[test]
    fn cardinality_upper_bound() {
        let doc = parse(
            "<Item><Code>1</Code><Code>2</Code><Name>n</Name>\
             <Description>d</Description><Section>CD</Section></Item>",
        )
        .unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        assert!(errors.iter().any(|e| matches!(
            &e.kind,
            ValidationErrorKind::CardinalityViolation { name, found: 2, .. } if name == "Code"
        )));
    }

    #[test]
    fn error_location_is_path_like() {
        let doc = parse(
            "<Item><Code>1</Code><Name>n</Name><Description>d</Description>\
             <Section>CD</Section><PictureList><Picture><Name>p</Name></Picture>\
             </PictureList></Item>",
        )
        .unwrap();
        let errors = validate(&item_schema(), &doc).unwrap_err();
        assert!(errors.iter().any(|e| e.location == "Item/PictureList/Picture"));
    }

    #[test]
    fn attribute_validation() {
        use crate::decl::{ElementDecl, Schema};
        let schema = Schema::new("t", ElementDecl::leaf("a").with_attr("id", true));
        let ok = parse("<a id=\"1\">x</a>").unwrap();
        validate(&schema, &ok).unwrap();
        let missing = parse("<a>x</a>").unwrap();
        assert!(validate(&schema, &missing).is_err());
        let extra = parse("<a id=\"1\" other=\"2\">x</a>").unwrap();
        assert!(validate(&schema, &extra).is_err());
    }
}
