//! Schema declarations: element trees with cardinalities.

use partix_path::{Axis, NodeTest, PathExpr};
use std::fmt;

/// Occurrence bounds, the paper's `min..max` annotations (`max = None`
/// renders as `n`, i.e. unbounded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurs {
    pub min: u32,
    pub max: Option<u32>,
}

impl Occurs {
    /// Exactly one (the paper's default when the annotation is omitted).
    pub const ONE: Occurs = Occurs { min: 1, max: Some(1) };
    /// `0..1`
    pub const OPTIONAL: Occurs = Occurs { min: 0, max: Some(1) };
    /// `1..n`
    pub const MANY: Occurs = Occurs { min: 1, max: None };
    /// `0..n`
    pub const ANY: Occurs = Occurs { min: 0, max: None };

    /// Does `count` occurrences satisfy these bounds?
    pub fn admits(self, count: u32) -> bool {
        count >= self.min && self.max.is_none_or(|max| count <= max)
    }

    /// At most one occurrence possible?
    pub fn at_most_one(self) -> bool {
        self.max == Some(1) || self.max == Some(0)
    }
}

impl fmt::Display for Occurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "{}..{}", self.min, max),
            None => write!(f, "{}..n", self.min),
        }
    }
}

/// An attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDecl {
    pub name: String,
    pub required: bool,
}

/// Declaration of an element type: its name, whether it may carry text
/// content, its attributes, and its child element types with bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    pub name: String,
    /// May the element contain character data? (Leaf types in the paper's
    /// schemas map to the value domain `D`.)
    pub text: bool,
    pub attributes: Vec<AttrDecl>,
    pub children: Vec<(ElementDecl, Occurs)>,
}

impl ElementDecl {
    /// A leaf element holding a text value.
    pub fn leaf(name: &str) -> ElementDecl {
        ElementDecl { name: name.to_owned(), text: true, attributes: Vec::new(), children: Vec::new() }
    }

    /// A structural element (no text of its own).
    pub fn complex(name: &str, children: Vec<(ElementDecl, Occurs)>) -> ElementDecl {
        ElementDecl { name: name.to_owned(), text: false, attributes: Vec::new(), children }
    }

    pub fn with_attr(mut self, name: &str, required: bool) -> ElementDecl {
        self.attributes.push(AttrDecl { name: name.to_owned(), required });
        self
    }

    /// Find the declaration of a direct child element by name.
    pub fn child(&self, name: &str) -> Option<(&ElementDecl, Occurs)> {
        self.children
            .iter()
            .find(|(c, _)| c.name == name)
            .map(|(c, o)| (c, *o))
    }
}

/// A named schema: a tree of element declarations rooted at one type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub name: String,
    pub root: ElementDecl,
}

impl Schema {
    pub fn new(name: &str, root: ElementDecl) -> Schema {
        Schema { name: name.to_owned(), root }
    }

    /// Resolve a wildcard-free, child-axis-only absolute path to its
    /// element declaration. Attribute-final paths resolve to the owning
    /// element's declaration if the attribute is declared.
    pub fn resolve(&self, path: &PathExpr) -> Option<&ElementDecl> {
        if !path.absolute {
            return None;
        }
        let mut steps = path.steps.iter();
        let first = steps.next()?;
        if first.axis != Axis::Child {
            return None;
        }
        let mut current = match &first.test {
            NodeTest::Name(n) if *n == self.root.name => &self.root,
            _ => return None,
        };
        for step in steps {
            if step.axis != Axis::Child {
                return None;
            }
            match &step.test {
                NodeTest::Name(n) => {
                    current = current.children.iter().find(|(c, _)| c.name == *n).map(|(c, _)| c)?;
                }
                NodeTest::Attribute(a) => {
                    // must be final (enforced by the path parser); resolves
                    // iff declared on the current element
                    return if current.attributes.iter().any(|ad| ad.name == *a) {
                        Some(current)
                    } else {
                        None
                    };
                }
                NodeTest::AnyElement => return None,
            }
        }
        Some(current)
    }

    /// A new schema rooted at the declaration `path` resolves to.
    ///
    /// This is how an MD collection like `C_items := ⟨S_virtual_store,
    /// /Store/Items/Item⟩` obtains the *document-level* schema its
    /// `Item`-rooted documents satisfy.
    pub fn subschema(&self, path: &PathExpr) -> Option<Schema> {
        let decl = self.resolve(path)?;
        if path.targets_attribute() {
            return None;
        }
        Some(Schema { name: format!("{}@{}", self.name, path), root: decl.clone() })
    }

    /// Is `path` guaranteed to select at most one node per document?
    ///
    /// True iff the path is wildcard-free, resolvable against this schema,
    /// and every step after the root either has `max ≤ 1` cardinality or a
    /// positional filter (`e[i]` pins one occurrence). Unresolvable or
    /// wildcard paths conservatively return `false`.
    pub fn is_single_valued(&self, path: &PathExpr) -> bool {
        if !path.absolute || path.steps.is_empty() {
            return false;
        }
        let mut steps = path.steps.iter();
        let first = steps.next().expect("non-empty");
        if first.axis != Axis::Child {
            return false;
        }
        let mut current = match &first.test {
            NodeTest::Name(n) if *n == self.root.name => &self.root,
            _ => return false,
        };
        for step in steps {
            if step.axis != Axis::Child {
                return false;
            }
            match &step.test {
                NodeTest::Name(n) => {
                    let Some((decl, occurs)) =
                        current.children.iter().find(|(c, _)| c.name == *n).map(|(c, o)| (c, *o))
                    else {
                        return false;
                    };
                    if !occurs.at_most_one() && step.position.is_none() {
                        return false;
                    }
                    current = decl;
                }
                NodeTest::Attribute(a) => {
                    // attributes are single-valued when declared
                    return current.attributes.iter().any(|ad| ad.name == *a);
                }
                NodeTest::AnyElement => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::virtual_store;

    fn p(s: &str) -> PathExpr {
        PathExpr::parse(s).unwrap()
    }

    #[test]
    fn occurs_admits() {
        assert!(Occurs::ONE.admits(1));
        assert!(!Occurs::ONE.admits(0));
        assert!(!Occurs::ONE.admits(2));
        assert!(Occurs::OPTIONAL.admits(0));
        assert!(Occurs::MANY.admits(99));
        assert!(!Occurs::MANY.admits(0));
        assert!(Occurs::ANY.admits(0));
    }

    #[test]
    fn occurs_display() {
        assert_eq!(Occurs::ONE.to_string(), "1..1");
        assert_eq!(Occurs::MANY.to_string(), "1..n");
        assert_eq!(Occurs::OPTIONAL.to_string(), "0..1");
    }

    #[test]
    fn resolve_paper_paths() {
        let s = virtual_store();
        assert_eq!(s.resolve(&p("/Store")).unwrap().name, "Store");
        assert_eq!(s.resolve(&p("/Store/Items/Item")).unwrap().name, "Item");
        assert_eq!(
            s.resolve(&p("/Store/Items/Item/PictureList/Picture")).unwrap().name,
            "Picture"
        );
        assert!(s.resolve(&p("/Store/Nope")).is_none());
        assert!(s.resolve(&p("/Wrong")).is_none());
        assert!(s.resolve(&p("//Item")).is_none()); // wildcards unresolvable
    }

    #[test]
    fn single_valuedness_follows_cardinalities() {
        let s = virtual_store();
        // Sections is 1..1, Section is 1..n
        assert!(s.is_single_valued(&p("/Store/Sections")));
        assert!(!s.is_single_valued(&p("/Store/Sections/Section")));
        assert!(s.is_single_valued(&p("/Store/Sections/Section[1]")));
        assert!(!s.is_single_valued(&p("/Store/Items/Item")));
        // within one Item document-rooted path — Section leaf is 1..1
        assert!(!s.is_single_valued(&p("//Section")));
    }

    #[test]
    fn attribute_paths() {
        let root = ElementDecl::complex(
            "a",
            vec![(ElementDecl::leaf("b"), Occurs::ONE)],
        )
        .with_attr("id", true);
        let s = Schema::new("t", root);
        assert!(s.is_single_valued(&p("/a/@id")));
        assert!(!s.is_single_valued(&p("/a/@missing")));
        assert!(s.resolve(&p("/a/@id")).is_some());
        assert!(s.resolve(&p("/a/@missing")).is_none());
    }
}
