//! Multi-tenant serving primitives for PartiX.
//!
//! Three pieces, deliberately free of any engine dependency so core,
//! net, and cli can all use them without cycles:
//!
//! - [`TenantRegistry`] — named tenants with a [`PriorityClass`] and
//!   [`TenantQuotas`] (concurrent queries, queue slots, queued bytes,
//!   worker share).
//! - [`AdmissionController`] — the typed admit/queue/reject decision at
//!   query entry. Queueing is bounded by a wall-clock deadline, so a
//!   caller is *always* answered with either a [`Permit`] or a
//!   [`Rejection`] — never a hang.
//! - [`DrrScheduler`] — a deficit-round-robin queue over priority
//!   classes, the data structure behind the worker pool's weighted-fair
//!   draining. A non-empty class is visited every rotation, so a
//!   starved class always drains.

mod admission;
mod class;
mod drr;
mod registry;

pub use admission::{
    Admission, AdmissionConfig, AdmissionController, Permit, Rejection,
};
pub use class::PriorityClass;
pub use drr::DrrScheduler;
pub use registry::{
    valid_tenant_name, Tenant, TenantId, TenantQuotas, TenantRegistry,
    TenantSpec, MAX_TENANT_NAME,
};
