//! Priority classes and their deficit-round-robin weights.

use std::fmt;

/// Scheduling class of a tenant's work. The worker pools drain their
/// queues with deficit round-robin over these classes, so a class's
/// [`weight`](PriorityClass::weight) is its long-run share of worker
/// time under contention — never an absolute priority. A saturated
/// `Interactive` class cannot starve `Batch`: every non-empty class is
/// visited once per rotation and drains at least one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Latency-sensitive, small queries. Highest DRR weight.
    Interactive,
    /// The default class for unclassified work.
    #[default]
    Standard,
    /// Throughput-oriented bulk work. Lowest DRR weight.
    Batch,
}

impl PriorityClass {
    /// Number of distinct classes (array-sizing constant).
    pub const COUNT: usize = 3;

    /// Every class, in scheduling order.
    pub const ALL: [PriorityClass; PriorityClass::COUNT] = [
        PriorityClass::Interactive,
        PriorityClass::Standard,
        PriorityClass::Batch,
    ];

    /// Dense index in `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Batch => 2,
        }
    }

    /// Inverse of [`index`](PriorityClass::index).
    pub fn from_index(index: usize) -> Option<PriorityClass> {
        PriorityClass::ALL.get(index).copied()
    }

    /// DRR quantum: how many unit-cost jobs the class may drain each
    /// rotation while other classes are backlogged. Interactive gets an
    /// 8:3:1 edge over Standard:Batch, but every class's quantum is
    /// ≥ 1, which is what makes the discipline starvation-free.
    pub fn weight(self) -> u64 {
        match self {
            PriorityClass::Interactive => 8,
            PriorityClass::Standard => 3,
            PriorityClass::Batch => 1,
        }
    }

    /// Stable lowercase name, used in metric names and on the wire.
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Batch => "batch",
        }
    }

    /// Parse a [`name`](PriorityClass::name) back to a class.
    pub fn parse(text: &str) -> Option<PriorityClass> {
        PriorityClass::ALL.into_iter().find(|c| c.name() == text)
    }
}



impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for class in PriorityClass::ALL {
            assert_eq!(PriorityClass::from_index(class.index()), Some(class));
        }
        assert_eq!(PriorityClass::from_index(PriorityClass::COUNT), None);
    }

    #[test]
    fn names_roundtrip() {
        for class in PriorityClass::ALL {
            assert_eq!(PriorityClass::parse(class.name()), Some(class));
        }
        assert_eq!(PriorityClass::parse("turbo"), None);
        assert_eq!(PriorityClass::parse(""), None);
    }

    #[test]
    fn every_weight_is_positive() {
        for class in PriorityClass::ALL {
            assert!(class.weight() >= 1, "{class} must not be starvable");
        }
    }
}
