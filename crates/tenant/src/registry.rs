//! Named tenants, their quotas, and the registry mapping names to ids.

use crate::class::PriorityClass;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Longest tenant name accepted anywhere — registry, CLI, and both wire
/// protocols enforce the same bound, so a hostile header can never make
/// the server allocate an unbounded name.
pub const MAX_TENANT_NAME: usize = 64;

/// A tenant name is non-empty, at most [`MAX_TENANT_NAME`] bytes, and
/// limited to ASCII alphanumerics plus `-`, `_`, and `.` — safe to
/// embed verbatim in metric names and log lines.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_NAME
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Dense per-registry tenant identifier (position in registration
/// order). This is what flows through `ExecOptions` and job metadata;
/// names appear only at the edges (wire headers, metrics, CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Per-tenant resource bounds, all enforced at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Queries the tenant may run concurrently. `0` means the tenant is
    /// admitted for registration but every query is rejected — useful
    /// for drain/suspend and for deterministic rejection tests.
    pub max_concurrent: usize,
    /// Queries that may wait for a concurrency slot before further
    /// arrivals are rejected outright.
    pub max_queued: usize,
    /// Total query-text bytes the waiting queries may hold. Bounds the
    /// memory a flooding tenant can park in the admission queue.
    pub max_queued_bytes: usize,
    /// Share of the worker capacity (percent, clamped to 1..=100) the
    /// tenant's concurrent queries may occupy when the admission
    /// controller knows the pool size. A tenant with `worker_share = 25`
    /// on a 16-worker pool holds at most 4 queries in flight however
    /// generous `max_concurrent` is.
    pub worker_share: u32,
}

impl Default for TenantQuotas {
    fn default() -> TenantQuotas {
        TenantQuotas {
            max_concurrent: 64,
            max_queued: 256,
            max_queued_bytes: 4 << 20,
            worker_share: 100,
        }
    }
}

/// Everything needed to register a tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    pub name: String,
    pub class: PriorityClass,
    pub quotas: TenantQuotas,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, class: PriorityClass) -> TenantSpec {
        TenantSpec { name: name.into(), class, quotas: TenantQuotas::default() }
    }

    /// Parse the CLI form `name[:class[:max_concurrent[:max_queued]]]`,
    /// e.g. `alice:interactive:8` or `batchy:batch:2:4`.
    pub fn parse(text: &str) -> Result<TenantSpec, String> {
        let mut parts = text.split(':');
        let name = parts.next().unwrap_or_default();
        if !valid_tenant_name(name) {
            return Err(format!(
                "invalid tenant name {name:?} (1..={MAX_TENANT_NAME} chars of [A-Za-z0-9._-])"
            ));
        }
        let mut spec = TenantSpec::new(name, PriorityClass::default());
        if let Some(class) = parts.next() {
            spec.class = PriorityClass::parse(class)
                .ok_or_else(|| format!("unknown priority class {class:?}"))?;
        }
        if let Some(raw) = parts.next() {
            spec.quotas.max_concurrent = raw
                .parse()
                .map_err(|_| format!("max_concurrent must be a number, got {raw:?}"))?;
        }
        if let Some(raw) = parts.next() {
            spec.quotas.max_queued = raw
                .parse()
                .map_err(|_| format!("max_queued must be a number, got {raw:?}"))?;
        }
        if let Some(extra) = parts.next() {
            return Err(format!("trailing tenant spec field {extra:?}"));
        }
        Ok(spec)
    }
}

/// Admission bookkeeping, updated under the tenant's mutex.
#[derive(Debug, Default)]
pub(crate) struct AdmState {
    pub in_flight: usize,
    pub queued: usize,
    pub queued_bytes: usize,
}

/// A registered tenant. Shared via `Arc`; the admission controller
/// mutates only the interior [`AdmState`].
pub struct Tenant {
    pub id: TenantId,
    pub name: String,
    pub class: PriorityClass,
    pub quotas: TenantQuotas,
    pub(crate) state: Mutex<AdmState>,
    pub(crate) slot_freed: Condvar,
}

impl Tenant {
    /// Queries currently executing under a live [`Permit`](crate::Permit).
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("tenant state lock").in_flight
    }

    /// Queries currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        self.state.lock().expect("tenant state lock").queued
    }
}

impl fmt::Debug for Tenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tenant")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("class", &self.class)
            .field("quotas", &self.quotas)
            .finish_non_exhaustive()
    }
}

/// Registry of all tenants known to one serving process. Registration
/// is append-only (ids are dense indexes); lookups are lock-cheap reads.
#[derive(Default)]
pub struct TenantRegistry {
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    tenants: Vec<Arc<Tenant>>,
    by_name: HashMap<String, u32>,
}

impl TenantRegistry {
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Register a tenant; fails on an invalid name or a duplicate.
    pub fn register(&self, spec: TenantSpec) -> Result<TenantId, String> {
        if !valid_tenant_name(&spec.name) {
            return Err(format!(
                "invalid tenant name {:?} (1..={MAX_TENANT_NAME} chars of [A-Za-z0-9._-])",
                spec.name
            ));
        }
        let mut inner = self.inner.write().expect("registry lock");
        if inner.by_name.contains_key(&spec.name) {
            return Err(format!("tenant {:?} already registered", spec.name));
        }
        let id = TenantId(inner.tenants.len() as u32);
        inner.by_name.insert(spec.name.clone(), id.0);
        inner.tenants.push(Arc::new(Tenant {
            id,
            name: spec.name,
            class: spec.class,
            quotas: spec.quotas,
            state: Mutex::new(AdmState::default()),
            slot_freed: Condvar::new(),
        }));
        Ok(id)
    }

    pub fn by_id(&self, id: TenantId) -> Option<Arc<Tenant>> {
        let inner = self.inner.read().expect("registry lock");
        inner.tenants.get(id.0 as usize).cloned()
    }

    pub fn by_name(&self, name: &str) -> Option<Arc<Tenant>> {
        let inner = self.inner.read().expect("registry lock");
        let id = *inner.by_name.get(name)?;
        inner.tenants.get(id as usize).cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock").tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registered tenant names in id order.
    pub fn names(&self) -> Vec<String> {
        let inner = self.inner.read().expect("registry lock");
        inner.tenants.iter().map(|t| t.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = TenantRegistry::new();
        let a = reg.register(TenantSpec::new("alice", PriorityClass::Interactive)).unwrap();
        let b = reg.register(TenantSpec::new("bob", PriorityClass::Batch)).unwrap();
        assert_ne!(a, b);
        assert_eq!(reg.by_name("alice").unwrap().id, a);
        assert_eq!(reg.by_id(b).unwrap().name, "bob");
        assert_eq!(reg.names(), vec!["alice".to_string(), "bob".to_string()]);
        assert!(reg.by_name("carol").is_none());
    }

    #[test]
    fn duplicate_and_invalid_names_are_rejected() {
        let reg = TenantRegistry::new();
        reg.register(TenantSpec::new("alice", PriorityClass::Standard)).unwrap();
        assert!(reg.register(TenantSpec::new("alice", PriorityClass::Batch)).is_err());
        assert!(reg.register(TenantSpec::new("", PriorityClass::Batch)).is_err());
        assert!(reg
            .register(TenantSpec::new("bad name", PriorityClass::Batch))
            .is_err());
        assert!(reg
            .register(TenantSpec::new("x".repeat(MAX_TENANT_NAME + 1), PriorityClass::Batch))
            .is_err());
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn spec_parsing() {
        let spec = TenantSpec::parse("alice:interactive:8:16").unwrap();
        assert_eq!(spec.name, "alice");
        assert_eq!(spec.class, PriorityClass::Interactive);
        assert_eq!(spec.quotas.max_concurrent, 8);
        assert_eq!(spec.quotas.max_queued, 16);
        let spec = TenantSpec::parse("bob").unwrap();
        assert_eq!(spec.class, PriorityClass::Standard);
        assert_eq!(spec.quotas, TenantQuotas::default());
        assert!(TenantSpec::parse("alice:warp").is_err());
        assert!(TenantSpec::parse("alice:batch:x").is_err());
        assert!(TenantSpec::parse("a:batch:1:2:3").is_err());
        assert!(TenantSpec::parse(":batch").is_err());
    }

    #[test]
    fn name_validation_bounds() {
        assert!(valid_tenant_name("a"));
        assert!(valid_tenant_name("team-1.prod_x"));
        assert!(valid_tenant_name(&"x".repeat(MAX_TENANT_NAME)));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name(&"x".repeat(MAX_TENANT_NAME + 1)));
        assert!(!valid_tenant_name("no spaces"));
        assert!(!valid_tenant_name("nul\0byte"));
        assert!(!valid_tenant_name("ünïcode"));
    }
}
