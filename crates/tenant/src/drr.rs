//! Deficit round-robin over priority classes.

use crate::class::PriorityClass;
use std::collections::VecDeque;

struct Lane<T> {
    items: VecDeque<T>,
    /// Jobs this lane may still drain in the current rotation before
    /// the cursor moves on. Refilled to the class weight each time the
    /// cursor arrives with an empty deficit.
    deficit: u64,
}

/// A weighted-fair queue: one FIFO lane per [`PriorityClass`], drained
/// by deficit round-robin. Each time the rotating cursor reaches a
/// backlogged lane it grants the lane its class
/// [`weight`](PriorityClass::weight) as a quantum of unit-cost pops;
/// the cursor only advances when the quantum is spent or the lane runs
/// dry. Every non-empty lane is therefore visited once per rotation and
/// pops at least one item — a starved class always drains.
///
/// The scheduler is plain data (no locks, no threads); callers wrap it
/// in whatever synchronization their pool uses.
pub struct DrrScheduler<T> {
    lanes: Vec<Lane<T>>,
    cursor: usize,
    len: usize,
}

impl<T> DrrScheduler<T> {
    pub fn new() -> DrrScheduler<T> {
        DrrScheduler {
            lanes: (0..PriorityClass::COUNT)
                .map(|_| Lane { items: VecDeque::new(), deficit: 0 })
                .collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Total queued items across all classes.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items in one class's lane.
    pub fn class_len(&self, class: PriorityClass) -> usize {
        self.lanes[class.index()].items.len()
    }

    /// Append to the back of `class`'s FIFO lane.
    pub fn push(&mut self, class: PriorityClass, item: T) {
        self.lanes[class.index()].items.push_back(item);
        self.len += 1;
    }

    /// Pop the next item under the DRR discipline, with the class it
    /// was queued on. `None` iff the scheduler is empty.
    pub fn pop(&mut self) -> Option<(PriorityClass, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let at = self.cursor;
            let lane = &mut self.lanes[at];
            if lane.items.is_empty() {
                // an idle lane banks no credit: deficit resets so a
                // burst after idling can't monopolize the workers
                lane.deficit = 0;
                self.cursor = (at + 1) % PriorityClass::COUNT;
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = PriorityClass::from_index(at)
                    .expect("lane index in range")
                    .weight();
            }
            lane.deficit -= 1;
            let item = lane.items.pop_front().expect("checked non-empty");
            self.len -= 1;
            if lane.deficit == 0 || lane.items.is_empty() {
                lane.deficit = 0;
                self.cursor = (at + 1) % PriorityClass::COUNT;
            }
            return Some((
                PriorityClass::from_index(at).expect("lane index in range"),
                item,
            ));
        }
    }
}

impl<T> Default for DrrScheduler<T> {
    fn default() -> DrrScheduler<T> {
        DrrScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_is_fifo() {
        let mut q = DrrScheduler::new();
        for k in 0..5 {
            q.push(PriorityClass::Batch, k);
        }
        let drained: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, k)| k)).collect();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn weights_shape_the_drain_order_under_contention() {
        let mut q = DrrScheduler::new();
        for k in 0..32 {
            q.push(PriorityClass::Interactive, ("i", k));
            q.push(PriorityClass::Batch, ("b", k));
        }
        // Over the first full rotation: 8 interactive then 1 batch.
        let first: Vec<&str> = (0..9).map(|_| q.pop().unwrap().1 .0).collect();
        assert_eq!(&first[..8], &["i"; 8]);
        assert_eq!(first[8], "b");
    }

    #[test]
    fn batch_is_never_starved() {
        let mut q = DrrScheduler::new();
        q.push(PriorityClass::Batch, "b");
        for k in 0..1000 {
            q.push(PriorityClass::Interactive, "i");
            let _ = k;
        }
        // Batch must surface within one rotation (≤ interactive weight
        // pops), despite a 1000-deep interactive backlog.
        let popped_before_batch = std::iter::from_fn(|| q.pop())
            .take_while(|(class, _)| *class != PriorityClass::Batch)
            .count() as u64;
        assert!(popped_before_batch <= PriorityClass::Interactive.weight());
    }

    #[test]
    fn long_run_shares_follow_weights() {
        let mut q = DrrScheduler::new();
        for _ in 0..960 {
            q.push(PriorityClass::Interactive, ());
            q.push(PriorityClass::Standard, ());
            q.push(PriorityClass::Batch, ());
        }
        let mut counts = [0u64; PriorityClass::COUNT];
        // Drain while all three stay backlogged; shares must track
        // 8:3:1 exactly since every rotation grants full quanta.
        for _ in 0..600 {
            let (class, ()) = q.pop().unwrap();
            counts[class.index()] += 1;
        }
        let total_weight: u64 = PriorityClass::ALL.iter().map(|c| c.weight()).sum();
        for class in PriorityClass::ALL {
            let expected = 600 * class.weight() / total_weight;
            let got = counts[class.index()];
            assert!(
                got.abs_diff(expected) <= class.weight(),
                "{class}: got {got}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn idle_lane_banks_no_credit() {
        let mut q = DrrScheduler::new();
        // Interactive drains alone for a while…
        for _ in 0..100 {
            q.push(PriorityClass::Interactive, "i");
        }
        while q.pop().is_some() {}
        // …then batch bursts. It must not replay banked deficit: the
        // next contended rotation still honors the weights.
        for _ in 0..50 {
            q.push(PriorityClass::Batch, "b");
            q.push(PriorityClass::Interactive, "i");
        }
        let first: Vec<&str> = (0..9).map(|_| q.pop().unwrap().1).collect();
        assert_eq!(first.iter().filter(|s| **s == "b").count(), 1);
    }
}
