//! Typed admission control at query entry.
//!
//! The contract the rest of the stack builds on: every call to
//! [`AdmissionController::admit`] returns a [`Permit`] or a
//! [`Rejection`] within a bounded wall-clock window. There is no code
//! path that parks a caller indefinitely — queueing waits on a condvar
//! with a deadline, and a timeout is itself a typed rejection carrying
//! a `retry_after` hint.

use crate::registry::Tenant;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The three-way admission decision, as data. [`AdmissionController::decide`]
/// returns this snapshot form (useful for observability and tests);
/// [`AdmissionController::admit`] additionally *performs* the decision,
/// resolving `Queue` into an eventual `Admit` or `Reject` by waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A concurrency slot is free: the query runs now.
    Admit,
    /// All slots busy but queue quota remains: the query waits, bounded
    /// by [`AdmissionConfig::queue_wait`].
    Queue,
    /// Quota exhausted: the caller should retry after the hint.
    Reject { retry_after_ms: u64 },
}

/// A typed admission rejection. Converted into `PartixError` /
/// wire-protocol error variants at the layers above — never a panic,
/// never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    pub tenant: String,
    pub retry_after_ms: u64,
    pub reason: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tenant {:?} rejected: {} (retry after {} ms)",
            self.tenant, self.reason, self.retry_after_ms
        )
    }
}

impl std::error::Error for Rejection {}

/// Controller-wide policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Longest a queued query waits for a concurrency slot before the
    /// wait resolves to a rejection. This is the "never a hang" bound.
    pub queue_wait: Duration,
    /// Retry hint stamped on rejections.
    pub retry_after_ms: u64,
    /// Total worker threads backing the serving process, used to turn
    /// [`TenantQuotas::worker_share`](crate::TenantQuotas) percentages
    /// into concrete concurrency caps. `0` disables share capping.
    pub worker_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            queue_wait: Duration::from_secs(2),
            retry_after_ms: 100,
            worker_capacity: 0,
        }
    }
}

/// Applies [`TenantQuotas`](crate::TenantQuotas) at query entry.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    config: AdmissionConfig,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        AdmissionController { config }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The tenant's effective concurrency limit: its `max_concurrent`
    /// quota, further capped by its worker share when the controller
    /// knows the pool size. A non-zero quota with a non-zero share
    /// never rounds down to zero — the share cap alone cannot lock a
    /// tenant out entirely.
    pub fn effective_concurrency(&self, tenant: &Tenant) -> usize {
        let quota = tenant.quotas.max_concurrent;
        if self.config.worker_capacity == 0 || quota == 0 {
            return quota;
        }
        let share = tenant.quotas.worker_share.clamp(1, 100) as usize;
        let cap = (self.config.worker_capacity * share / 100).max(1);
        quota.min(cap)
    }

    /// Non-blocking snapshot of what [`admit`](AdmissionController::admit)
    /// would do right now for a query of `queued_bytes` text bytes.
    pub fn decide(&self, tenant: &Tenant, queued_bytes: usize) -> Admission {
        let limit = self.effective_concurrency(tenant);
        let state = tenant.state.lock().expect("tenant state lock");
        if state.in_flight < limit {
            Admission::Admit
        } else if limit > 0
            && state.queued < tenant.quotas.max_queued
            && state.queued_bytes.saturating_add(queued_bytes)
                <= tenant.quotas.max_queued_bytes
        {
            Admission::Queue
        } else {
            Admission::Reject { retry_after_ms: self.config.retry_after_ms }
        }
    }

    /// Admit a query of `queued_bytes` text bytes, waiting (bounded) in
    /// the tenant's queue if its concurrency slots are all busy.
    /// Returns a [`Permit`] whose drop releases the slot, or a typed
    /// [`Rejection`]. Never hangs: the queue wait is capped by
    /// [`AdmissionConfig::queue_wait`].
    pub fn admit(
        &self,
        tenant: &Arc<Tenant>,
        queued_bytes: usize,
    ) -> Result<Permit, Rejection> {
        let limit = self.effective_concurrency(tenant);
        let reject = |reason: &str| Rejection {
            tenant: tenant.name.clone(),
            retry_after_ms: self.config.retry_after_ms,
            reason: reason.to_string(),
        };
        let mut state = tenant.state.lock().expect("tenant state lock");
        if limit == 0 {
            return Err(reject("concurrency quota is zero"));
        }
        if state.in_flight < limit {
            state.in_flight += 1;
            return Ok(Permit { tenant: Arc::clone(tenant), queued: Duration::ZERO });
        }
        if state.queued >= tenant.quotas.max_queued {
            return Err(reject("admission queue is full"));
        }
        if state.queued_bytes.saturating_add(queued_bytes) > tenant.quotas.max_queued_bytes {
            return Err(reject("admission queue byte quota exhausted"));
        }
        state.queued += 1;
        state.queued_bytes += queued_bytes;
        let enqueued = Instant::now();
        let deadline = enqueued + self.config.queue_wait;
        // Drop-safe dequeue: whichever way the wait ends, the queue
        // accounting is unwound before returning.
        let dequeue = |state: &mut crate::registry::AdmState| {
            state.queued -= 1;
            state.queued_bytes = state.queued_bytes.saturating_sub(queued_bytes);
        };
        loop {
            if state.in_flight < limit {
                dequeue(&mut state);
                state.in_flight += 1;
                return Ok(Permit {
                    tenant: Arc::clone(tenant),
                    queued: enqueued.elapsed(),
                });
            }
            let now = Instant::now();
            if now >= deadline {
                dequeue(&mut state);
                return Err(reject("queued past the admission deadline"));
            }
            let (next, _timed_out) = tenant
                .slot_freed
                .wait_timeout(state, deadline - now)
                .expect("tenant state lock");
            state = next;
        }
    }
}

/// RAII concurrency slot: holding a `Permit` is what `in_flight` counts.
/// Dropping it releases the slot and wakes one queued waiter.
pub struct Permit {
    tenant: Arc<Tenant>,
    queued: Duration,
}

impl Permit {
    /// How long this query waited in the admission queue before its
    /// slot freed (zero when admitted immediately).
    pub fn queued(&self) -> Duration {
        self.queued
    }

    pub fn tenant(&self) -> &Arc<Tenant> {
        &self.tenant
    }
}

impl fmt::Debug for Permit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("tenant", &self.tenant.name)
            .field("queued", &self.queued)
            .finish()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.tenant.state.lock().expect("tenant state lock");
        state.in_flight = state.in_flight.saturating_sub(1);
        drop(state);
        self.tenant.slot_freed.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::PriorityClass;
    use crate::registry::{TenantQuotas, TenantRegistry, TenantSpec};

    fn tenant_with(quotas: TenantQuotas) -> Arc<Tenant> {
        let reg = TenantRegistry::new();
        let mut spec = TenantSpec::new("t", PriorityClass::Standard);
        spec.quotas = quotas;
        let id = reg.register(spec).unwrap();
        reg.by_id(id).unwrap()
    }

    fn quick() -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            queue_wait: Duration::from_millis(50),
            retry_after_ms: 7,
            worker_capacity: 0,
        })
    }

    #[test]
    fn admit_until_concurrency_then_reject_when_queue_full() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 2,
            max_queued: 0,
            ..TenantQuotas::default()
        });
        let ctl = quick();
        let p1 = ctl.admit(&tenant, 10).unwrap();
        let p2 = ctl.admit(&tenant, 10).unwrap();
        assert_eq!(tenant.in_flight(), 2);
        let err = ctl.admit(&tenant, 10).unwrap_err();
        assert_eq!(err.retry_after_ms, 7);
        assert_eq!(err.tenant, "t");
        drop(p1);
        let _p3 = ctl.admit(&tenant, 10).unwrap();
        drop(p2);
        assert_eq!(tenant.in_flight(), 1);
    }

    #[test]
    fn zero_concurrency_rejects_everything() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 0,
            ..TenantQuotas::default()
        });
        let err = quick().admit(&tenant, 1).unwrap_err();
        assert!(err.reason.contains("quota is zero"), "{}", err.reason);
        assert_eq!(
            quick().decide(&tenant, 1),
            Admission::Reject { retry_after_ms: 7 }
        );
    }

    #[test]
    fn queued_query_is_admitted_when_a_slot_frees() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 1,
            max_queued: 4,
            ..TenantQuotas::default()
        });
        let ctl = AdmissionController::new(AdmissionConfig {
            queue_wait: Duration::from_secs(5),
            ..AdmissionConfig::default()
        });
        let permit = ctl.admit(&tenant, 1).unwrap();
        assert_eq!(ctl.decide(&tenant, 1), Admission::Queue);
        let waiter = {
            let tenant = Arc::clone(&tenant);
            let ctl = ctl.clone();
            std::thread::spawn(move || ctl.admit(&tenant, 1))
        };
        // give the waiter time to park in the queue, then free the slot
        while tenant.queued() == 0 {
            std::thread::yield_now();
        }
        drop(permit);
        let queued_permit = waiter.join().unwrap().unwrap();
        assert!(queued_permit.queued() > Duration::ZERO);
        assert_eq!(tenant.queued(), 0);
    }

    #[test]
    fn queue_wait_is_bounded_never_a_hang() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 1,
            max_queued: 4,
            ..TenantQuotas::default()
        });
        let ctl = quick();
        let _held = ctl.admit(&tenant, 1).unwrap();
        let begun = Instant::now();
        let err = ctl.admit(&tenant, 1).unwrap_err();
        assert!(err.reason.contains("deadline"), "{}", err.reason);
        assert!(begun.elapsed() < Duration::from_secs(2));
        // queue accounting fully unwound after the timeout
        assert_eq!(tenant.queued(), 0);
    }

    #[test]
    fn queued_bytes_quota_is_enforced() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 1,
            max_queued: 100,
            max_queued_bytes: 64,
            ..TenantQuotas::default()
        });
        let ctl = quick();
        let _held = ctl.admit(&tenant, 1).unwrap();
        let err = ctl.admit(&tenant, 65).unwrap_err();
        assert!(err.reason.contains("byte quota"), "{}", err.reason);
    }

    #[test]
    fn worker_share_caps_concurrency() {
        let tenant = tenant_with(TenantQuotas {
            max_concurrent: 1000,
            worker_share: 25,
            ..TenantQuotas::default()
        });
        let ctl = AdmissionController::new(AdmissionConfig {
            worker_capacity: 16,
            ..AdmissionConfig::default()
        });
        assert_eq!(ctl.effective_concurrency(&tenant), 4);
        // share can never round a live tenant down to zero slots
        let tiny = tenant_with(TenantQuotas {
            max_concurrent: 1000,
            worker_share: 1,
            ..TenantQuotas::default()
        });
        assert_eq!(ctl.effective_concurrency(&tiny), 1);
    }
}
