//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of the proptest 1.x API this workspace uses:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive` / `boxed`, tuple and range strategies,
//! `prop::sample::select`, `prop::collection::vec`, `any::<bool>()`,
//! `Just`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (reproducible across runs), and
//! failing inputs are **not shrunk** — the first failing case panics
//! as-is.

pub mod test_runner {
    /// Deterministic SplitMix64 stream driving value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seed derived from a test's name (FNV-1a), so each test gets a
        /// stable, independent stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: usize) -> usize {
            ((self.next_u64() as u128 * bound as u128) >> 64) as usize
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Generation attempts allowed per accepted case before the
        /// runner gives up (guards against over-aggressive filters).
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values. `generate` returns `None` when a
    /// filter rejected the sample; the runner retries with fresh
    /// entropy.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy: `recurse` wraps the strategy for
        /// one level deeper. `depth` bounds nesting; upstream's
        /// `desired_size` / `expected_branch_size` hints are accepted
        /// but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                // at each level: 50% stop at a leaf, 50% go deeper
                current = Union::new(vec![base.clone(), recurse(current).boxed()]);
            }
            current
        }
    }

    /// Type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // a few local retries before punting the reject upward
            for _ in 0..16 {
                match self.inner.generate(rng) {
                    Some(v) if (self.f)(&v) => return Some(v),
                    Some(_) => continue,
                    None => return None,
                }
            }
            None
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        alternatives: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        // mirrors the real proptest API, where `Union::new` is consumed
        // pre-boxed by `prop_oneof!`
        #[allow(clippy::new_ret_no_self)]
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T>
        where
            T: 'static,
        {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
            Union { alternatives }.boxed()
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let pick = rng.below(self.alternatives.len());
            self.alternatives[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end - self.start) as usize;
                    Some(self.start + rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u8);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.generate(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed set of options.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            let pick = rng.below(self.options.len());
            Some(self.options[pick].clone())
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vector of `element` samples with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec size range is empty");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (minimal set used here).
    pub trait Arbitrary: Sized {
        fn generate_arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn generate_arbitrary(rng: &mut TestRng) -> bool {
            rng.bool()
        }
    }

    impl Arbitrary for u8 {
        fn generate_arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn generate_arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn generate_arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn generate_arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::generate_arbitrary(rng))
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Upstream's prelude exposes the crate root as `prop` so paths like
    /// `prop::collection::vec` work.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Config form: `proptest! { #![proptest_config(cfg)] ... }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(64).max(config.max_global_rejects),
                        "proptest: too many rejected samples in {} ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases,
                    );
                    $(
                        let $arg = match $crate::strategy::Strategy::generate(&$strategy, &mut rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => continue,
                        };
                    )+
                    $body
                    accepted += 1;
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strategy),+) $body)*
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a proptest body; panics with the failing condition
/// (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!("prop_assert failed: {}: {}", stringify!($cond), format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!("prop_assert_eq failed: `{:?}` != `{:?}`", l, r);
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{:?}` != `{:?}`: {}",
                l, r, format!($($fmt)+)
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 1usize..10, label in prop::sample::select(vec!["a", "b"])) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(label == "a" || label == "b");
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "{:?}", v);
        }

        #[test]
        fn filters_apply(x in (0usize..100).prop_filter("even", |x| x % 2 == 0)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1usize), Just(2), 5usize..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6, "{}", v);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(bool),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_bounds_depth(
            t in any::<bool>().prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3, "{:?}", t);
        }
    }
}
