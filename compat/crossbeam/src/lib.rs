//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`thread::scope`] — crossbeam-style scoped threads (the spawn
//!   closure receives a `&Scope`), implemented over `std::thread::scope`;
//! * [`channel`] — cloneable MPMC channels with bounded (blocking) and
//!   unbounded flavors, implemented with a mutex-protected deque and
//!   condition variables.

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Panic payload of a child thread, as returned by [`ScopedJoinHandle::join`].
    pub type ThreadError = Box<dyn Any + Send + 'static>;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, ThreadError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner: &'scope stdthread::Scope<'scope, 'env> = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before `scope` returns. Unlike
    /// upstream crossbeam this cannot observe unjoined-child panics as
    /// an `Err` (std's scope propagates them as a panic instead), so the
    /// `Result` is `Ok` whenever it returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ThreadError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by `send` when all receivers are gone; carries the
    /// unsent value back, as upstream does.
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => {
                    f.write_str("timed out waiting on receive operation")
                }
                RecvTimeoutError::Disconnected => {
                    f.write_str("channel is empty and disconnected")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { shared: Arc::clone(&shared) },
            Receiver { shared },
        )
    }

    /// A channel that blocks senders once `cap` messages are queued.
    /// `cap` of zero (a rendezvous channel upstream) is treated as 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued (or all receivers are gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = inner
                    .capacity
                    .is_some_and(|cap| inner.queue.len() >= cap);
                if !full {
                    inner.queue.push_back(value);
                    drop(inner);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                inner = self.shared.not_full.wait(inner).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives (or all senders are gone and the
        /// queue is drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap();
            }
        }

        /// Block until a value arrives, the channel disconnects, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(value)
            } else if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.shared.not_full.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| scope.spawn(move |_| x * 2))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(total, 12);
    }

    #[test]
    fn bounded_channel_mpmc() {
        let (tx, rx) = crate::channel::bounded::<usize>(2);
        let consumer = {
            let rx = rx.clone();
            std::thread::spawn(move || rx.iter().sum::<usize>())
        };
        let consumer2 = std::thread::spawn(move || rx.iter().sum::<usize>());
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got = consumer.join().unwrap() + consumer2.join().unwrap();
        assert_eq!(got, (0..100).sum::<usize>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use crate::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = crate::channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = crate::channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
