//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer backed by an
//! `Arc<[u8]>` (no sub-slicing views — this codebase never splits
//! buffers). [`BytesMut`] is a growable builder that freezes into
//! [`Bytes`]. The [`Buf`]/[`BufMut`] traits cover exactly the cursor
//! operations the binary codec performs.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Growable byte buffer builder.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: Arc::from(self.data) }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    /// Discard the next `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor for appending to a byte sink.
pub trait BufMut {
    fn put_u8(&mut self, b: u8);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
        let c = frozen.clone();
        assert_eq!(&*c, &*frozen);
    }

    #[test]
    fn slice_cursor_advances() {
        let data = [1u8, 2, 3, 4];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur, &[3, 4]);
        assert_eq!(cur.remaining(), 2);
    }
}
