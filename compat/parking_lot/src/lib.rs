//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! lock acquisition never returns a poison error (a poisoned std lock is
//! recovered by taking the inner guard, matching parking_lot's semantics
//! of not poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};

// ------------------------------------------------------------- RwLock --

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// -------------------------------------------------------------- Mutex --

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
