//! Offline stand-in for the `criterion` crate.
//!
//! Runs each benchmark closure for a fixed number of timed iterations
//! after a short warm-up and prints mean/min wall-clock per iteration.
//! No statistical analysis, no HTML reports, no CLI filtering — just
//! enough to keep `cargo bench` runnable and comparable offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    warm_up_iters: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20, warm_up_iters: 3 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        BenchmarkGroup {
            sample_size: self.sample_size,
            warm_up_iters: self.warm_up_iters,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.warm_up_iters, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    warm_up_iters: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.warm_up_iters, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(
    name: &str,
    sample_size: usize,
    warm_up_iters: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { iters: warm_up_iters, times: Vec::new() };
    f(&mut bencher); // warm-up (timings discarded)
    bencher.times.clear();
    bencher.iters = sample_size;
    f(&mut bencher);
    let times = &bencher.times;
    if times.is_empty() {
        println!("  {name:<32} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = *times.iter().min().unwrap();
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean > Duration::ZERO => {
            format!("  {:>10.1} MB/s", b as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>10.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "  {name:<32} mean {mean:>12?}  min {min:>12?}  ({} samples){rate}",
        times.len()
    );
}

pub struct Bencher {
    iters: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }
}

/// `criterion_group!(name, target1, target2, ...)` — defines `fn name()`
/// that runs each target with a default `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0usize;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        assert!(setups > 0);
    }
}
