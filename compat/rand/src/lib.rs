//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! [`rngs::StdRng`] is a SplitMix64 generator: deterministic, seedable,
//! portable across platforms — but *not* bit-compatible with upstream's
//! ChaCha12-based `StdRng` (the same seed yields a different stream).
//! Everything in this workspace only relies on determinism, not on the
//! specific stream.

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed. Upstream's associated `Seed` type is
/// omitted; only `seed_from_u64` is used here.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// 53-bit mantissa mapped to [0, 1).
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free bounded sample via 128-bit multiply-shift (Lemire);
/// the tiny modulo bias is irrelevant for data generation.
fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (see module docs for the
    /// compatibility caveat vs upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(1.0..500.0);
            assert!((1.0..500.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
